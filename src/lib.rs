//! # CLAMShell
//!
//! A Rust reproduction of **"CLAMShell: Speeding up Crowds for
//! Low-latency Data Labeling"** (Daniel Haas, Jiannan Wang, Eugene Wu,
//! Michael J. Franklin — VLDB 2015).
//!
//! CLAMShell acquires labels from crowd workers at interactive speeds by
//! attacking every source of labeling latency:
//!
//! * **Retainer pools** eliminate recruitment latency by paying workers a
//!   small wage to stay on call.
//! * **Straggler mitigation** assigns idle workers to slow in-flight
//!   tasks, returning the first answer — batch variance drops by orders
//!   of magnitude.
//! * **Pool maintenance** continuously evicts workers whose empirical
//!   speed is significantly below threshold, converging the pool to its
//!   fast subpopulation; **TermEst** keeps the estimates honest when
//!   straggler mitigation hides slow tasks.
//! * **Hybrid learning** splits the pool between uncertainty-sampled
//!   (active) and random (passive) points, matching the better of the two
//!   on any dataset while using the pool's full parallelism.
//!
//! ## Quick start
//!
//! ```
//! use clamshell::prelude::*;
//!
//! // A crowd calibrated to the live-experiment scale of the paper.
//! let population = Population::mturk_live();
//!
//! // Full CLAMShell: straggler mitigation + PM8 pool maintenance.
//! let cfg = RunConfig { pool_size: 8, ng: 5, seed: 7, ..Default::default() }
//!     .with_straggler()
//!     .with_maintenance();
//!
//! // Label 16 five-record tasks in batches of 8.
//! let specs: Vec<TaskSpec> =
//!     (0..16).map(|i| TaskSpec::new(vec![(i % 2) as u32; 5])).collect();
//! let report = run_batched(cfg, population, specs, 8);
//!
//! assert_eq!(report.labels_produced(), 80);
//! println!(
//!     "labeled {} records in {:.1}s at ${:.2}",
//!     report.labels_produced(),
//!     report.total_secs(),
//!     report.cost.total_usd(),
//! );
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |-------|------|
//! | [`sim`] | Deterministic discrete-event kernel: clock, events, RNG, distributions, statistics |
//! | [`trace`] | Worker populations calibrated to the paper's deployment statistics |
//! | [`crowd`] | Simulated crowd platform: retainer slots, recruitment, payments |
//! | [`learn`] | ML substrate: logistic/softmax regression, uncertainty sampling, dataset generators |
//! | [`quality`] | Quality control: majority voting, Dawid–Skene EM, inter-worker agreement |
//! | [`core`] | The CLAMShell system: runner, straggler mitigation, pool maintenance, hybrid learning, baselines |
//! | [`sweep`] | Deterministic parallel sweep engine: seed × scenario grids on a work-stealing pool |
//! | [`stream`] | Streaming service mode: open-loop task streams, periodic checkpoints, bounded-memory retirement |
//! | [`scenarios`] | Named adversity scenarios (churn, spammers, outages, …) + golden-master conformance suite |

pub use clamshell_core as core;
pub use clamshell_crowd as crowd;
pub use clamshell_learn as learn;
pub use clamshell_obs as obs;
pub use clamshell_quality as quality;
pub use clamshell_scenarios as scenarios;
pub use clamshell_sim as sim;
pub use clamshell_stream as stream;
pub use clamshell_sweep as sweep;
pub use clamshell_trace as trace;

/// The commonly-used surface in one import.
pub mod prelude {
    pub use clamshell_core::adversity::{AdversityConfig, BurstFault, ChurnFault, OutageFault};
    pub use clamshell_core::baselines::{
        headline_raw_labeling, run_base_nr, run_base_r, run_clamshell, run_open_market, EndToEnd,
        OpenMarketConfig,
    };
    pub use clamshell_core::batcher::{Batcher, BatcherConfig};
    pub use clamshell_core::config::{
        CheckoutStrategy, MaintenanceConfig, MaintenanceObjective, PoolConfig, QcMode, RunConfig,
        StragglerConfig,
    };
    pub use clamshell_core::learning::{LearningConfig, LearningOutcome, LearningRunner, Strategy};
    pub use clamshell_core::lifeguard::RoutingPolicy;
    pub use clamshell_core::metrics::{BatchStats, RunReport};
    pub use clamshell_core::poolmodel::PoolModel;
    pub use clamshell_core::runner::{run_batched, Runner};
    pub use clamshell_core::task::TaskSpec;
    pub use clamshell_crowd::{MemberState, PlatformConfig, RetainerPool, SimPlatform, WorkerId};
    pub use clamshell_learn::datasets::digits::{digits, DigitsConfig};
    pub use clamshell_learn::datasets::generate::{make_classification, GenConfig};
    pub use clamshell_learn::datasets::objects::{objects, ObjectsConfig};
    pub use clamshell_learn::ensemble::{BaggedEnsemble, ModelAverage};
    pub use clamshell_learn::eval::LearningCurve;
    pub use clamshell_learn::model::SgdConfig;
    pub use clamshell_learn::sampling::Uncertainty;
    pub use clamshell_learn::Dataset;
    pub use clamshell_obs::{MetricsSnapshot, ObsConfig, ObsReport};
    pub use clamshell_quality::{majority_vote, ConfusionEm, DawidSkene, EmConfig};
    pub use clamshell_scenarios::{CompactReport, ScenarioDef};
    pub use clamshell_sim::arrivals::{ArrivalCounter, ArrivalSchedule};
    pub use clamshell_sim::{SimDuration, SimTime};
    pub use clamshell_stream::{run_stream, StreamCheckpoint, StreamConfig, StreamDigest};
    pub use clamshell_sweep::{
        CancelToken, Grid, GridError, Metric, MetricsAggregator, ObsAggregator,
    };
    pub use clamshell_trace::{Archetype, ArchetypeMix, Population, WorkerProfile};
}
