#!/usr/bin/env python3
"""Validate a clamshell-trace JSONL file against the v1 schema.

Checks what the in-crate tests cannot (the vendored serde_json has no
parser): every line is valid JSON, headers and events carry exactly the
documented fields, sequence numbers are contiguous per cell, and each
header's event count matches the lines that follow it.
"""

import json
import sys

HEADER_KEYS = ["v", "stream", "scenario", "seed", "events", "recorded", "dropped", "fingerprint"]
EVENT_BASE_KEYS = ["v", "seq", "at_ms", "ev"]

EVENT_FIELDS = {
    "checkout": ["worker", "waited_ms"],
    "dispatch": ["worker", "task", "assignment"],
    "assignment_done": ["worker", "task", "assignment", "span_ms"],
    "walkout": ["worker", "task", "assignment"],
    "reserve_timeout": ["worker"],
    "stale_retired": ["worker"],
    "maintenance_evict": ["worker"],
    "outage_defer": ["resume_ms"],
    "outage_resume": [],
    "pool_join": ["worker", "occupancy"],
    "pool_leave": ["worker", "occupancy"],
}


def fail(lineno, msg):
    sys.exit(f"{sys.argv[1]}:{lineno}: {msg}")


def main(path):
    cells = 0
    expected_events = 0
    next_seq = None
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                fail(lineno, f"invalid JSON: {e}")
            if json.dumps(obj, separators=(",", ":"), ensure_ascii=False) != line:
                fail(lineno, "line is not in canonical compact rendering")
            if obj.get("v") != 1:
                fail(lineno, f"schema version must be 1, got {obj.get('v')!r}")
            if obj.get("stream") == "clamshell-trace":
                if expected_events:
                    fail(lineno, f"header arrived {expected_events} events early")
                if list(obj.keys()) != HEADER_KEYS:
                    fail(lineno, f"header keys {list(obj.keys())} != {HEADER_KEYS}")
                fp = obj["fingerprint"]
                if not (fp.startswith("fnv1a:") and len(fp) == 22):
                    fail(lineno, f"malformed fingerprint {fp!r}")
                if obj["dropped"] != obj["recorded"] - obj["events"]:
                    fail(lineno, "dropped != recorded - events")
                cells += 1
                expected_events = obj["events"]
                next_seq = obj["dropped"]  # retained tail starts after the drops
            else:
                if expected_events <= 0:
                    fail(lineno, "event line outside any cell")
                ev = obj.get("ev")
                if ev not in EVENT_FIELDS:
                    fail(lineno, f"unknown event discriminator {ev!r}")
                if list(obj.keys()) != EVENT_BASE_KEYS + EVENT_FIELDS[ev]:
                    fail(lineno, f"bad field order/set for {ev}: {list(obj.keys())}")
                if obj["seq"] != next_seq:
                    fail(lineno, f"seq {obj['seq']} != expected {next_seq}")
                next_seq += 1
                expected_events -= 1
    if expected_events:
        sys.exit(f"{path}: truncated final cell ({expected_events} events missing)")
    if cells == 0:
        sys.exit(f"{path}: no trace cells found")
    print(f"{path}: OK ({cells} cells)")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        sys.exit("usage: validate_trace.py <trace.jsonl>")
    main(sys.argv[1])
