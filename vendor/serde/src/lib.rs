//! Vendored, minimal `serde` facade for the offline build environment.
//!
//! The workspace uses serde for exactly one thing: `#[derive(Serialize,
//! Deserialize)]` on plain data types plus `serde_json::to_string` for
//! structural equality checks and report dumps. This crate provides that
//! surface without the real serde's data-model machinery:
//!
//! * [`Serialize`] writes the value directly as JSON into a `String`.
//! * [`Deserialize`] is a marker trait with a blanket impl (nothing in the
//!   workspace deserializes).
//!
//! Swap back to crates.io serde by editing `[workspace.dependencies]`.

// Let the derive's generated `::serde::...` paths resolve inside this
// crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Serialize `self` as JSON text appended to `out`.
///
/// This is a deliberately tiny stand-in for serde's `Serialize`: the
/// derive macro writes fields in declaration order, so output is
/// deterministic — which is all the workspace's structural-equality
/// checks need.
pub trait Serialize {
    /// Append the JSON encoding of `self` to `out`.
    fn serialize_into(&self, out: &mut String);
}

/// Marker stand-in for serde's `Deserialize`; blanket-implemented.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

fn push_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_display_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_into(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_display_serialize!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

macro_rules! impl_float_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_into(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // Real JSON has no NaN/inf; encode as null like
                    // serde_json's lossy modes do.
                    out.push_str("null");
                }
            }
        }
    )*};
}

impl_float_serialize!(f32, f64);

impl Serialize for str {
    fn serialize_into(&self, out: &mut String) {
        push_json_str(self, out);
    }
}

impl Serialize for String {
    fn serialize_into(&self, out: &mut String) {
        push_json_str(self, out);
    }
}

impl Serialize for char {
    fn serialize_into(&self, out: &mut String) {
        push_json_str(&self.to_string(), out);
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize_into(&self, out: &mut String) {
        (**self).serialize_into(out);
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize_into(&self, out: &mut String) {
        (**self).serialize_into(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_into(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_into(out),
            None => out.push_str("null"),
        }
    }
}

fn serialize_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_into(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_into(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_into(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_into(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize_into(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

fn serialize_map_entries<'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (String, &'a V)>,
    out: &mut String,
) {
    out.push('{');
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&k, out);
        out.push(':');
        v.serialize_into(out);
    }
    out.push('}');
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_into(&self, out: &mut String) {
        serialize_map_entries(self.iter().map(|(k, v)| (k.to_string(), v)), out);
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn serialize_into(&self, out: &mut String) {
        // Hash-iteration order varies per RandomState; sort by stringified
        // key so structurally equal maps serialize identically (the
        // workspace's determinism checks compare JSON strings).
        let mut entries: Vec<(String, &V)> = self.iter().map(|(k, v)| (k.to_string(), v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        serialize_map_entries(entries.into_iter(), out);
    }
}

macro_rules! impl_tuple_serialize {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_into(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    self.$idx.serialize_into(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}

impl_tuple_serialize!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(A.0, B.1, C.2, D.3, E.4)(
    A.0, B.1, C.2, D.3, E.4, F.5
)(A.0, B.1, C.2, D.3, E.4, F.5, G.6)(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        let mut s = String::new();
        (1u32, -2i64, 1.5f64, true, "a\"b".to_string()).serialize_into(&mut s);
        assert_eq!(s, r#"[1,-2,1.5,true,"a\"b"]"#);

        let mut s = String::new();
        vec![Some(1u8), None].serialize_into(&mut s);
        assert_eq!(s, "[1,null]");
    }

    #[test]
    fn hashmap_serializes_in_sorted_key_order() {
        let mut m = std::collections::HashMap::new();
        for (k, v) in [("b", 2u32), ("a", 1), ("c", 3)] {
            m.insert(k.to_string(), v);
        }
        let mut s = String::new();
        m.serialize_into(&mut s);
        assert_eq!(s, r#"{"a":1,"b":2,"c":3}"#);
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Point {
        x: u32,
        y: Vec<f64>,
    }

    #[derive(Serialize, Deserialize)]
    struct Id(u32);

    #[derive(Serialize, Deserialize)]
    enum Mix {
        Unit,
        Tup(u32, bool),
        Named { v: f64 },
    }

    #[test]
    fn derived_shapes() {
        let mut s = String::new();
        Point { x: 3, y: vec![1.0, 2.5] }.serialize_into(&mut s);
        assert_eq!(s, r#"{"x":3,"y":[1,2.5]}"#);

        let mut s = String::new();
        Id(9).serialize_into(&mut s);
        assert_eq!(s, "9");

        let mut s = String::new();
        Mix::Unit.serialize_into(&mut s);
        assert_eq!(s, r#""Unit""#);

        let mut s = String::new();
        Mix::Tup(1, false).serialize_into(&mut s);
        assert_eq!(s, r#"{"Tup":[1,false]}"#);

        let mut s = String::new();
        Mix::Named { v: 0.5 }.serialize_into(&mut s);
        assert_eq!(s, r#"{"Named":{"v":0.5}}"#);
    }
}
