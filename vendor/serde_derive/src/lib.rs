//! Vendored, minimal `serde_derive` for the offline build environment.
//!
//! Supports exactly the shapes this workspace uses: non-generic structs
//! (unit / tuple / named) and non-generic enums (unit / tuple / named
//! variants), with no `#[serde(...)]` attributes. `Serialize` expands to a
//! direct JSON writer against the vendored `serde::Serialize` trait;
//! `Deserialize` expands to nothing (the vendored `serde` has a blanket
//! marker impl).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// Field layout of a struct or an enum variant.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

/// Skips leading outer attributes (`#[...]`) and visibility qualifiers.
fn skip_attrs_and_vis(iter: &mut Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) / pub(super)
                    }
                }
            }
            _ => return,
        }
    }
}

/// Splits a field-list token stream on top-level commas, treating `<...>`
/// as nesting (delimited groups nest automatically in the token tree).
fn split_top_level_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle: i32 = 0;
    let mut prev_dash = false;
    for t in tokens {
        let mut dash = false;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' if !prev_dash => angle -= 1, // `->` in fn-pointer types
                '-' => dash = true,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    prev_dash = false;
                    continue;
                }
                _ => {}
            }
        }
        prev_dash = dash;
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extracts the field name from one named-field declaration
/// (`attrs* vis? name : type`).
fn field_name(tokens: Vec<TokenTree>) -> String {
    let mut iter = tokens.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde_derive: expected field name, got {other:?}"),
    }
}

fn parse_fields_group(g: &proc_macro::Group) -> Fields {
    let items = split_top_level_commas(g.stream().into_iter().collect());
    match g.delimiter() {
        Delimiter::Parenthesis => Fields::Tuple(items.len()),
        Delimiter::Brace => Fields::Named(items.into_iter().map(field_name).collect()),
        _ => panic!("vendored serde_derive: unexpected field delimiter"),
    }
}

fn parse_variants(g: &proc_macro::Group) -> Vec<Variant> {
    let mut variants = Vec::new();
    for item in split_top_level_commas(g.stream().into_iter().collect()) {
        let mut iter = item.into_iter().peekable();
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("vendored serde_derive: expected variant name, got {other:?}"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) => parse_fields_group(g),
            _ => Fields::Unit, // unit variant or `= discriminant`
        };
        variants.push(Variant { name, fields });
    }
    variants
}

/// Parses a derive input into `(type_name, shape)`. Generic types are
/// rejected: nothing in this workspace derives serde on a generic type.
fn parse_input(input: TokenStream) -> (String, Shape) {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde_derive: expected struct/enum, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde_derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive: generic type `{name}` is not supported");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() != Delimiter::Bracket => {
                Shape::Struct(parse_fields_group(g))
            }
            // `struct X;` — anything else trailing (e.g. a `where`
            // clause) is an unsupported shape and must not be silently
            // serialized as a unit struct.
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
            None => Shape::Struct(Fields::Unit),
            other => panic!("vendored serde_derive: unsupported struct shape near {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(&g))
            }
            other => panic!("vendored serde_derive: expected enum body, got {other:?}"),
        },
        other => panic!("vendored serde_derive: cannot derive for `{other}`"),
    };
    (name, shape)
}

fn push_str_stmt(code: &mut String, literal: &str) {
    code.push_str(&format!("out.push_str({:?});\n", literal));
}

fn ser_expr(code: &mut String, expr: &str) {
    code.push_str(&format!("::serde::Serialize::serialize_into(&{expr}, out);\n"));
}

/// Writes the body serializing `fields` accessed through `access` (either
/// `self.<name>` for structs or bare bindings for match arms).
fn gen_fields_body(code: &mut String, fields: &Fields, access: impl Fn(&str) -> String) {
    match fields {
        Fields::Unit => push_str_stmt(code, "null"),
        Fields::Tuple(1) => ser_expr(code, &access("0")),
        Fields::Tuple(n) => {
            push_str_stmt(code, "[");
            for i in 0..*n {
                if i > 0 {
                    push_str_stmt(code, ",");
                }
                ser_expr(code, &access(&i.to_string()));
            }
            push_str_stmt(code, "]");
        }
        Fields::Named(names) => {
            push_str_stmt(code, "{");
            for (i, f) in names.iter().enumerate() {
                let key = if i > 0 { format!(",\"{f}\":") } else { format!("\"{f}\":") };
                push_str_stmt(code, &key);
                ser_expr(code, &access(f));
            }
            push_str_stmt(code, "}");
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let mut body = String::new();
    match &shape {
        Shape::Struct(fields) => {
            gen_fields_body(&mut body, fields, |f| format!("self.{f}"));
        }
        Shape::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        body.push_str(&format!("{name}::{vname} => {{\n"));
                        push_str_stmt(&mut body, &format!("\"{vname}\""));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        body.push_str(&format!("{name}::{vname}({}) => {{\n", binds.join(", ")));
                        push_str_stmt(&mut body, &format!("{{\"{vname}\":"));
                        let inner = Fields::Tuple(*n);
                        gen_fields_body(&mut body, &inner, |f| format!("__f{f}"));
                        push_str_stmt(&mut body, "}");
                    }
                    Fields::Named(fields) => {
                        body.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n",
                            fields.join(", ")
                        ));
                        push_str_stmt(&mut body, &format!("{{\"{vname}\":"));
                        let inner = Fields::Named(fields.clone());
                        gen_fields_body(&mut body, &inner, |f| f.to_string());
                        push_str_stmt(&mut body, "}");
                    }
                }
                body.push_str("}\n");
            }
            body.push_str("}\n");
        }
    }
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_into(&self, out: &mut ::std::string::String) {{\n{body}}}\n}}\n"
    );
    out.parse().expect("vendored serde_derive: generated invalid Rust")
}

/// The vendored `serde::Deserialize` is a marker trait with a blanket
/// impl, so the derive has nothing to emit.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
