//! Vendored, minimal `serde_json` for the offline build environment.
//!
//! Provides only [`to_string`], backed by the vendored `serde`'s direct
//! JSON writer. The workspace uses it for structural-equality assertions
//! and human-readable report dumps; nothing parses JSON back.

use std::fmt;

/// Serialization error. The vendored writer is infallible, so this is
/// never constructed; it exists so call sites can keep serde_json's
/// `Result`-based signature (and their `.unwrap()`s).
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json (vendored) error")
    }
}

impl std::error::Error for Error {}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a JSON string.
pub fn to_string<T: ?Sized + serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize_into(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn to_string_roundtrips_structure() {
        assert_eq!(super::to_string(&vec![1u32, 2, 3]).unwrap(), "[1,2,3]");
    }
}
