//! `any::<T>()` support for the primitive types the workspace samples.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Sample one arbitrary value of `Self`.
    fn arbitrary_value(rng: &mut TestRng) -> Self;

    /// Candidate simplifications of a failing value (simplest first).
    fn arbitrary_shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

/// Strategy over the full domain of `T` (see [`any`]).
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        value.arbitrary_shrink()
    }
}

/// A strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn arbitrary_shrink(&self) -> Vec<bool> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}
