//! Test-runner plumbing: configuration, the deterministic case RNG, and
//! failure reporting.

/// Per-block configuration, mirroring proptest's `ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property for `cases` sampled inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the vendored runner trades a
        // lower default for a faster tier-1 loop. Tests that need more
        // set it explicitly via `with_cases`.
        Self { cases: 32 }
    }
}

/// Deterministic per-case RNG (SplitMix64). Case `i` always sees the
/// same stream, so failures reproduce without recording seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the `case`-th sampled input of a property.
    pub fn from_case(case: u64) -> Self {
        let mut rng =
            Self { state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03 };
        // Warm up so nearby case indices decorrelate immediately.
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}
