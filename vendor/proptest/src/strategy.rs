//! Strategies: deterministic value generators, mirroring the subset of
//! proptest's `Strategy` the workspace uses (no shrinking).

use crate::test_runner::TestRng;
use std::ops::Range;

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of a failing value, simplest first.
    /// Every candidate must stay inside the strategy's domain (an `a..b`
    /// range never proposes values outside `[a, b)`; a sized vec never
    /// proposes a too-short vec). The default is no shrinking, which is
    /// what mapped/opaque strategies keep — `f` cannot be inverted.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Shrink an integer toward the range start (the "0" of the domain):
/// propose the start itself, the midpoint, and the predecessor — enough
/// for logarithmic convergence with a final linear step, while never
/// leaving `[start, value)`.
macro_rules! int_shrink_candidates {
    ($v:expr, $start:expr) => {{
        let (v, start) = ($v, $start);
        let mut out = Vec::new();
        if v != start {
            out.push(start);
            let mid = start + (v - start) / 2;
            if mid != start && mid != v {
                out.push(mid);
            }
            let dec = v - 1;
            if dec != start && dec != mid {
                out.push(dec);
            }
        }
        out
    }};
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates!(*value, self.start)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;

    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_below(self.end - self.start)
    }

    fn shrink(&self, value: &u64) -> Vec<u64> {
        int_shrink_candidates!(*value, self.start)
    }
}

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.next_below(span) as i64) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates!(*value, self.start)
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        (Range { start: self.start as f64, end: self.end as f64 }).sample(rng) as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }

            /// Shrink one component at a time, the rest held fixed.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(A.0, B.1, C.2, D.3, E.4)(
    A.0, B.1, C.2, D.3, E.4, F.5
)(A.0, B.1, C.2, D.3, E.4, F.5, G.6)(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)(
    A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8
)(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9));
