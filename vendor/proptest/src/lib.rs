//! Vendored, minimal `proptest` for the offline build environment.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, range / tuple / `prop_map` / `any::<bool>()` /
//! `collection::vec` strategies, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros. Unlike real proptest there is no shrinking and
//! case generation is fully deterministic (seeded by case index), which
//! suits a reproducibility-focused simulator: a failing case index is
//! stable across runs.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The commonly-used surface in one import, mirroring proptest's prelude.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: munches one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..(__cfg.cases as u64) {
                let __guard = $crate::test_runner::CaseGuard::new(stringify!($name), __case);
                let mut __rng = $crate::test_runner::TestRng::from_case(__case);
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                $body
                __guard.disarm();
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}
