//! Vendored, minimal `proptest` for the offline build environment.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, range / tuple / `prop_map` / `any::<bool>()` /
//! `collection::vec` strategies, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros. Case generation is fully deterministic (seeded
//! by case index), which suits a reproducibility-focused simulator: a
//! failing case index is stable across runs.
//!
//! Failing cases are **shrunk** before being reported: integers move
//! toward their range start, vecs halve (and shrink element-wise), bools
//! drop to `false`, tuples shrink component-wise — greedily, re-running
//! the property on each candidate until no candidate still fails, then
//! the minimal counterexample is printed. Mapped strategies
//! (`prop_map`) are opaque and do not shrink, matching the previous
//! behaviour for composite generators.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The commonly-used surface in one import, mirroring proptest's prelude.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `config.cases` times.
/// Failing cases are shrunk (see the crate docs) before being reported.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: munches one test fn at a time.
///
/// Each case samples the argument tuple through the tuple strategy
/// (identical draw order to per-argument sampling), runs the body under
/// `catch_unwind`, and on failure greedily adopts shrink candidates that
/// still fail before reporting the minimal counterexample. Re-running a
/// failing body prints its panic message each attempt; that noise is
/// confined to the already-failing test's captured output.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __strat = ($($strat,)+);
            // Pin the checker closure's parameter to the strategy's value
            // type (closure params cannot be inferred from later calls).
            fn __typed<S: $crate::strategy::Strategy, F: Fn(S::Value) -> bool>(
                _strat: &S,
                f: F,
            ) -> F {
                f
            }
            // True iff the property body panics for this argument tuple.
            let __fails = __typed(&__strat, |__vals| {
                let ($($arg,)+) = __vals;
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || $body)).is_err()
            });
            for __case in 0..(__cfg.cases as u64) {
                let mut __rng = $crate::test_runner::TestRng::from_case(__case);
                let __sampled = $crate::strategy::Strategy::sample(&__strat, &mut __rng);
                if !__fails(__sampled.clone()) {
                    continue;
                }
                // Shrink: adopt any candidate that still fails, restart
                // from it, stop when a whole round yields none (or the
                // re-run budget is spent).
                let mut __minimal = __sampled;
                let mut __budget: usize = 256;
                '__shrinking: loop {
                    let __candidates =
                        $crate::strategy::Strategy::shrink(&__strat, &__minimal);
                    for __candidate in __candidates {
                        if __budget == 0 {
                            break '__shrinking;
                        }
                        __budget -= 1;
                        if __fails(__candidate.clone()) {
                            __minimal = __candidate;
                            continue '__shrinking;
                        }
                    }
                    break;
                }
                let ($($arg,)+) = __minimal;
                panic!(
                    "proptest (vendored): property `{}` failed at deterministic case index {}; \
                     minimal counterexample: {} = {:?}",
                    stringify!($name),
                    __case,
                    stringify!(($($arg),+)),
                    ($(&$arg,)+),
                );
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    // Deliberately failing properties, compiled WITHOUT `#[test]` so the
    // suite can invoke them under `catch_unwind` and inspect the shrunk
    // counterexample in the panic message.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn fails_above_ten(x in 0u32..1000) {
            prop_assert!(x <= 10);
        }

        fn fails_on_big_element(v in crate::collection::vec(0u32..10, 1..20)) {
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        fn fails_when_flag_set(flag in any::<bool>(), n in 0usize..50) {
            prop_assert!(!flag || n > 100_000); // fails whenever flag is true
        }

        fn fails_on_nine(v in crate::collection::vec(0u32..10, 0..5)) {
            prop_assert!(!v.contains(&9));
        }
    }

    fn failure_message(f: fn()) -> String {
        let err = std::panic::catch_unwind(f).expect_err("property must fail");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a message")
    }

    #[test]
    fn integers_shrink_to_the_boundary() {
        let msg = failure_message(fails_above_ten);
        assert!(msg.contains("minimal counterexample"), "{msg}");
        assert!(msg.contains("(11,)"), "expected boundary value 11: {msg}");
    }

    #[test]
    fn vecs_shrink_to_a_single_minimal_element() {
        let msg = failure_message(fails_on_big_element);
        assert!(msg.contains("[5]"), "expected single-element [5]: {msg}");
    }

    #[test]
    fn tuples_shrink_componentwise() {
        let msg = failure_message(fails_when_flag_set);
        // flag stays true (false passes); n shrinks all the way to 0.
        assert!(msg.contains("(true, 0)"), "{msg}");
    }

    #[test]
    fn zero_floor_vecs_shrink_without_noop_candidates() {
        // A length-1 vec in a 0-floored size range must not propose
        // itself (the old "second half" bug burned the whole shrink
        // budget adopting a no-op clone) and must still reach the
        // minimal single-element counterexample.
        let vs = crate::collection::vec(0u32..10, 0..5);
        for c in vs.shrink(&vec![9u32]) {
            assert_ne!(c, vec![9u32], "candidate must differ from the value");
        }
        let msg = failure_message(fails_on_nine);
        assert!(msg.contains("[9]"), "expected minimal [9]: {msg}");
    }

    #[test]
    fn shrink_candidates_respect_domains() {
        let r = 5u32..100;
        for v in [6u32, 50, 99] {
            for c in r.shrink(&v) {
                assert!((5..v).contains(&c), "candidate {c} outside [5, {v})");
            }
        }
        assert!(r.shrink(&5).is_empty(), "start of range cannot shrink");

        let vs = crate::collection::vec(0u32..4, 2..10);
        let v = vec![3u32, 2, 1, 0];
        for c in vs.shrink(&v) {
            assert!(c.len() >= 2, "vec candidate below size floor: {c:?}");
        }
    }

    #[test]
    fn runs_exactly_the_configured_cases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(17))]
            fn counted(x in 0u32..10) {
                let _ = x;
                COUNT.fetch_add(1, Ordering::SeqCst);
            }
        }
        counted();
        assert_eq!(COUNT.load(Ordering::SeqCst), 17);
    }

    #[test]
    fn passing_properties_still_pass() {
        proptest! {
            fn holds(x in 0u32..100, v in crate::collection::vec(0u32..4, 0..8)) {
                prop_assert!(x < 100);
                prop_assert!(v.len() < 8);
            }
        }
        holds();
    }
}
