//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<T>` with length drawn from `size` (see [`vec()`](fn@vec)).
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }

    /// Shrink by halving: propose the first and second half of the
    /// failing vec (never shorter than the size range allows), then
    /// element-wise shrinks of the first position that can shrink.
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let half = value.len() / 2;
        if half >= self.size.start && half < value.len() {
            out.push(value[..half].to_vec());
            if half > 0 {
                // Skipped for length-1 vecs: the "second half" would be
                // the value itself, and a no-op candidate would let the
                // greedy loop adopt it forever without progress.
                out.push(value[half..].to_vec());
            }
        }
        for (i, v) in value.iter().enumerate() {
            let shrunk = self.element.shrink(v);
            if shrunk.is_empty() {
                continue;
            }
            for candidate in shrunk {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
            break; // one position per round keeps the candidate list small
        }
        out
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// is drawn uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
