//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<T>` with length drawn from `size` (see [`vec()`](fn@vec)).
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// is drawn uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
