//! Vendored, minimal `criterion` for the offline build environment.
//!
//! Implements the API surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`, and
//! `Bencher::iter` — with a plain wall-clock measurement loop instead of
//! criterion's statistics engine. Like real criterion, when the binary is
//! run without cargo's `--bench` flag (i.e. under `cargo test`), each
//! benchmark body executes exactly once as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget spent per benchmark when measuring.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// Top-level harness state.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes bench binaries with `--bench`; anything
        // else (notably `cargo test`) gets a one-iteration smoke run.
        let smoke = !std::env::args().any(|a| a == "--bench");
        Self { smoke }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { criterion: self, name }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.smoke, &id.to_string(), &mut f);
        self
    }
}

/// A named group of benchmarks (criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the vendored harness sizes its
    /// sample by wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.smoke, &label, &mut f);
        self
    }

    /// Benchmark `f` on `input` under `id` within this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.smoke, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for drop-in compatibility).
    pub fn finish(self) {}
}

/// Runs one benchmark closure and prints a one-line result.
fn run_one<F: FnMut(&mut Bencher)>(smoke: bool, label: &str, f: &mut F) {
    let mut b = Bencher { smoke, iterations: 0, elapsed: Duration::ZERO };
    f(&mut b);
    if smoke {
        eprintln!("  {label}: ok (smoke)");
    } else if b.iterations > 0 {
        let per_iter = b.elapsed.as_nanos() as f64 / b.iterations as f64;
        eprintln!("  {label}: {:.1} ns/iter ({} iters)", per_iter, b.iterations);
    } else {
        eprintln!("  {label}: no measurement taken");
    }
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    smoke: bool,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Repeatedly time `f` (once in smoke mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            black_box(f());
            self.iterations = 1;
            return;
        }
        // Calibrate a batch size so the clock is read roughly once per
        // millisecond of work: nanosecond-scale bodies would otherwise
        // spend most of the measured window inside `Instant::elapsed`.
        let calib_start = Instant::now();
        black_box(f());
        let one = calib_start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / one.as_nanos()).clamp(1, 100_000) as u64;
        // Warm-up, then measure whole batches within the budget.
        black_box(f());
        let start = Instant::now();
        let mut n = 0u64;
        while start.elapsed() < MEASURE_BUDGET {
            for _ in 0..batch {
                black_box(f());
            }
            n += batch;
        }
        self.iterations = n.max(1);
        self.elapsed = start.elapsed();
    }
}

/// A benchmark identifier with a parameter, e.g. `schedule_pop/10000`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier combining a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self { label: format!("{name}/{parameter}") }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation (accepted, not reported).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
