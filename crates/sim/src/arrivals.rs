//! Deterministic open-loop task arrival schedules.
//!
//! The streaming service mode (`clamshell-stream`) models tasks arriving
//! continuously at a target rate instead of materializing as a prebuilt
//! batch. The arrival process is *open-loop*: arrival instants are a pure
//! function of `(seed, rate)` drawn from a dedicated labeled stream (the
//! same [`fault_stream`] mechanism every adversity fault uses), and they
//! never gate admission or advance the simulated clock — the runner's
//! scheduling decisions are therefore identical at any rate, which is
//! what makes the streamed/batched bit-for-bit equivalence contract hold
//! (see ARCHITECTURE.md, "Streaming service mode"). Arrivals feed only
//! the *observability* side of a stream run: each `StreamCheckpoint`
//! reports how many tasks had arrived by the checkpoint instant and the
//! resulting backlog.
//!
//! Like [`OutageSchedule`](crate::faults::OutageSchedule), the schedule
//! is lazy and query-order-independent: inter-arrival gaps are
//! exponential around `1/rate` seconds, floored at one millisecond so
//! arrival instants are strictly increasing.

use crate::dist::{Exponential, Sample};
use crate::faults::fault_stream;
use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};

/// Dedicated fault-stream label for the arrival process. Globally unique
/// across all `fault_stream` call sites (lint rule D004).
pub const ARRIVALS: u64 = 0x0A77_1DEA;

/// The arrival process RNG: the single `fault_stream` call site both
/// [`ArrivalSchedule`] and [`ArrivalCounter`] draw from, so the two
/// views consume the *same* gap sequence by construction.
fn arrivals_stream(seed: u64) -> Rng {
    fault_stream(seed, ARRIVALS)
}

/// One inter-arrival gap: exponential around the configured mean,
/// floored at a millisecond so arrival instants strictly increase.
fn next_gap(rng: &mut Rng, gap: &Exponential) -> SimDuration {
    SimDuration::from_secs_f64(gap.sample(rng)).max(SimDuration::from_millis(1))
}

/// A deterministic open-loop arrival timeline: the instants at which
/// tasks 0, 1, 2, … of an unbounded stream arrive, generated lazily from
/// a dedicated labeled stream of the run seed.
///
/// ```
/// use clamshell_sim::arrivals::ArrivalSchedule;
/// use clamshell_sim::time::SimTime;
///
/// let mut a = ArrivalSchedule::new(7, 2.0);
/// let mut b = ArrivalSchedule::new(7, 2.0);
/// assert_eq!(a.arrival_time(10), b.arrival_time(10));
/// // Counting is monotone in time and consistent with arrival instants.
/// let t = a.arrival_time(4);
/// assert_eq!(a.arrived_by(t), 5);
/// assert_eq!(a.arrived_by(SimTime::ZERO), 0);
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalSchedule {
    rng: Rng,
    gap: Exponential,
    /// Arrival instants materialized so far, strictly increasing.
    times: Vec<SimTime>,
}

impl ArrivalSchedule {
    /// Build a schedule for `rate_per_sec` mean arrivals per simulated
    /// second, drawing from the dedicated [`ARRIVALS`] stream of `seed`.
    pub fn new(seed: u64, rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive and finite"
        );
        ArrivalSchedule {
            rng: arrivals_stream(seed),
            gap: Exponential::from_mean(1.0 / rate_per_sec),
            times: Vec::new(),
        }
    }

    /// Extend the materialized timeline to cover at least `n` arrivals.
    fn extend_to(&mut self, n: usize) {
        while self.times.len() < n {
            let prev = self.times.last().copied().unwrap_or(SimTime::ZERO);
            let gap = next_gap(&mut self.rng, &self.gap);
            self.times.push(prev + gap);
        }
    }

    /// The arrival instant of the `i`-th task of the stream (0-indexed).
    pub fn arrival_time(&mut self, i: usize) -> SimTime {
        self.extend_to(i + 1);
        self.times[i]
    }

    /// How many tasks have arrived at or before time `t`.
    pub fn arrived_by(&mut self, t: SimTime) -> u64 {
        while self.times.last().is_none_or(|&last| last <= t) {
            let n = self.times.len();
            self.extend_to(n + 1);
        }
        self.times.partition_point(|&at| at <= t) as u64
    }

    /// Arrival instants materialized so far (testing / reporting).
    pub fn generated(&self) -> &[SimTime] {
        &self.times
    }
}

/// The constant-memory view of the same arrival timeline: counts
/// arrivals at monotone non-decreasing probe times without materializing
/// the instants. [`ArrivalSchedule`] memoizes every arrival it ever
/// generates (O(arrivals) live bytes — fine for tests and reporting,
/// fatal for an unbounded service run), so the streaming engine uses
/// this instead: it keeps only the RNG cursor, the next pending arrival
/// instant, and the count — O(1) regardless of stream length.
///
/// Both views draw from the same labeled stream with the same gap floor,
/// so for any probe time `t`, `counter.arrived_by(t) ==
/// schedule.arrived_by(t)` exactly.
///
/// ```
/// use clamshell_sim::arrivals::{ArrivalCounter, ArrivalSchedule};
/// use clamshell_sim::time::SimTime;
///
/// let mut counter = ArrivalCounter::new(7, 2.0);
/// let mut schedule = ArrivalSchedule::new(7, 2.0);
/// let t = SimTime::from_secs(30);
/// assert_eq!(counter.arrived_by(t), schedule.arrived_by(t));
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalCounter {
    rng: Rng,
    gap: Exponential,
    /// The next not-yet-counted arrival instant.
    next: SimTime,
    count: u64,
}

impl ArrivalCounter {
    /// Build a counter over the `(seed, rate_per_sec)` arrival timeline
    /// (same parameters and stream as [`ArrivalSchedule::new`]).
    pub fn new(seed: u64, rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive and finite"
        );
        let mut rng = arrivals_stream(seed);
        let gap = Exponential::from_mean(1.0 / rate_per_sec);
        let next = SimTime::ZERO + next_gap(&mut rng, &gap);
        ArrivalCounter { rng, gap, next, count: 0 }
    }

    /// How many tasks have arrived at or before time `t`.
    ///
    /// Probe times must be non-decreasing across calls: the counter only
    /// moves forward. (The streaming engine's checkpoint instants are
    /// monotone by construction.)
    pub fn arrived_by(&mut self, t: SimTime) -> u64 {
        while self.next <= t {
            self.count += 1;
            self.next += next_gap(&mut self.rng, &self.gap);
        }
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic_and_strictly_increasing() {
        let mut a = ArrivalSchedule::new(42, 1.5);
        let mut b = ArrivalSchedule::new(42, 1.5);
        let ta: Vec<SimTime> = (0..200).map(|i| a.arrival_time(i)).collect();
        let tb: Vec<SimTime> = (0..200).map(|i| b.arrival_time(i)).collect();
        assert_eq!(ta, tb);
        for w in ta.windows(2) {
            assert!(w[0] < w[1], "arrival instants strictly increase");
        }
    }

    #[test]
    fn different_seeds_and_rates_differ() {
        let t = |seed, rate| ArrivalSchedule::new(seed, rate).arrival_time(9);
        assert_ne!(t(1, 1.0), t(2, 1.0));
        assert_ne!(t(1, 1.0), t(1, 4.0));
    }

    #[test]
    fn count_is_query_order_independent() {
        let mut fwd = ArrivalSchedule::new(3, 2.0);
        let mut rev = ArrivalSchedule::new(3, 2.0);
        let probes: Vec<SimTime> = (0..40).map(|i| SimTime::from_secs(i * 7)).collect();
        let a: Vec<u64> = probes.iter().map(|&t| fwd.arrived_by(t)).collect();
        let mut b: Vec<u64> = probes.iter().rev().map(|&t| rev.arrived_by(t)).collect();
        b.reverse();
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0] <= w[1], "arrival counts are monotone in time");
        }
    }

    #[test]
    fn mean_rate_tracks_configuration() {
        // 2 arrivals/sec over 1000 simulated seconds => ~2000 arrivals.
        let mut s = ArrivalSchedule::new(5, 2.0);
        let n = s.arrived_by(SimTime::from_secs(1000));
        assert!((1700..2300).contains(&n), "arrivals={n}");
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        let _ = ArrivalSchedule::new(1, 0.0);
    }

    #[test]
    fn counter_matches_schedule_exactly() {
        for (seed, rate) in [(1u64, 0.25), (9, 2.0), (77, 50.0)] {
            let mut counter = ArrivalCounter::new(seed, rate);
            let mut schedule = ArrivalSchedule::new(seed, rate);
            for i in 0..300 {
                let t = SimTime::from_millis(i * 137);
                assert_eq!(
                    counter.arrived_by(t),
                    schedule.arrived_by(t),
                    "seed={seed} rate={rate} t={t:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn counter_zero_rate_rejected() {
        let _ = ArrivalCounter::new(1, 0.0);
    }
}
