//! Streaming and batch statistics.
//!
//! Pool maintenance decides evictions from *empirical* per-worker latency
//! estimates ([`OnlineStats`], a Welford accumulator) and a one-sided
//! significance test against the latency threshold `PMℓ`
//! ([`OnlineStats::mean_exceeds`]). The experiment harness additionally
//! needs percentile summaries and empirical CDFs (Figures 2, 8, 9, 11, 12).

use crate::dist::standard_normal_cdf;
use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }

    /// Checkpoint encoding: the accumulator's exact state as three
    /// integer words `(n, mean_bits, m2_bits)`, floats as IEEE-754 bit
    /// patterns. Shard manifests persist these because decimal float
    /// formatting is not guaranteed to round-trip; the bit words are.
    pub fn to_words(&self) -> [u64; 3] {
        [self.n, self.mean.to_bits(), self.m2.to_bits()]
    }

    /// Rebuild an accumulator from [`Self::to_words`] output, bit-exact.
    pub fn from_words(words: [u64; 3]) -> Self {
        OnlineStats { n: words[0], mean: f64::from_bits(words[1]), m2: f64::from_bits(words[2]) }
    }

    /// One-sided z-test: is the true mean significantly **above**
    /// `threshold` at significance level `alpha`?
    ///
    /// This is the eviction test of pool maintenance (§4.2): a worker is a
    /// removal candidate when its empirical latency is "significantly above
    /// `PMℓ` (determined using a one-sided significance test)". With fewer
    /// than `min_n` observations we refuse to flag (not enough evidence),
    /// mirroring the paper's smoothing concerns for short histories.
    pub fn mean_exceeds(&self, threshold: f64, alpha: f64, min_n: u64) -> bool {
        if self.n < min_n.max(1) {
            return false;
        }
        if self.n == 1 {
            // Single observation: no variance estimate; fall back to a raw
            // comparison only if min_n allows it.
            return self.mean > threshold;
        }
        let se = (self.variance() / self.n as f64).sqrt();
        if se == 0.0 {
            return self.mean > threshold;
        }
        let z = (self.mean - threshold) / se;
        // p-value for H1: mean > threshold.
        let p = 1.0 - standard_normal_cdf(z);
        p < alpha
    }
}

/// A batch summary of a sample: count, mean, std, min/max, percentiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub std: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Median (p50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarize a sample. Returns a zeroed summary for an empty slice.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p90: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut acc = OnlineStats::new();
        for &x in xs {
            acc.push(x);
        }
        Summary {
            n: xs.len(),
            mean: acc.mean(),
            std: acc.std(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: percentile_sorted(&sorted, 0.50),
            p90: percentile_sorted(&sorted, 0.90),
            p95: percentile_sorted(&sorted, 0.95),
            p99: percentile_sorted(&sorted, 0.99),
        }
    }
}

/// Percentile of an unsorted sample, `p ∈ [0, 1]`, linear interpolation.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    percentile_sorted(&sorted, p)
}

/// Percentile of an already-sorted sample (linear interpolation between
/// closest ranks).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "percentile p out of range: {p}");
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let rank = p * (n - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }
}

/// Empirical CDF: returns `(sorted values, cumulative probabilities)`.
/// This is the plotting primitive behind Figure 2.
pub fn ecdf(xs: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    let probs = (1..=n).map(|i| i as f64 / n as f64).collect();
    (sorted, probs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = OnlineStats::new();
        for &x in &xs {
            acc.push(x);
        }
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic sample is 32/7.
        assert!((acc.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut acc = OnlineStats::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        acc.push(3.5);
        assert_eq!(acc.mean(), 3.5);
        assert_eq!(acc.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn merge_zero_count_sides_never_nan_poison() {
        // Without the zero-count guards the parallel-Welford update
        // divides by a zero total weight in degenerate shapes; every
        // combination of empty sides must stay finite and exact.
        let mut populated = OnlineStats::new();
        populated.push(4.0);
        populated.push(6.0);
        // empty-left: the populated side is copied bit-for-bit.
        let mut left = OnlineStats::new();
        left.merge(&populated);
        assert_eq!(left.to_words(), populated.to_words());
        // empty-right: identity, bit-for-bit.
        let mut right = populated;
        right.merge(&OnlineStats::new());
        assert_eq!(right.to_words(), populated.to_words());
        // empty-both: still the empty accumulator, mean/std well-defined.
        let mut both = OnlineStats::new();
        both.merge(&OnlineStats::new());
        assert_eq!(both, OnlineStats::new());
        assert_eq!(both.mean(), 0.0);
        assert_eq!(both.std(), 0.0);
        assert!(both.mean().is_finite() && both.std().is_finite());
    }

    #[test]
    fn words_round_trip_is_bit_exact() {
        let mut acc = OnlineStats::new();
        for i in 0..17 {
            acc.push((i as f64).exp() * 0.1 + 1.0 / 3.0);
        }
        let back = OnlineStats::from_words(acc.to_words());
        assert_eq!(back.to_words(), acc.to_words());
        assert_eq!(back.count(), acc.count());
        assert_eq!(back.mean().to_bits(), acc.mean().to_bits());
        assert_eq!(back.variance().to_bits(), acc.variance().to_bits());
        // Empty round-trips too.
        assert_eq!(OnlineStats::from_words(OnlineStats::new().to_words()), OnlineStats::new());
    }

    #[test]
    fn mean_exceeds_detects_clearly_slow_worker() {
        // Worker mean 12s, threshold 8s, tight variance: should flag.
        let mut acc = OnlineStats::new();
        for i in 0..20 {
            acc.push(12.0 + (i % 3) as f64 * 0.5);
        }
        assert!(acc.mean_exceeds(8.0, 0.05, 5));
    }

    #[test]
    fn mean_exceeds_does_not_flag_fast_worker() {
        let mut acc = OnlineStats::new();
        for i in 0..20 {
            acc.push(3.0 + (i % 4) as f64 * 0.3);
        }
        assert!(!acc.mean_exceeds(8.0, 0.05, 5));
    }

    #[test]
    fn mean_exceeds_requires_min_samples() {
        let mut acc = OnlineStats::new();
        acc.push(100.0);
        acc.push(110.0);
        assert!(!acc.mean_exceeds(8.0, 0.05, 5), "only 2 of 5 required samples");
        for _ in 0..3 {
            acc.push(105.0);
        }
        assert!(acc.mean_exceeds(8.0, 0.05, 5));
    }

    #[test]
    fn mean_exceeds_borderline_needs_evidence() {
        // Mean barely above threshold with large variance: should NOT flag.
        let mut acc = OnlineStats::new();
        for i in 0..10 {
            acc.push(8.2 + if i % 2 == 0 { 6.0 } else { -6.0 });
        }
        assert!(!acc.mean_exceeds(8.0, 0.05, 5));
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_of_known_sample() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.n, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p90 - 90.1).abs() < 1e-9);
    }

    #[test]
    fn summary_empty_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn ecdf_monotone() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        let (vals, probs) = ecdf(&xs);
        assert_eq!(vals, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(probs.windows(2).all(|w| w[0] <= w[1]));
        assert!((probs[4] - 1.0).abs() < 1e-12);
    }
}
