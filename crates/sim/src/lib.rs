//! # clamshell-sim
//!
//! Discrete-event simulation kernel underpinning the CLAMShell reproduction.
//!
//! The CLAMShell paper (Haas et al., VLDB 2015) evaluates its latency
//! techniques both on a Python simulator and on live Mechanical Turk
//! workers. This crate provides the deterministic substrate that both the
//! crowd-platform simulator (`clamshell-crowd`) and the system runner
//! (`clamshell-core`) are built on:
//!
//! * [`time`] — integer-millisecond simulated clock types with a total
//!   order (no floating-point drift in the event queue).
//! * [`events`] — a deterministic event queue: ties in firing time break by
//!   insertion sequence, so identical seeds produce identical runs.
//! * [`rng`] — a small, fast, seedable PRNG (SplitMix64-seeded
//!   xoshiro256**) so results are reproducible across dependency upgrades.
//! * [`dist`] — the probability distributions the worker model needs
//!   (normal, log-normal, truncated normal, exponential, Beta, …).
//! * [`stats`] — streaming statistics (Welford mean/variance), percentile
//!   summaries, empirical CDFs, and the one-sided significance test used by
//!   pool maintenance.
//! * [`faults`] — deterministic fault-injection primitives: labeled fault
//!   RNG streams and the lazy outage schedule the adversity scenarios
//!   defer platform events through.
//! * [`arrivals`] — deterministic open-loop task arrival schedules for
//!   the streaming service mode (`clamshell-stream`).
//!
//! Everything in this crate is pure computation: no I/O, no wall-clock
//! access, no global state.

#![warn(missing_docs)]

pub mod arrivals;
pub mod dist;
pub mod events;
pub mod faults;
pub mod rng;
pub mod stats;
pub mod time;

pub use arrivals::{ArrivalCounter, ArrivalSchedule};
pub use dist::{Beta, Exponential, LogNormal, Normal, TruncNormal};
pub use events::EventQueue;
pub use faults::{fault_stream, OutageSchedule};
pub use rng::Rng;
pub use stats::{ecdf, percentile, OnlineStats, Summary};
pub use time::{SimDuration, SimTime};
