//! Probability distributions for the worker model.
//!
//! The paper's simulator draws each worker's task latency i.i.d. from
//! `N(μ_i, σ_i²)` and models population-level heterogeneity with heavy
//! right tails (per-worker means span tens of seconds to hours). We
//! implement exactly the distributions that model needs; `rand_distr` is
//! not on the offline allow-list and rolling our own keeps streams stable.
//!
//! All distributions are parameter-validated at construction and sample via
//! [`crate::rng::Rng`].

use crate::rng::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over `f64` that can be sampled with an [`Rng`].
pub trait Sample {
    /// Draw one variate.
    fn sample(&self, rng: &mut Rng) -> f64;
}

/// Normal (Gaussian) distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Create a normal distribution. `std` must be finite and non-negative.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(mean.is_finite(), "Normal mean must be finite");
        assert!(std.is_finite() && std >= 0.0, "Normal std must be >= 0");
        Normal { mean, std }
    }

    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Distribution standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }
}

impl Sample for Normal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.mean + self.std * rng.next_gaussian()
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
///
/// This is the canonical heavy-tailed model for crowd-worker latencies; the
/// paper's medical-deployment statistics (median minutes, 90th percentiles
/// of hours) are matched by `clamshell-trace` with log-normal populations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create from the parameters of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "LogNormal mu must be finite");
        assert!(sigma.is_finite() && sigma >= 0.0, "LogNormal sigma must be >= 0");
        LogNormal { mu, sigma }
    }

    /// Construct a log-normal from its *median* and a target upper
    /// `quantile` value at probability `p` (e.g. median 240 s and p90 of
    /// 3960 s). This is how trace calibration specifies populations.
    pub fn from_median_quantile(median: f64, p: f64, value_at_p: f64) -> Self {
        assert!(median > 0.0 && value_at_p > 0.0, "quantile anchors must be positive");
        assert!((0.5..1.0).contains(&p), "p must be in [0.5, 1)");
        let z = standard_normal_quantile(p);
        let mu = median.ln();
        let sigma = ((value_at_p.ln() - mu) / z).max(0.0);
        LogNormal { mu, sigma }
    }

    /// Median of the distribution (`exp(mu)`).
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Mean of the distribution (`exp(mu + sigma²/2)`).
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    /// Underlying normal's `mu`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Underlying normal's `sigma`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The `p`-quantile of the distribution.
    pub fn quantile(&self, p: f64) -> f64 {
        (self.mu + self.sigma * standard_normal_quantile(p)).exp()
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        (self.mu + self.sigma * rng.next_gaussian()).exp()
    }
}

/// Normal distribution truncated below at `floor` (resampling would bias
/// the mean badly for aggressive floors, so we clamp instead — matching
/// how the paper's simulator must handle negative latency draws).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruncNormal {
    inner: Normal,
    floor: f64,
}

impl TruncNormal {
    /// Create a floored normal distribution.
    pub fn new(mean: f64, std: f64, floor: f64) -> Self {
        assert!(floor.is_finite(), "floor must be finite");
        TruncNormal { inner: Normal::new(mean, std), floor }
    }

    /// The floor value.
    pub fn floor(&self) -> f64 {
        self.floor
    }

    /// Mean of the *untruncated* normal.
    pub fn raw_mean(&self) -> f64 {
        self.inner.mean()
    }
}

impl Sample for TruncNormal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.inner.sample(rng).max(self.floor)
    }
}

/// Exponential distribution with the given rate `λ` (mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create from a rate parameter (`> 0`).
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "Exponential rate must be > 0");
        Exponential { rate }
    }

    /// Create from the mean (`> 0`).
    pub fn from_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "Exponential mean must be > 0");
        Exponential { rate: 1.0 / mean }
    }

    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut Rng) -> f64 {
        -rng.next_f64_open().ln() / self.rate
    }
}

/// Beta distribution, used for worker accuracies `λ_i ∈ (0, 1)`.
///
/// Sampled via Cheng's rejection algorithms (BB/BC), valid for all
/// `alpha, beta > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Beta {
    alpha: f64,
    beta: f64,
}

impl Beta {
    /// Create a Beta(alpha, beta) distribution; both parameters `> 0`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "Beta alpha must be > 0");
        assert!(beta.is_finite() && beta > 0.0, "Beta beta must be > 0");
        Beta { alpha, beta }
    }

    /// Distribution mean `alpha / (alpha + beta)`.
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    fn sample_gamma(shape: f64, rng: &mut Rng) -> f64 {
        // Marsaglia & Tsang's method; boost for shape < 1.
        if shape < 1.0 {
            let u = rng.next_f64_open();
            return Self::sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = rng.next_gaussian();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = rng.next_f64_open();
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Sample for Beta {
    fn sample(&self, rng: &mut Rng) -> f64 {
        let x = Self::sample_gamma(self.alpha, rng);
        let y = Self::sample_gamma(self.beta, rng);
        x / (x + y)
    }
}

/// Inverse CDF of the standard normal (Acklam's rational approximation,
/// max relative error ≈ 1.15e-9 — ample for calibration and the one-sided
/// significance tests in pool maintenance).
pub fn standard_normal_quantile(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// CDF of the standard normal, via `erf` (Abramowitz–Stegun 7.1.26,
/// |error| < 1.5e-7).
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(5.0, 2.0);
        let mut rng = Rng::new(1);
        let xs: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 5.0).abs() < 0.03, "mean={mean}");
        assert!((var - 4.0).abs() < 0.1, "var={var}");
    }

    #[test]
    fn lognormal_median_and_mean() {
        let d = LogNormal::new(2.0, 0.5);
        let mut rng = Rng::new(2);
        let mut xs: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        let median = xs[xs.len() / 2];
        assert!((median / d.median() - 1.0).abs() < 0.03, "median={median}");
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean / d.mean() - 1.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn lognormal_from_median_quantile_hits_anchors() {
        // Anchors from the paper: per-worker median 240s, p90 of 3960s.
        let d = LogNormal::from_median_quantile(240.0, 0.9, 3960.0);
        assert!((d.median() - 240.0).abs() < 1e-9);
        assert!((d.quantile(0.9) / 3960.0 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn trunc_normal_respects_floor() {
        let d = TruncNormal::new(1.0, 5.0, 0.25);
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.25);
        }
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::from_mean(7.0);
        let mut rng = Rng::new(4);
        let xs: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, _) = moments(&xs);
        assert!((mean / 7.0 - 1.0).abs() < 0.03, "mean={mean}");
    }

    #[test]
    fn beta_moments_and_support() {
        let d = Beta::new(8.0, 2.0);
        let mut rng = Rng::new(5);
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let (mean, _) = moments(&xs);
        assert!((mean - 0.8).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn beta_small_shape_supported() {
        let d = Beta::new(0.5, 0.5);
        let mut rng = Rng::new(6);
        let xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, _) = moments(&xs);
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn quantile_cdf_inverse_relationship() {
        for &p in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.975, 0.999] {
            let z = standard_normal_quantile(p);
            let back = standard_normal_cdf(z);
            assert!((back - p).abs() < 2e-4, "p={p} z={z} back={back}");
        }
    }

    #[test]
    fn quantile_known_values() {
        assert!(standard_normal_quantile(0.5).abs() < 1e-9);
        assert!((standard_normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((standard_normal_quantile(0.9) - 1.281552).abs() < 1e-4);
    }

    #[test]
    #[should_panic]
    fn normal_rejects_negative_std() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    #[should_panic]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }
}
