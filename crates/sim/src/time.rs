//! Simulated time.
//!
//! Simulated time is measured in whole milliseconds from the start of the
//! run. Integer time gives the event queue a total order (floats would make
//! tie-breaking ill-defined) and keeps long runs free of accumulation error.
//!
//! Both [`SimTime`] (a point on the timeline) and [`SimDuration`] (a span)
//! are thin wrappers over `u64`/`i64` milliseconds with the arithmetic the
//! rest of the workspace needs. Conversions to floating-point seconds and
//! minutes exist only at reporting boundaries.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in simulated time, in milliseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in milliseconds. Always non-negative.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinite" sentinel for comparisons.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Build a time from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Build a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Raw milliseconds since the start of the run.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Time as fractional minutes (for reporting only).
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is
    /// actually later, which callers use to tolerate clock-skew-free logic.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction yielding a duration, `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// An effectively infinite duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Build a duration from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Build a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Build a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Build a duration from fractional seconds, rounding to the nearest
    /// millisecond and clamping negatives to zero (sampled latencies can
    /// dip below zero before truncation; see [`crate::dist::TruncNormal`]).
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * 1000.0).round().min(u64::MAX as f64) as u64)
        }
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Duration as fractional minutes (for reporting only).
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Integer division of two durations (how many `rhs` fit in `self`).
    pub fn div_duration(self, rhs: SimDuration) -> u64 {
        self.0.checked_div(rhs.0).unwrap_or(0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_millis(), 3000);
        assert_eq!(SimDuration::from_mins(2).as_millis(), 120_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-4.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!((t + d).since(t), d);
        // Saturating: earlier.since(later) is zero, not a panic.
        assert_eq!(t.since(t + d), SimDuration::ZERO);
        assert_eq!(t.checked_since(t + d), None);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_secs(6);
        let b = SimDuration::from_secs(4);
        assert_eq!(a + b, SimDuration::from_secs(10));
        assert_eq!(a - b, SimDuration::from_secs(2));
        assert_eq!(b - a, SimDuration::ZERO);
        assert_eq!(a * 2, SimDuration::from_secs(12));
        assert_eq!(a / 2, SimDuration::from_secs(3));
        assert_eq!(a.div_duration(b), 1);
        assert_eq!(a.div_duration(SimDuration::ZERO), 0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![SimTime::from_millis(5), SimTime::ZERO, SimTime::from_millis(3)];
        v.sort();
        assert_eq!(v, vec![SimTime::ZERO, SimTime::from_millis(3), SimTime::from_millis(5)]);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }
}
