//! Deterministic fault-injection primitives for the event loop.
//!
//! The adversity scenarios (see the `clamshell-scenarios` crate) need to
//! perturb a simulation **without** perturbing any of its unrelated
//! random streams: enabling an outage must not change which worker
//! profiles are sampled, and enabling churn must not shift a single
//! latency draw. The rule, extending the determinism contract in
//! ARCHITECTURE.md, is that every fault consumes randomness only from a
//! **dedicated stream** derived via [`fault_stream`] — never from the
//! platform or worker generators.
//!
//! This module owns the kernel-level half of that machinery:
//!
//! * [`fault_stream`] — derive an independent, labeled fault RNG from
//!   the run seed (stateless, so construction order cannot matter);
//! * [`OutageSchedule`] — a lazy, deterministic alternating
//!   up-time/outage timeline used to defer platform events (assignment
//!   submissions, recruitment arrivals) to the end of a blackout.

use crate::dist::{Exponential, Sample};
use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};

/// Derive an independent fault RNG from the run seed and a stream label.
///
/// Unlike [`Rng::fork`], this is stateless: it never draws from (and so
/// never perturbs) a parent generator, and the same `(seed, label)` pair
/// yields the same stream no matter when or in what order fault streams
/// are created.
///
/// ```
/// use clamshell_sim::faults::fault_stream;
///
/// let mut a = fault_stream(7, 1);
/// let mut b = fault_stream(7, 1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert_ne!(fault_stream(7, 1).next_u64(), fault_stream(7, 2).next_u64());
/// ```
pub fn fault_stream(seed: u64, label: u64) -> Rng {
    // Golden-ratio mixing keeps consecutive labels decorrelated before
    // the SplitMix64 expansion inside `Rng::new`.
    Rng::new(
        seed ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31) ^ 0xFA17_FA17_FA17_FA17,
    )
}

/// A deterministic alternating schedule of platform up-time and outage
/// windows, generated lazily from a dedicated fault stream.
///
/// Windows are half-open `[start, end)` intervals: a query exactly at
/// `end` is already recovered. Both up-time gaps and outage durations
/// are exponentially distributed around their configured means, floored
/// at one millisecond so windows never collapse to zero width.
///
/// Queries may arrive in any order; the schedule materializes windows on
/// demand up to the furthest time asked about, so the window sequence is
/// a pure function of the seed and the means.
#[derive(Debug, Clone)]
pub struct OutageSchedule {
    rng: Rng,
    uptime: Exponential,
    outage: Exponential,
    /// Windows generated so far, in increasing order.
    windows: Vec<(SimTime, SimTime)>,
    /// End of the last generated window (next gap starts here).
    horizon: SimTime,
}

impl OutageSchedule {
    /// Build a schedule from a dedicated stream of `seed` with the given
    /// mean up-time between outages and mean outage duration.
    pub fn new(seed: u64, mean_uptime: SimDuration, mean_outage: SimDuration) -> Self {
        assert!(mean_uptime > SimDuration::ZERO, "mean up-time must be positive");
        assert!(mean_outage > SimDuration::ZERO, "mean outage must be positive");
        OutageSchedule {
            rng: fault_stream(seed, 0x0074_A6E5),
            uptime: Exponential::from_mean(mean_uptime.as_secs_f64()),
            outage: Exponential::from_mean(mean_outage.as_secs_f64()),
            windows: Vec::new(),
            horizon: SimTime::ZERO,
        }
    }

    /// Extend the materialized window list until it covers time `t`.
    fn extend_past(&mut self, t: SimTime) {
        while self.horizon <= t {
            let gap = SimDuration::from_secs_f64(self.uptime.sample(&mut self.rng))
                .max(SimDuration::from_millis(1));
            let dur = SimDuration::from_secs_f64(self.outage.sample(&mut self.rng))
                .max(SimDuration::from_millis(1));
            let start = self.horizon + gap;
            let end = start + dur;
            self.windows.push((start, end));
            self.horizon = end;
        }
    }

    /// Is the platform down at time `t`?
    pub fn is_out(&mut self, t: SimTime) -> bool {
        self.defer(t).is_some()
    }

    /// If `t` falls inside an outage window, the recovery time (strictly
    /// greater than `t`) the caller should defer the event to; `None`
    /// when the platform is up.
    pub fn defer(&mut self, t: SimTime) -> Option<SimTime> {
        self.extend_past(t);
        // Binary search the window whose end is the first strictly after
        // `t`; `t` is inside it iff it started already.
        let idx = self.windows.partition_point(|&(_, end)| end <= t);
        match self.windows.get(idx) {
            Some(&(start, end)) if start <= t => Some(end),
            _ => None,
        }
    }

    /// Windows materialized so far (testing / reporting).
    pub fn generated(&self) -> &[(SimTime, SimTime)] {
        &self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(seed: u64) -> OutageSchedule {
        OutageSchedule::new(seed, SimDuration::from_secs(60), SimDuration::from_secs(20))
    }

    #[test]
    fn fault_streams_are_deterministic_and_labeled() {
        let seq = |label: u64| {
            let mut r = fault_stream(42, label);
            (0..8).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(seq(3), seq(3));
        assert_ne!(seq(3), seq(4));
        // Independent of the main run streams: same seed, different salt.
        assert_ne!(seq(0)[0], Rng::new(42).next_u64());
    }

    #[test]
    fn windows_alternate_and_are_ordered() {
        let mut s = sched(1);
        s.extend_past(SimTime::from_secs(3600));
        let ws = s.generated();
        assert!(ws.len() > 10, "an hour should hold many windows");
        for w in ws.windows(2) {
            assert!(w[0].0 < w[0].1, "window non-empty");
            assert!(w[0].1 < w[1].0, "gap between windows non-empty");
        }
    }

    #[test]
    fn defer_points_to_window_end() {
        let mut s = sched(2);
        s.extend_past(SimTime::from_secs(1000));
        let (start, end) = s.generated()[0];
        assert_eq!(s.defer(start), Some(end), "start is inside");
        let mid = SimTime::from_millis((start.as_millis() + end.as_millis()) / 2);
        assert_eq!(s.defer(mid), Some(end));
        assert_eq!(s.defer(end), None, "half-open: recovered at end");
        assert!(s.defer(SimTime::ZERO).is_none(), "first gap is up-time");
    }

    #[test]
    fn query_order_does_not_change_the_schedule() {
        let mut fwd = sched(3);
        let mut rev = sched(3);
        let probes: Vec<SimTime> = (0..50).map(|i| SimTime::from_secs(i * 37)).collect();
        let a: Vec<_> = probes.iter().map(|&t| fwd.defer(t)).collect();
        let b: Vec<_> = probes.iter().rev().map(|&t| rev.defer(t)).collect();
        let b_fwd: Vec<_> = b.into_iter().rev().collect();
        assert_eq!(a, b_fwd);
        assert_eq!(fwd.generated(), rev.generated());
    }

    #[test]
    fn mean_occupancy_tracks_configuration() {
        // 60s up / 20s down => ~25% of time inside an outage.
        let mut s = sched(4);
        let total = 400_000u64; // ms probes over ~6.6 simulated hours
        let mut out = 0usize;
        let mut probes = 0usize;
        for ms in (0..total * 60).step_by(250) {
            probes += 1;
            if s.is_out(SimTime::from_millis(ms)) {
                out += 1;
            }
        }
        let frac = out as f64 / probes as f64;
        assert!((0.18..0.32).contains(&frac), "outage occupancy={frac}");
    }
}
