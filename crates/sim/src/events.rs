//! Deterministic discrete-event queue.
//!
//! The runner in `clamshell-core` advances simulated time by repeatedly
//! popping the earliest pending event. Determinism is essential (the
//! experiment harness diffs regenerated tables), so events that fire at the
//! same [`SimTime`] are delivered in insertion order — a plain
//! `BinaryHeap<(time, event)>` would order ties by the event payload, which
//! is both surprising and fragile.
//!
//! # Implementation
//!
//! The queue is a **two-list ("near/far") event list** in the tradition of
//! splay-free DES queues (Blackstone's two-list queue; the structure
//! behind SPEEDES and ladder queues), replacing the original
//! `BinaryHeap<Scheduled>`:
//!
//! * A small **near list** holds every event at or before the *pivot
//!   time*, sorted descending by `(time, seq)` — so the earliest event is
//!   at the back and [`EventQueue::pop`] is an O(1) `Vec::pop`.
//! * An unstructured **far list** holds everything later than the pivot;
//!   [`EventQueue::schedule`] is an O(1) push for them (the common case —
//!   new events land in the future).
//! * When the near list drains, a **rebuild** advances the pivot by an
//!   adaptive width, sweeps the far list once moving everything at or
//!   before the new pivot into the near list, and sorts that chunk. The
//!   width self-tunes (doubling/halving) toward a chunk size that grows
//!   with the queue, so each event is swept O(1) amortized times.
//!
//! On the simulator's *hold pattern* — pop the earliest event, schedule a
//! replacement some delta ahead, pending count steady around the
//! retainer-pool size — this does amortized O(1) pops and schedules plus
//! an O(chunk log chunk) sort every chunk-many pops, where a heap pays
//! O(log n) sift traffic per operation. The `hotloop` bench in
//! `clamshell-bench` measures it against a faithful copy of the previous
//! `BinaryHeap` implementation; `BENCH_hotloop.json` at the repo root
//! records the current numbers (≈ +25% events/sec at pool-sized queues,
//! +60–95% at sweep-scale pending counts on the dev container).
//!
//! Determinism is preserved exactly: `(time, seq)` pairs are unique, every
//! pop takes the global minimum under that order, and all pivot/width
//! decisions are pure functions of the operation sequence — identical runs
//! remain bit-identical, and mis-tuned widths can only cost time, never
//! change pop order. `tests/properties.rs` at the workspace root checks
//! pop-order equivalence against a reference `BinaryHeap` model under
//! random interleaved schedule/pop sequences.

use crate::time::SimTime;

/// One pending event: firing time, global insertion sequence (the FIFO
/// tie-breaker), and the payload.
#[derive(Debug, Clone)]
struct Entry<E> {
    at: u64,
    seq: u64,
    event: E,
}

/// Floor for the rebuild chunk target (events per near-list refill).
const MIN_CHUNK: usize = 16;

/// Ceiling for the rebuild chunk target — bounds both the sort and the
/// latency spike of a single rebuild on huge queues.
const MAX_CHUNK: usize = 1024;

/// A deterministic future-event list.
///
/// ```
/// use clamshell_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(5), "late");
/// q.schedule(SimTime::from_secs(1), "early");
/// q.schedule(SimTime::from_secs(1), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(5), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Events with `at <= pivot_t`, sorted descending by `(at, seq)`:
    /// the global minimum is `near.last()`.
    near: Vec<Entry<E>>,
    /// Events with `at > pivot_t`, unordered.
    far: Vec<Entry<E>>,
    /// The time boundary between the lists.
    pivot_t: u64,
    /// How far a rebuild advances the pivot; self-tunes toward the
    /// chunk target (see [`EventQueue::rebuild`]).
    width: u64,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Create an empty queue pre-sized for `capacity` pending events.
    ///
    /// The simulator's in-flight event count is bounded by the pool size
    /// (one completion per busy worker plus a few bookkeeping events), so
    /// callers that know their pool size avoid the early regrows.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            near: Vec::with_capacity(capacity.min(4 * MAX_CHUNK)),
            far: Vec::with_capacity(capacity),
            pivot_t: 0,
            width: 16,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; we clamp to
    /// `now` (the event fires "immediately") and debug-assert so tests
    /// catch it.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past: {at} < {}", self.now);
        let at = at.max(self.now).as_millis();
        let seq = self.next_seq;
        self.next_seq += 1;
        if at > self.pivot_t {
            // Common case: the event is beyond the pivot — O(1) append.
            self.far.push(Entry { at, seq, event });
        } else {
            // Near-future event: keep the near list sorted (descending,
            // so strictly-greater entries stay in front). `seq` is fresh,
            // so among equal times the new event sorts after existing
            // ones — FIFO, as documented.
            let pos = self.near.partition_point(|e| (e.at, e.seq) > (at, seq));
            self.near.insert(pos, Entry { at, seq, event });
        }
    }

    /// Pop the earliest event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            if let Some(e) = self.near.pop() {
                let at = SimTime::from_millis(e.at);
                self.now = at;
                return Some((at, e.event));
            }
            if self.far.is_empty() {
                return None;
            }
            self.rebuild();
        }
    }

    /// Time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match self.near.last() {
            Some(e) => Some(SimTime::from_millis(e.at)),
            // The near list is empty: the minimum (if any) is somewhere
            // in the unordered far list. O(n), but only reachable
            // between a drain and the next pop's rebuild.
            None => self.far.iter().map(|e| e.at).min().map(SimTime::from_millis),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.near.len() + self.far.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.near.is_empty() && self.far.is_empty()
    }

    /// Drop every pending event (used when a run is aborted early, e.g.
    /// once the learning loop converges). Keeps allocated capacity so a
    /// reused queue stops allocating once warm.
    pub fn clear(&mut self) {
        self.near.clear();
        self.far.clear();
        self.pivot_t = self.now.as_millis();
    }

    /// Refill the drained near list: advance the pivot, sweep the far
    /// list once for everything at or before it, sort that chunk.
    ///
    /// The pivot step self-tunes: if a sweep moved more than twice the
    /// chunk target the width halves, if it moved less than half it
    /// doubles — so rebuild frequency and chunk size stay balanced for
    /// whatever inter-event spacing the simulation produces. A sweep
    /// that moves nothing jumps the pivot to just below the far minimum
    /// and rescans (bounded: the second sweep always moves at least that
    /// minimum). Callers guarantee `far` is non-empty.
    fn rebuild(&mut self) {
        debug_assert!(self.near.is_empty() && !self.far.is_empty());
        // Chunk target: scales with the queue so the per-event sweep
        // count stays O(1) amortized as the simulation grows.
        let chunk = (self.far.len() / 16).clamp(MIN_CHUNK, MAX_CHUNK);
        loop {
            let pivot = self.pivot_t.saturating_add(self.width);
            let mut i = 0;
            while i < self.far.len() {
                if self.far[i].at <= pivot {
                    let e = self.far.swap_remove(i);
                    self.near.push(e);
                } else {
                    i += 1;
                }
            }
            if self.near.is_empty() {
                // Pivot landed short of every far event: jump to just
                // below the true minimum so the next sweep moves it.
                let min_t = self.far.iter().map(|e| e.at).min().expect("far is non-empty");
                self.pivot_t = min_t - 1;
                continue;
            }
            self.pivot_t = pivot;
            let moved = self.near.len();
            if moved > chunk * 2 {
                self.width = (self.width / 2).max(1);
            } else if moved < chunk / 2 {
                self.width = self.width.saturating_mul(2);
            }
            // Descending, minimum last; (at, seq) is unique so unstable
            // sorting is exact.
            self.near.sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(100);
        for i in 0..50 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn ties_break_by_insertion_order_across_rebuild_chunks() {
        // More tied events than any one rebuild chunk moves, plus ties
        // scheduled *after* the first pop (which forces them through the
        // near-insert path).
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(100);
        let n = 3000;
        for i in 0..n {
            q.schedule(t, i);
        }
        assert_eq!(q.pop(), Some((t, 0)));
        q.schedule(t, n);
        q.schedule(t, n + 1);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (1..n + 2).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), ());
        q.schedule(SimTime::from_millis(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(5));
        // Scheduling relative to now keeps working.
        q.schedule(q.now() + SimDuration::from_millis(1), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(6));
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(9));
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_millis(1), ());
        q.schedule(SimTime::from_millis(2), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        // Also after a pop drained the near list.
        q.schedule(SimTime::from_millis(9), ());
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(9)));
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    /// Sparse far-future events (half-hour patience timers among
    /// millisecond ticks) exercise the empty-sweep pivot jump.
    #[test]
    fn sparse_far_future_events_pop_in_order() {
        let mut q = EventQueue::new();
        let times = [1u64, 2, 3, 1_800_000, 3_600_000, 5, 90_000, 4, 1_799_999];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), i);
        }
        let mut sorted: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        sorted.sort_unstable();
        for (t, i) in sorted {
            assert_eq!(q.pop(), Some((SimTime::from_millis(t), i)));
        }
        assert_eq!(q.pop(), None);
    }

    /// A large queue drains in exact order through many rebuild cycles.
    #[test]
    fn large_queue_drains_in_exact_order() {
        let mut q = EventQueue::new();
        let n = 5_000u64;
        for i in 0..n {
            // Clustered pseudo-random times with plenty of collisions.
            q.schedule(SimTime::from_millis((i.wrapping_mul(2654435761)) % 977), i);
        }
        let mut last = (0u64, 0u64);
        for step in 0..n {
            let (at, e) = q.pop().expect("queue should hold n events");
            let key = (at.as_millis(), e);
            if step > 0 {
                assert!(key > last, "out of order: {key:?} after {last:?}");
            }
            last = key;
        }
        assert_eq!(q.pop(), None);
    }

    /// Exhaustive interleaving of a deterministic mixed workload must
    /// drain in exact (time, seq) order.
    #[test]
    fn drains_in_key_order_under_mixed_workload() {
        let mut q = EventQueue::new();
        let mut expect: Vec<(u64, u64)> = Vec::new(); // (time, seq)
        let mut seq = 0u64;
        for i in 0..200u64 {
            // Deterministic pseudo-random times via a multiplicative hash;
            // plenty of duplicates (mod 16) to exercise the tie contract,
            // offset past the advancing clock.
            let t = q.now().as_millis() + (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) % 16;
            q.schedule(SimTime::from_millis(t), seq);
            expect.push((t, seq));
            seq += 1;
            if i % 3 == 0 {
                // Interleave pops; clamp scheduling below at `now`.
                let (at, s) = q.pop().unwrap();
                expect.sort();
                let (et, es) = expect.remove(0);
                assert_eq!((at.as_millis(), s), (et, es));
                // Future schedules must respect the advanced clock.
                let floor = at.as_millis();
                q.schedule(SimTime::from_millis(floor + 1), seq);
                expect.push((floor + 1, seq));
                seq += 1;
            }
        }
        expect.sort();
        for (et, es) in expect {
            let (at, s) = q.pop().unwrap();
            assert_eq!((at.as_millis(), s), (et, es));
        }
        assert_eq!(q.pop(), None);
    }
}
