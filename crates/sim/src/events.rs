//! Deterministic discrete-event queue.
//!
//! The runner in `clamshell-core` advances simulated time by repeatedly
//! popping the earliest pending event. Determinism is essential (the
//! experiment harness diffs regenerated tables), so events that fire at the
//! same [`SimTime`] are delivered in insertion order — a plain
//! `BinaryHeap<(time, event)>` would order ties by the event payload, which
//! is both surprising and fragile.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending event: fires at `at`, tie-broken by monotonically increasing
/// sequence number.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
///
/// ```
/// use clamshell_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(5), "late");
/// q.schedule(SimTime::from_secs(1), "early");
/// q.schedule(SimTime::from_secs(1), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(5), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; we clamp to
    /// `now` (the event fires "immediately") and debug-assert so tests
    /// catch it.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past: {at} < {}", self.now);
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pop the earliest event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop every pending event (used when a run is aborted early, e.g.
    /// once the learning loop converges).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(100);
        for i in 0..50 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), ());
        q.schedule(SimTime::from_millis(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(5));
        // Scheduling relative to now keeps working.
        q.schedule(q.now() + SimDuration::from_millis(1), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(6));
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(9));
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_millis(1), ());
        q.schedule(SimTime::from_millis(2), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.now(), SimTime::ZERO);
    }
}
