//! Periodic progress snapshots of a streamed run, plus the running
//! digest that ties them to the batched reference report.
//!
//! A [`StreamCheckpoint`] is deliberately integer-only (like the golden
//! suite's `CompactReport`): serialized snapshots are trivially
//! byte-stable, so they can be committed as golden masters and
//! byte-compared across thread counts and retirement modes.

use clamshell_core::metrics::{AssignmentRecord, BatchStats, RunReport, TaskRecord};
use clamshell_obs::Fnv;
use serde::{Deserialize, Serialize};

/// Three running FNV-1a fingerprints over the task, assignment, and
/// batch logs of a run — one hasher per table, so rows can be folded
/// incrementally (as batches complete or retire) and still reproduce
/// the digest of the complete batched report.
///
/// Per-row word sequences mirror the golden suite's `CompactReport`
/// fingerprint: every field that identifies the row's scheduling outcome
/// is hashed as a little-endian `u64`, so any behavioural drift — even
/// one that leaves all aggregates untouched — flips a digest.
#[derive(Debug, Clone)]
pub struct StreamDigest {
    tasks: Fnv,
    assignments: Fnv,
    batches: Fnv,
}

impl Default for StreamDigest {
    fn default() -> Self {
        StreamDigest::new()
    }
}

impl StreamDigest {
    /// Fresh digest (no rows folded).
    pub fn new() -> Self {
        StreamDigest { tasks: Fnv::new(), assignments: Fnv::new(), batches: Fnv::new() }
    }

    fn word(h: &mut Fnv, w: u64) {
        h.write(&w.to_le_bytes());
    }

    /// Fold one task record.
    pub fn fold_task(&mut self, t: &TaskRecord) {
        let h = &mut self.tasks;
        Self::word(h, t.task as u64);
        Self::word(h, t.batch as u64);
        Self::word(h, t.ng as u64);
        Self::word(h, t.created.as_millis());
        Self::word(h, t.completed.as_millis());
        Self::word(h, t.winner.0 as u64);
        Self::word(h, t.winner_span.as_millis());
        Self::word(h, t.winner_age as u64);
        Self::word(h, t.correct as u64);
    }

    /// Fold one assignment record.
    pub fn fold_assignment(&mut self, a: &AssignmentRecord) {
        let h = &mut self.assignments;
        Self::word(h, a.task as u64);
        Self::word(h, a.worker.0 as u64);
        Self::word(h, a.start.as_millis());
        Self::word(h, a.end.as_millis());
        Self::word(h, a.terminated as u64);
    }

    /// Fold one batch-statistics row.
    pub fn fold_batch(&mut self, b: &BatchStats) {
        let h = &mut self.batches;
        Self::word(h, b.index as u64);
        Self::word(h, b.start.as_millis());
        Self::word(h, b.end.as_millis());
        Self::word(h, b.tasks as u64);
        Self::word(h, b.evicted as u64);
    }

    /// The three fingerprints `(tasks, assignments, batches)` as of the
    /// rows folded so far.
    pub fn values(&self) -> (u64, u64, u64) {
        (self.tasks.finish(), self.assignments.finish(), self.batches.finish())
    }

    /// Digest of a complete report — the batched reference the streamed
    /// (incrementally folded) digest must equal.
    pub fn of(report: &RunReport) -> Self {
        let mut d = StreamDigest::new();
        for t in &report.tasks {
            d.fold_task(t);
        }
        for a in &report.assignments {
            d.fold_assignment(a);
        }
        for b in &report.batches {
            d.fold_batch(b);
        }
        d
    }
}

/// One periodic snapshot of a streamed run, emitted at a batch boundary
/// once enough tasks have completed since the previous snapshot.
///
/// All fields are integers (millisecond times, micro-dollar cost), so a
/// serialized checkpoint sequence is byte-stable across platforms,
/// thread counts, and retirement modes. `arrived`/`backlog` come from
/// the open-loop arrival schedule and are the only rate-dependent
/// fields; everything else is a pure function of `(RunConfig, seed)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamCheckpoint {
    /// Snapshot sequence number, from 0.
    pub seq: u64,
    /// Simulated time of the batch boundary, milliseconds.
    pub at_ms: u64,
    /// Tasks of the stream that had arrived by `at_ms` (open-loop
    /// schedule; reporting only).
    pub arrived: u64,
    /// Tasks admitted to the runner so far.
    pub admitted: u64,
    /// Tasks completed so far.
    pub completed: u64,
    /// `arrived - completed`, floored at zero: the service backlog the
    /// open-loop clients observe.
    pub backlog: u64,
    /// Batches run so far.
    pub batches: u64,
    /// Labels produced so far (Σ task `ng`).
    pub labels: u64,
    /// Labels matching ground truth so far.
    pub labels_correct: u64,
    /// Assignments logged so far (completed + terminated).
    pub assignments: u64,
    /// Assignments that ended terminated.
    pub terminated: u64,
    /// Cumulative cost, micro-dollars.
    pub cost_micro: u64,
    /// Workers ever recruited.
    pub recruited: u64,
    /// Workers evicted by maintenance.
    pub evicted: u64,
    /// Workers who walked out mid-assignment.
    pub departed: u64,
    /// Running task-log fingerprint ([`StreamDigest`]).
    pub digest_tasks: u64,
    /// Running assignment-log fingerprint.
    pub digest_assignments: u64,
    /// Running batch-log fingerprint.
    pub digest_batches: u64,
    /// Trace events recorded so far (0 when observability is off).
    pub obs_recorded: u64,
    /// Trace fingerprint over every event so far (0 when off).
    pub obs_fingerprint: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use clamshell_core::runner::run_batched;
    use clamshell_core::task::TaskSpec;
    use clamshell_core::RunConfig;
    use clamshell_trace::Population;

    fn report(seed: u64) -> RunReport {
        let cfg = RunConfig { pool_size: 4, ng: 2, seed, ..Default::default() };
        let specs: Vec<TaskSpec> = (0..6).map(|i| TaskSpec::new(vec![(i % 2) as u32; 2])).collect();
        run_batched(cfg, Population::mturk_live(), specs, 3)
    }

    #[test]
    fn incremental_fold_matches_whole_report_digest() {
        let rep = report(9);
        let whole = StreamDigest::of(&rep);
        // Fold the same rows interleaved table-by-table in two halves —
        // the per-table hashers make interleaving irrelevant.
        let mut inc = StreamDigest::new();
        let (t_half, a_half) = (rep.tasks.len() / 2, rep.assignments.len() / 2);
        for t in &rep.tasks[..t_half] {
            inc.fold_task(t);
        }
        for a in &rep.assignments[..a_half] {
            inc.fold_assignment(a);
        }
        for t in &rep.tasks[t_half..] {
            inc.fold_task(t);
        }
        for a in &rep.assignments[a_half..] {
            inc.fold_assignment(a);
        }
        for b in &rep.batches {
            inc.fold_batch(b);
        }
        assert_eq!(inc.values(), whole.values());
    }

    #[test]
    fn digest_is_seed_sensitive() {
        assert_ne!(StreamDigest::of(&report(1)).values(), StreamDigest::of(&report(2)).values());
    }

    #[test]
    fn digest_sees_single_row_drift() {
        let base = report(7);
        let mut twisted = base.clone();
        twisted.tasks[0].winner_age += 1;
        assert_ne!(StreamDigest::of(&base).values(), StreamDigest::of(&twisted).values());
    }

    #[test]
    fn checkpoint_serializes_without_floats() {
        let c = StreamCheckpoint {
            seq: 0,
            at_ms: 1,
            arrived: 2,
            admitted: 3,
            completed: 4,
            backlog: 0,
            batches: 1,
            labels: 8,
            labels_correct: 7,
            assignments: 5,
            terminated: 1,
            cost_micro: 123,
            recruited: 4,
            evicted: 0,
            departed: 0,
            digest_tasks: 9,
            digest_assignments: 10,
            digest_batches: 11,
            obs_recorded: 0,
            obs_fingerprint: 0,
        };
        let json = serde_json::to_string(&c).unwrap();
        assert!(!json.contains('.'), "no floats in checkpoint snapshots: {json}");
        assert!(json.contains("\"digest_tasks\":9"));
        assert!(json.contains("\"obs_fingerprint\":0"));
    }
}
