//! Streamed sweep cells: run every job of a grid in streaming service
//! mode, fanned out across threads.
//!
//! A sweep [`Job`] is already a pure `(RunConfig, specs, seed)` cell;
//! streaming it just swaps the executor: each cell's spec list becomes
//! the (finite) prefix of a task stream and runs through
//! [`run_stream`] instead of `run_batched`. Results come back in grid
//! enumeration order regardless of thread count
//! ([`pool::map`] reorders), so streamed
//! sweep output is byte-identical at any `CLAMSHELL_THREADS` — the same
//! invariance contract the batched sweep upholds.

use crate::engine::{run_stream, StreamConfig, StreamOutcome};
use clamshell_sweep::job::Job;
use clamshell_sweep::pool;

/// Run `jobs` in streaming mode on `threads` workers, returning one
/// [`StreamOutcome`] per job in job-index order.
pub fn run_jobs_streamed(
    jobs: Vec<Job>,
    threads: usize,
    stream: &StreamConfig,
) -> Vec<StreamOutcome> {
    pool::map(jobs, threads, |_, _, job: Job| {
        run_stream(
            job.cfg.clone(),
            (*job.population).clone(),
            job.specs.iter().cloned(),
            job.specs.len(),
            job.batch_size,
            stream,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clamshell_core::task::TaskSpec;
    use clamshell_core::RunConfig;
    use clamshell_trace::Population;
    use std::sync::Arc;

    fn jobs(n: usize) -> Vec<Job> {
        let specs: Arc<Vec<TaskSpec>> =
            Arc::new((0..10).map(|i| TaskSpec::new(vec![(i % 2) as u32; 2])).collect());
        let population = Arc::new(Population::mturk_live());
        (0..n)
            .map(|i| {
                let seed = 20 + i as u64;
                Job {
                    index: i,
                    scenario: 0,
                    label: "stream".into(),
                    seed,
                    cfg: RunConfig { pool_size: 4, ng: 2, seed, ..Default::default() },
                    specs: specs.clone(),
                    batch_size: 4,
                    population: population.clone(),
                }
            })
            .collect()
    }

    #[test]
    fn streamed_cells_are_thread_invariant() {
        let stream = StreamConfig { rate_per_sec: 2.0, checkpoint_every: 4, retire: true };
        let one = run_jobs_streamed(jobs(5), 1, &stream);
        let four = run_jobs_streamed(jobs(5), 4, &stream);
        assert_eq!(one.len(), 5);
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.checkpoints, b.checkpoints);
            assert_eq!(a.digest.values(), b.digest.values());
        }
    }
}
