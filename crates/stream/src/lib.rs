//! # clamshell-stream
//!
//! Streaming service mode for the CLAMShell reproduction: tasks arrive
//! as an **unbounded open-loop stream** at a target rate, the runner
//! ingests them incrementally, progress is reported as periodic
//! [`StreamCheckpoint`]s, and completed-task state can be retired at
//! batch boundaries so memory stays bounded no matter how long the
//! stream runs.
//!
//! The paper (Haas et al., VLDB 2015) evaluates CLAMShell on finite
//! batches; a deployed labeling service instead faces a continuous task
//! feed. This crate grafts that service shape onto the existing
//! deterministic engine **without forking the scheduler**, which yields
//! the crate's load-bearing contract:
//!
//! > A streamed run over the first `N` tasks of a source is
//! > **bit-for-bit equivalent** to the batched run over the same `N`
//! > specs: identical final [`RunReport`](clamshell_core::metrics::RunReport),
//! > identical trace fingerprint, identical cost ledger.
//!
//! Three design decisions make the contract hold (see ARCHITECTURE.md,
//! "Streaming service mode"):
//!
//! 1. **Arrivals are observability-only.** The arrival process
//!    ([`clamshell_sim::arrivals`]) is a dedicated labeled RNG stream of
//!    the run seed; arrival instants never gate admission and never
//!    advance the simulated clock, so scheduling is identical at any
//!    rate.
//! 2. **Chunk formation is shared.** The engine draws batch sizes from
//!    the same [`BatchSizer`](clamshell_core::BatchSizer) that
//!    [`run_batched`](clamshell_core::runner::run_batched) uses, so
//!    batch boundaries (and the burst-fault draw sequence) coincide.
//! 3. **Retirement is a pure memory operation.** Task/assignment ids
//!    are stream positions; retiring the completed prefix only shifts
//!    the id base of the live tables
//!    ([`Runner::retire_completed`](clamshell_core::Runner::retire_completed)),
//!    never a scheduling decision. The incremental [`StreamDigest`]
//!    folds rows as they retire and equals the digest of the batched
//!    report.
//!
//! Modules:
//!
//! * [`source`] — deterministic unbounded task-spec generators.
//! * [`checkpoint`] — [`StreamCheckpoint`] snapshots and the running
//!   [`StreamDigest`].
//! * [`engine`] — [`run_stream`]: the open-loop service loop.
//! * [`cells`] — streamed sweep cells: run every job of a
//!   [`Grid`](clamshell_sweep::Grid) in streaming mode across threads.
//! * [`dashboard`] — deterministic plain-text rendering of a checkpoint
//!   sequence (used by `repro serve` and the `streaming_dashboard`
//!   example).

#![warn(missing_docs)]

pub mod cells;
pub mod checkpoint;
pub mod dashboard;
pub mod engine;
pub mod source;

pub use checkpoint::{StreamCheckpoint, StreamDigest};
pub use engine::{run_stream, StreamConfig, StreamOutcome};
