//! The open-loop streaming service loop.
//!
//! [`run_stream`] drives the same deterministic [`Runner`] that
//! [`run_batched`](clamshell_core::runner::run_batched) uses, ingesting
//! tasks incrementally from an unbounded source. Chunk sizes come from
//! the shared [`BatchSizer`], so batch boundaries — and therefore every
//! scheduling decision — coincide with the batched run over the same
//! spec prefix. Arrival counts come from the open-loop
//! [`ArrivalCounter`] — the constant-memory view of the
//! [`ArrivalSchedule`](clamshell_sim::arrivals::ArrivalSchedule)
//! timeline — and feed only checkpoint reporting; they never gate
//! admission, which is precisely why the equivalence contract holds at
//! any target rate.
//!
//! This file is hot-path library code under the determinism linter's
//! D006 rule: no `unwrap`/`expect` — invariants are `assert!`ed with
//! messages instead.

use crate::checkpoint::{StreamCheckpoint, StreamDigest};
use clamshell_core::metrics::{AssignmentRecord, TaskRecord};
use clamshell_core::runner::{BatchSizer, Runner};
use clamshell_core::task::TaskSpec;
use clamshell_core::RunConfig;
use clamshell_core::RunReport;
use clamshell_sim::arrivals::ArrivalCounter;
use clamshell_trace::Population;

/// Service-mode knobs, orthogonal to the scheduling [`RunConfig`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Mean task arrivals per simulated second (open-loop; reporting
    /// only — see [`clamshell_sim::arrivals`]).
    pub rate_per_sec: f64,
    /// Emit a [`StreamCheckpoint`] at the first batch boundary at which
    /// at least this many tasks completed since the previous snapshot.
    pub checkpoint_every: usize,
    /// Retire completed-task state at every batch boundary, keeping
    /// memory bounded by the largest single batch instead of the whole
    /// stream. The final report's row vectors come back empty (the
    /// rows were streamed out through the digest); scalars, checkpoints,
    /// and digests are byte-identical to retained mode.
    pub retire: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig { rate_per_sec: 1.0, checkpoint_every: 8, retire: false }
    }
}

/// Everything a streamed run produces.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// The final report. With `retire: false` this is byte-identical to
    /// [`run_batched`](clamshell_core::runner::run_batched) over the
    /// same spec prefix; with `retire: true` the row vectors are empty
    /// (retired through the digest) but every scalar still matches.
    pub report: RunReport,
    /// The periodic snapshots, in emission order. The final batch
    /// boundary always emits one, so the sequence is never empty.
    pub checkpoints: Vec<StreamCheckpoint>,
    /// The running digest after every row was folded; equals
    /// [`StreamDigest::of`] of the batched reference report.
    pub digest: StreamDigest,
}

/// Cumulative counters fed by folded report rows (the checkpoint
/// fields that would otherwise require retained row vectors).
#[derive(Debug, Default, Clone, Copy)]
struct Totals {
    completed: u64,
    labels: u64,
    labels_correct: u64,
    assignments: u64,
    terminated: u64,
    batches: u64,
}

impl Totals {
    fn task(&mut self, t: &TaskRecord) {
        self.completed += 1;
        self.labels += t.ng as u64;
        self.labels_correct += t.correct as u64;
    }

    fn assignment(&mut self, a: &AssignmentRecord) {
        self.assignments += 1;
        self.terminated += a.terminated as u64;
    }

    fn batch(&mut self) {
        self.batches += 1;
    }
}

/// Label the first `n_tasks` tasks of `source` in streaming service
/// mode.
///
/// Equivalence contract (enforced by the conformance suite in
/// `clamshell-scenarios`): for any `(cfg, population, batch_size)` and
/// any `StreamConfig`, the outcome relates to
/// `run_batched(cfg, population, first_n_specs, batch_size)` as:
///
/// * `retire: false` — `outcome.report` is byte-identical to the
///   batched report (same JSON serialization, same obs fingerprint);
/// * any mode — `outcome.digest` equals `StreamDigest::of(&batched)`,
///   and the checkpoint sequence is identical across retirement modes
///   and thread counts.
///
/// Panics if `source` yields fewer than `n_tasks` specs, or on a
/// non-positive `n_tasks` / `checkpoint_every` / `batch_size` /
/// arrival rate.
pub fn run_stream<I>(
    cfg: RunConfig,
    population: Population,
    source: I,
    n_tasks: usize,
    batch_size: usize,
    stream: &StreamConfig,
) -> StreamOutcome
where
    I: IntoIterator<Item = TaskSpec>,
{
    assert!(n_tasks > 0, "stream must label at least one task");
    assert!(stream.checkpoint_every > 0, "checkpoint interval must be positive");
    let mut arrivals = ArrivalCounter::new(cfg.seed, stream.rate_per_sec);
    let mut sizer = BatchSizer::new(&cfg, batch_size);
    let mut runner = Runner::new(cfg, population);
    if !stream.retire {
        // Retained mode mirrors `run_batched` exactly, including its
        // whole-run table reservation. Retire mode deliberately skips
        // it: bounded memory is the point.
        runner.reserve_tasks(n_tasks);
    }
    runner.warm_up();

    let mut source = source.into_iter();
    let mut digest = StreamDigest::new();
    let mut checkpoints: Vec<StreamCheckpoint> = Vec::new();
    let mut totals = Totals::default();
    // Retained-mode fold cursors over the runner's accumulated rows.
    let (mut tcur, mut acur, mut bcur) = (0usize, 0usize, 0usize);
    let mut admitted = 0usize;
    let mut since_ckpt = 0usize;

    while admitted < n_tasks {
        // Identical chunking to `run_batched`: one sizer draw per
        // chunk, the final chunk truncated by stream exhaustion.
        let want = sizer.next_size().min(n_tasks - admitted);
        let chunk: Vec<TaskSpec> = source.by_ref().take(want).collect();
        assert_eq!(chunk.len(), want, "task source drained before {n_tasks} tasks");
        admitted += want;
        runner.run_batch(chunk);

        // Fold the report rows this batch appended — either by draining
        // them out of the runner (retire mode) or by advancing cursors
        // over its retained vectors. Both orders are per-table append
        // order, so the digests agree.
        if stream.retire {
            let rows = runner.retire_completed();
            since_ckpt += rows.tasks.len();
            for t in &rows.tasks {
                digest.fold_task(t);
                totals.task(t);
            }
            for a in &rows.assignments {
                digest.fold_assignment(a);
                totals.assignment(a);
            }
            for b in &rows.batches {
                digest.fold_batch(b);
                totals.batch();
            }
        } else {
            let tasks = runner.task_records();
            since_ckpt += tasks.len() - tcur;
            for t in &tasks[tcur..] {
                digest.fold_task(t);
                totals.task(t);
            }
            tcur = tasks.len();
            let assigns = runner.assignment_records();
            for a in &assigns[acur..] {
                digest.fold_assignment(a);
                totals.assignment(a);
            }
            acur = assigns.len();
            let batches = runner.batch_stats();
            for b in &batches[bcur..] {
                digest.fold_batch(b);
                totals.batch();
            }
            bcur = batches.len();
        }

        // Snapshot at this boundary if enough tasks completed — and
        // always at the final boundary, so the last checkpoint pins the
        // complete run.
        if since_ckpt >= stream.checkpoint_every || admitted == n_tasks {
            since_ckpt = 0;
            let at = runner.now();
            let arrived = arrivals.arrived_by(at);
            let life = runner.lifecycle_counts();
            let (digest_tasks, digest_assignments, digest_batches) = digest.values();
            let (obs_recorded, obs_fingerprint) = runner.obs_probe().unwrap_or((0, 0));
            checkpoints.push(StreamCheckpoint {
                seq: checkpoints.len() as u64,
                at_ms: at.as_millis(),
                arrived,
                admitted: admitted as u64,
                completed: totals.completed,
                backlog: arrived.saturating_sub(totals.completed),
                batches: totals.batches,
                labels: totals.labels,
                labels_correct: totals.labels_correct,
                assignments: totals.assignments,
                terminated: totals.terminated,
                cost_micro: runner.cost_so_far().total_micro(),
                recruited: life.recruited as u64,
                evicted: life.evicted,
                departed: life.departed,
                digest_tasks,
                digest_assignments,
                digest_batches,
                obs_recorded,
                obs_fingerprint,
            });
        }
    }

    StreamOutcome { report: runner.finish(), checkpoints, digest }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source;
    use clamshell_core::runner::run_batched;

    fn cfg(seed: u64) -> RunConfig {
        RunConfig { pool_size: 5, ng: 2, seed, ..Default::default() }.with_straggler()
    }

    fn stream_cfg(retire: bool) -> StreamConfig {
        StreamConfig { rate_per_sec: 1.5, checkpoint_every: 4, retire }
    }

    #[test]
    fn retained_report_is_byte_identical_to_batched() {
        let n = 18;
        let batched =
            run_batched(cfg(3), Population::mturk_live(), source::alternating_specs(2, n), 5);
        let streamed = run_stream(
            cfg(3),
            Population::mturk_live(),
            source::alternating(2),
            n,
            5,
            &stream_cfg(false),
        );
        assert_eq!(
            serde_json::to_string(&streamed.report).unwrap(),
            serde_json::to_string(&batched).unwrap()
        );
        assert_eq!(streamed.digest.values(), StreamDigest::of(&batched).values());
    }

    #[test]
    fn retire_mode_matches_batched_digest_and_scalars() {
        let n = 18;
        let batched =
            run_batched(cfg(4), Population::mturk_live(), source::alternating_specs(2, n), 5);
        let streamed = run_stream(
            cfg(4),
            Population::mturk_live(),
            source::alternating(2),
            n,
            5,
            &stream_cfg(true),
        );
        assert_eq!(streamed.digest.values(), StreamDigest::of(&batched).values());
        // Rows were retired through the digest; scalars must survive.
        assert!(streamed.report.tasks.is_empty());
        assert_eq!(streamed.report.cost.total_micro(), batched.cost.total_micro());
        assert_eq!(streamed.report.workers_recruited, batched.workers_recruited);
        assert_eq!(streamed.report.workers_evicted, batched.workers_evicted);
        assert_eq!(streamed.report.started, batched.started);
        assert_eq!(streamed.report.finished, batched.finished);
    }

    #[test]
    fn checkpoints_are_identical_across_retirement_modes() {
        let run = |retire| {
            run_stream(
                cfg(5),
                Population::mturk_live(),
                source::alternating(2),
                24,
                5,
                &stream_cfg(retire),
            )
        };
        let retained = run(false);
        let retiring = run(true);
        assert!(!retained.checkpoints.is_empty());
        assert_eq!(retained.checkpoints, retiring.checkpoints);
    }

    #[test]
    fn rate_never_perturbs_scheduling() {
        // Open-loop contract: arrival rate may only change the
        // `arrived`/`backlog` reporting fields, never a scheduling
        // outcome.
        let run = |rate| {
            run_stream(
                cfg(6),
                Population::mturk_live(),
                source::alternating(2),
                12,
                4,
                &StreamConfig { rate_per_sec: rate, checkpoint_every: 4, retire: false },
            )
        };
        let slow = run(0.05);
        let fast = run(50.0);
        assert_eq!(
            serde_json::to_string(&slow.report).unwrap(),
            serde_json::to_string(&fast.report).unwrap()
        );
        for (s, f) in slow.checkpoints.iter().zip(&fast.checkpoints) {
            let mut f_masked = f.clone();
            f_masked.arrived = s.arrived;
            f_masked.backlog = s.backlog;
            assert_eq!(*s, f_masked, "only arrival fields may differ across rates");
        }
        // And the faster feed really did arrive faster.
        let (s_last, f_last) = (slow.checkpoints.last().unwrap(), fast.checkpoints.last().unwrap());
        assert!(f_last.arrived > s_last.arrived);
    }

    #[test]
    fn obs_fingerprint_matches_batched_run() {
        use clamshell_obs::ObsConfig;
        let obs_cfg = |seed| RunConfig { obs: ObsConfig::with_ring(1 << 14), ..cfg(seed) };
        let n = 12;
        let batched =
            run_batched(obs_cfg(7), Population::mturk_live(), source::alternating_specs(2, n), 4);
        let streamed = run_stream(
            obs_cfg(7),
            Population::mturk_live(),
            source::alternating(2),
            n,
            4,
            &stream_cfg(false),
        );
        let b_obs = batched.obs.as_ref().unwrap();
        let s_obs = streamed.report.obs.as_ref().unwrap();
        assert_eq!(s_obs.fingerprint, b_obs.fingerprint);
        assert_eq!(s_obs.recorded, b_obs.recorded);
        // The final checkpoint's probe pinned the same trace.
        let last = streamed.checkpoints.last().unwrap();
        assert!(last.obs_recorded > 0);
    }

    #[test]
    fn final_boundary_always_checkpoints() {
        let streamed = run_stream(
            cfg(8),
            Population::mturk_live(),
            source::alternating(2),
            3,
            4,
            &StreamConfig { rate_per_sec: 1.0, checkpoint_every: 1000, retire: false },
        );
        assert_eq!(streamed.checkpoints.len(), 1);
        let last = &streamed.checkpoints[0];
        assert_eq!(last.completed, 3);
        assert_eq!(last.admitted, 3);
    }

    #[test]
    #[should_panic]
    fn short_source_rejected() {
        let specs = source::alternating_specs(2, 3);
        let _ =
            run_stream(cfg(9), Population::mturk_live(), specs, 10, 4, &StreamConfig::default());
    }
}
