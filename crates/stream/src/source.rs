//! Deterministic unbounded task-spec sources.
//!
//! A streaming run consumes specs from an iterator instead of a prebuilt
//! `Vec`; the equivalence contract compares the streamed run over the
//! first `n` items against the batched run over the same `n` specs, so
//! sources must be pure functions of their parameters.

use clamshell_core::task::TaskSpec;

/// The canonical service workload: an endless stream of `ng`-record
/// tasks whose ground-truth labels alternate `0, 1, 0, 1, …` by task
/// index — the same shape the conformance suite's finite workload uses,
/// extended to infinity.
///
/// ```
/// use clamshell_stream::source::alternating;
/// let first: Vec<_> = alternating(2).take(3).collect();
/// assert_eq!(first[0].truths, vec![0, 0]);
/// assert_eq!(first[1].truths, vec![1, 1]);
/// assert_eq!(first[2].truths, vec![0, 0]);
/// ```
pub fn alternating(ng: u32) -> impl Iterator<Item = TaskSpec> {
    assert!(ng > 0, "tasks must group at least one record");
    (0u64..).map(move |i| TaskSpec::new(vec![(i % 2) as u32; ng as usize]))
}

/// The first `n` specs of [`alternating`], materialized — the batched
/// counterpart of a streamed run, for equivalence checks.
pub fn alternating_specs(ng: u32, n: usize) -> Vec<TaskSpec> {
    alternating(ng).take(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matches_materialized_specs() {
        let streamed: Vec<TaskSpec> = alternating(3).take(20).collect();
        assert_eq!(streamed, alternating_specs(3, 20));
        assert!(streamed.iter().all(|s| s.ng() == 3));
    }

    #[test]
    fn truths_alternate_by_task_index() {
        for (i, spec) in alternating(1).take(10).enumerate() {
            assert_eq!(spec.truths, vec![(i % 2) as u32]);
        }
    }

    #[test]
    #[should_panic]
    fn zero_ng_rejected() {
        let _ = alternating(0);
    }
}
