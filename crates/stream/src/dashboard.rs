//! Deterministic plain-text rendering of a checkpoint sequence.
//!
//! Shared by `repro serve` and the `streaming_dashboard` example so the
//! CLI walkthrough in the README, the example's output, and the CI
//! byte-compare all draw the same table. Everything rendered is an
//! integer (millisecond times, micro-dollar cost, hex fingerprints), so
//! the output is byte-stable across platforms and thread counts.

use crate::checkpoint::StreamCheckpoint;
use clamshell_obs::fingerprint_hex;
use std::fmt::Write as _;

/// Render `checkpoints` as a fixed-width table, one row per snapshot.
pub fn render(checkpoints: &[StreamCheckpoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4} {:>9} {:>8} {:>9} {:>10} {:>8} {:>8} {:>7} {:>11}  task_digest",
        "seq",
        "t_ms",
        "arrived",
        "admitted",
        "completed",
        "backlog",
        "batches",
        "workers",
        "cost_micro"
    );
    for c in checkpoints {
        let _ = writeln!(
            out,
            "{:>4} {:>9} {:>8} {:>9} {:>10} {:>8} {:>8} {:>7} {:>11}  {}",
            c.seq,
            c.at_ms,
            c.arrived,
            c.admitted,
            c.completed,
            c.backlog,
            c.batches,
            c.recruited,
            c.cost_micro,
            fingerprint_hex(c.digest_tasks)
        );
    }
    out
}

/// One-line summary of a finished stream (the table's closing line in
/// `repro serve` output).
pub fn summary(checkpoints: &[StreamCheckpoint]) -> String {
    match checkpoints.last() {
        None => "stream: no checkpoints".to_string(),
        Some(c) => format!(
            "stream: {} tasks in {} batches over {} ms, {} labels ({} correct), \
             cost {} micro-usd, final backlog {}",
            c.completed, c.batches, c.at_ms, c.labels, c.labels_correct, c.cost_micro, c.backlog
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ckpt(seq: u64) -> StreamCheckpoint {
        StreamCheckpoint {
            seq,
            at_ms: 1000 * (seq + 1),
            arrived: 10 * (seq + 1),
            admitted: 8 * (seq + 1),
            completed: 8 * (seq + 1),
            backlog: 2 * (seq + 1),
            batches: seq + 1,
            labels: 16 * (seq + 1),
            labels_correct: 15 * (seq + 1),
            assignments: 9 * (seq + 1),
            terminated: seq,
            cost_micro: 100_000 * (seq + 1),
            recruited: 5,
            evicted: 0,
            departed: 0,
            digest_tasks: 0xDEAD_BEEF,
            digest_assignments: 1,
            digest_batches: 2,
            obs_recorded: 0,
            obs_fingerprint: 0,
        }
    }

    #[test]
    fn render_is_one_line_per_checkpoint_plus_header() {
        let text = render(&[ckpt(0), ckpt(1)]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("seq") && lines[0].contains("task_digest"));
        assert!(lines[1].contains("fnv1a:00000000deadbeef"));
        // Fixed-width: data rows align with the header.
        assert_eq!(lines[1].find("fnv1a"), lines[2].find("fnv1a"));
    }

    #[test]
    fn summary_reports_the_final_checkpoint() {
        let s = summary(&[ckpt(0), ckpt(3)]);
        assert!(s.contains("32 tasks in 4 batches"), "{s}");
        assert_eq!(summary(&[]), "stream: no checkpoints");
    }
}
