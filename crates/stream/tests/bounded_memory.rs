//! Bounded-memory conformance: a retire-mode stream's peak live heap
//! must not grow with stream length.
//!
//! The whole point of `StreamConfig { retire: true }` is that a service
//! can label an unbounded stream in constant memory: completed-task
//! state retires at every batch boundary, so live heap is bounded by the
//! largest single batch plus fixed engine state — not by the number of
//! tasks ever labeled. This test pins that down with a counting global
//! allocator: a 100×-longer stream (1k → 100k tasks) may increase peak
//! live bytes only by a small constant factor (fixed-size tables, the
//! checkpoint vector, allocator noise), not by anything close to 100×.
//!
//! The test binary owns the process-global allocator, so it lives alone
//! in this integration-test file; the workload is single-threaded, so
//! relaxed counters are exact.

use clamshell_core::RunConfig;
use clamshell_stream::source;
use clamshell_stream::{run_stream, StreamConfig};
use clamshell_trace::Population;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct LiveAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn on_alloc(size: u64) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

// SAFETY: a thin pass-through to the System allocator — every method
// forwards its arguments unchanged, so System's layout/provenance
// contract is upheld verbatim; the counters are side-effect-only.
unsafe impl GlobalAlloc for LiveAlloc {
    // SAFETY: delegates to System.alloc with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: caller upholds GlobalAlloc's contract for `layout`.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    // SAFETY: delegates to System.dealloc with the caller's ptr/layout.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller upholds GlobalAlloc's contract for `ptr`/`layout`.
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    // SAFETY: delegates to System.realloc with the caller's arguments.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: caller upholds GlobalAlloc's contract for the arguments.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
            on_alloc(new_size as u64);
        }
        p
    }
}

#[global_allocator]
static GLOBAL: LiveAlloc = LiveAlloc;

/// Run `f` and return the peak live-byte *growth* it caused over the
/// live bytes at entry.
fn peak_growth<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let out = f();
    (out, PEAK.load(Ordering::Relaxed).saturating_sub(base))
}

/// A lean service cell: single-record tasks, quorum 1, no straggler
/// replication — the per-task work floor, so stream-length scaling
/// dominates the measurement instead of per-task simulation cost.
fn lean_stream(n_tasks: usize) -> u64 {
    let cfg =
        RunConfig { pool_size: 4, ng: 1, n_classes: 2, quorum: 1, seed: 1, ..Default::default() };
    let stream = StreamConfig { rate_per_sec: 5.0, checkpoint_every: 10_000, retire: true };
    let (outcome, peak) = peak_growth(|| {
        run_stream(cfg, Population::mturk_live(), source::alternating(1), n_tasks, 50, &stream)
    });
    assert_eq!(outcome.checkpoints.last().map(|c| c.completed), Some(n_tasks as u64));
    assert!(outcome.report.tasks.is_empty(), "retire mode keeps no rows");
    peak
}

#[test]
fn retire_mode_peak_memory_is_stream_length_invariant() {
    // Warm-up: fault the lazy population tables and allocator arenas so
    // neither run pays first-touch costs into its peak.
    let _ = lean_stream(200);

    let peak_1k = lean_stream(1_000);
    let peak_100k = lean_stream(100_000);
    eprintln!("peak live bytes: 1k tasks = {peak_1k}, 100k tasks = {peak_100k}");

    // 100× the stream, at most a small constant factor of the peak: the
    // live set is one batch of state plus fixed tables. (A retained run
    // would grow its report vectors ~100×.)
    assert!(peak_1k > 0, "the counting allocator must observe the run");
    assert!(
        peak_100k <= peak_1k * 4,
        "retire-mode peak grew with stream length: 1k={peak_1k}B, 100k={peak_100k}B"
    );
}
