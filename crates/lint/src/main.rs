//! CLI for the workspace determinism linter.
//!
//! Exit codes: `0` clean (warnings allowed unless `--deny-warnings`),
//! `1` violations found, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
clamshell-lint — workspace determinism linter (rule catalog in ARCHITECTURE.md)

USAGE:
    clamshell-lint --workspace [OPTIONS]
    clamshell-lint [OPTIONS] <FILE.rs>...

OPTIONS:
    --workspace        lint every workspace crate's sources
    --format <fmt>     output format: text (default) or json
    --deny-warnings    treat warnings as fatal (exit 1)
    --root <dir>       workspace root (default: nearest ancestor whose
                       Cargo.toml declares [workspace])
    -h, --help         print this help

EXIT CODES:
    0  no violations (warnings tolerated unless --deny-warnings)
    1  violations found
    2  usage or I/O error

Suppress a finding only with a reasoned inline pragma:
    // clamshell-lint: allow(D004) -- why this specific use is sound
";

struct Args {
    workspace: bool,
    json: bool,
    deny_warnings: bool,
    root: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

enum Parsed {
    Run(Args),
    Help,
    Error(String),
}

fn parse_args(argv: &[String]) -> Parsed {
    let mut args =
        Args { workspace: false, json: false, deny_warnings: false, root: None, paths: Vec::new() };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--deny-warnings" => args.deny_warnings = true,
            "--format" => match it.next().map(String::as_str) {
                Some("text") => args.json = false,
                Some("json") => args.json = true,
                Some(other) => return Parsed::Error(format!("unknown format `{other}`")),
                None => return Parsed::Error("--format requires a value (text|json)".into()),
            },
            "--root" => match it.next() {
                Some(dir) => args.root = Some(PathBuf::from(dir)),
                None => return Parsed::Error("--root requires a directory".into()),
            },
            "-h" | "--help" => return Parsed::Help,
            flag if flag.starts_with('-') => {
                return Parsed::Error(format!("unknown flag `{flag}`"))
            }
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if args.workspace && !args.paths.is_empty() {
        return Parsed::Error("--workspace and explicit file paths are mutually exclusive".into());
    }
    if !args.workspace && args.paths.is_empty() {
        return Parsed::Error("nothing to lint: pass --workspace or file paths".into());
    }
    Parsed::Run(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Parsed::Help => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Parsed::Error(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
        Parsed::Run(args) => args,
    };

    let root = match args.root.clone().or_else(|| {
        std::env::current_dir().ok().and_then(|d| clamshell_lint::discover::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("error: could not locate a workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };

    let report = if args.workspace {
        clamshell_lint::lint_root(&root)
    } else {
        clamshell_lint::lint_paths(&root, &args.paths)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if args.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }

    let failing = report.errors() > 0 || (args.deny_warnings && report.warnings() > 0);
    if failing {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
