//! The determinism rule catalog (D001–D006) and the cross-file engine.
//!
//! Scope: the rules protect the determinism-critical crates (everything
//! a simulation draw or report byte can flow through). `crates/bench` is
//! exempt from the wall-clock rule (it *measures* wall time) and from
//! the deterministic set; the linter itself is scanned but only the
//! crate-agnostic rules apply to it. See ARCHITECTURE.md ("Determinism
//! contract enforcement") for the full catalog and rationale.

use crate::diag::{Diagnostic, LintReport, Severity, Suppression};
use crate::discover::{FileKind, SourceSpec};
use crate::scan::Scanned;
use std::collections::{BTreeMap, BTreeSet};

/// Rule ids that an `allow(...)` pragma may name.
pub const SUPPRESSIBLE: &[&str] = &["D001", "D002", "D003", "D004", "D005", "D006", "D007"];

/// Crates whose library code must uphold the full determinism contract.
const DETERMINISTIC_CRATES: &[&str] = &[
    "core",
    "sim",
    "crowd",
    "sweep",
    "stream",
    "scenarios",
    "quality",
    "trace",
    "learn",
    "obs",
    "root",
];

/// The only places allowed to read the process environment (D003):
/// thread-count resolution and the golden-master bless flag.
const ENV_INGRESS: &[&str] = &["crates/sweep/src/threads.rs", "crates/scenarios/src/golden.rs"];

/// Hot-path files where `unwrap()`/`expect()` are forbidden (D006): the
/// discrete-event runner, the whole sweep engine, and the streaming
/// service engine.
fn is_hot_path(rel: &str) -> bool {
    rel == "crates/core/src/runner.rs"
        || rel == "crates/stream/src/engine.rs"
        || rel.starts_with("crates/sweep/src/")
}

/// A `fault_stream` / `fork` label argument found at a call site.
enum LabelArg {
    /// Integer literal, already parsed.
    Value(u64),
    /// A path whose final segment should name an integer-literal const.
    Named(String),
}

struct LabelSite {
    file: String,
    line: usize,
    label: LabelArg,
    /// `true` for `fault_stream` (joins the global-uniqueness pool),
    /// `false` for `Rng::fork` (namespaced by its parent stream).
    global: bool,
    /// Reason from a D004 pragma covering this site, if any.
    allow: Option<(usize, String)>,
}

/// A `MetricName(` / `EventName(` constructor site whose argument was a
/// plain string literal; metric and event names share one uniqueness
/// pool (a metric may not shadow an event discriminator or vice versa).
struct NameSite {
    file: String,
    line: usize,
    value: String,
    /// Reason from a D007 pragma covering this site, if any.
    allow: Option<(usize, String)>,
}

pub struct Engine {
    diags: Vec<Diagnostic>,
    suppressed: Vec<Suppression>,
    /// (file, pragma line) pairs that suppressed at least one finding.
    used_pragmas: BTreeSet<(String, usize)>,
    /// Every well-formed pragma seen: (file, line, rule).
    all_pragmas: Vec<(String, usize, String)>,
    /// Integer-literal consts: final segment name -> observed values.
    consts: BTreeMap<String, BTreeSet<u64>>,
    label_sites: Vec<LabelSite>,
    name_sites: Vec<NameSite>,
    files_scanned: usize,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    pub fn new() -> Self {
        Engine {
            diags: Vec::new(),
            suppressed: Vec::new(),
            used_pragmas: BTreeSet::new(),
            all_pragmas: Vec::new(),
            consts: BTreeMap::new(),
            label_sites: Vec::new(),
            name_sites: Vec::new(),
            files_scanned: 0,
        }
    }

    pub fn check_file(&mut self, spec: &SourceSpec, scanned: &Scanned) {
        self.files_scanned += 1;
        let rel = &spec.rel;
        for p in &scanned.pragmas {
            self.all_pragmas.push((rel.clone(), p.line, p.rule.clone()));
        }
        for issue in &scanned.issues {
            self.diags.push(Diagnostic {
                file: rel.clone(),
                line: issue.line,
                rule: issue.rule,
                severity: Severity::Warning,
                message: issue.message.clone(),
                hint: "pragma syntax: // clamshell-lint: allow(<rule>) -- <reason>",
            });
        }

        let det = DETERMINISTIC_CRATES.contains(&spec.crate_key.as_str());
        let sanctioned_env = ENV_INGRESS.contains(&rel.as_str());
        let hot = is_hot_path(rel);

        for (idx, line) in scanned.lines.iter().enumerate() {
            let no = idx + 1;
            // "Library region": non-test code compiled into the crate's
            // product (lib or example), not a test/bench source.
            let lib = line.region == crate::scan::Region::Lib
                && matches!(spec.kind, FileKind::Lib | FileKind::Examples);
            let code = line.code.as_str();

            if det && lib && matches!(spec.kind, FileKind::Lib) {
                if has_token(code, "HashMap") || has_token(code, "HashSet") {
                    self.emit(
                        spec,
                        scanned,
                        no,
                        "D001",
                        "HashMap/HashSet in deterministic library code".into(),
                        "hash iteration order varies between runs; use BTreeMap/BTreeSet or a \
                         sorted Vec",
                    );
                }
                if !sanctioned_env && reads_env(code) {
                    self.emit(
                        spec,
                        scanned,
                        no,
                        "D003",
                        "process-environment read outside the sanctioned ingress points".into(),
                        "only sweep::threads and scenarios::golden may consult the environment",
                    );
                }
                self.check_labels(spec, scanned, no);
                self.check_names(spec, scanned, no);
            }

            if spec.crate_key != "bench"
                && lib
                && (has_token(code, "Instant::now") || has_token(code, "SystemTime::now"))
            {
                self.emit(
                    spec,
                    scanned,
                    no,
                    "D002",
                    "wall-clock read outside crates/bench".into(),
                    "wall-clock time breaks replay determinism; timing belongs in crates/bench",
                );
            }

            if has_token(code, "unsafe") && !scanned.has_safety_comment(no) {
                self.emit(
                    spec,
                    scanned,
                    no,
                    "D005",
                    "unsafe block without a SAFETY comment".into(),
                    "document the invariant in a `// SAFETY:` comment directly above the block",
                );
            }

            if hot && lib {
                let unwraps = count_occurrences(code, ".unwrap()");
                let poison = count_occurrences(code, "lock().unwrap()");
                if unwraps > poison || code.contains(".expect(") {
                    self.emit(
                        spec,
                        scanned,
                        no,
                        "D006",
                        "unwrap()/expect() in hot-path library code".into(),
                        "return a structured error, or justify the invariant with an allow \
                         pragma (bare `lock().unwrap()` poison propagation is exempt)",
                    );
                }
            }

            collect_consts(code, &mut self.consts);
        }
    }

    /// D004 per-line half: find `fault_stream(` / `.fork(` call sites
    /// and classify their label argument. Cross-file resolution and the
    /// uniqueness check happen in [`Engine::finalize`].
    fn check_labels(&mut self, spec: &SourceSpec, scanned: &Scanned, no: usize) {
        let code = scanned.lines[no - 1].code.as_str();
        for (open, global, arg_index) in call_sites(code, "fault_stream(")
            .into_iter()
            .map(|c| (c, true, 1usize))
            .chain(call_sites(code, ".fork(").into_iter().map(|c| (c, false, 0usize)))
        {
            let Some(args) = call_args(scanned, no - 1, open) else {
                self.emit(
                    spec,
                    scanned,
                    no,
                    "D004",
                    "RNG stream call whose arguments could not be parsed".into(),
                    D004_HINT,
                );
                continue;
            };
            let Some(arg) = args.get(arg_index) else {
                self.emit(
                    spec,
                    scanned,
                    no,
                    "D004",
                    "RNG stream call is missing its label argument".into(),
                    D004_HINT,
                );
                continue;
            };
            let label = if let Some(v) = parse_int(arg) {
                LabelArg::Value(v)
            } else if is_const_path(arg) {
                LabelArg::Named(arg.rsplit("::").next().unwrap_or(arg).to_string())
            } else {
                let what = if global { "fault_stream" } else { "fork" };
                self.emit(
                    spec,
                    scanned,
                    no,
                    "D004",
                    format!("{what} label `{arg}` is not a literal or named constant"),
                    D004_HINT,
                );
                continue;
            };
            let allow = scanned.suppressor(no, "D004").map(|p| (p.line, p.reason.clone()));
            self.label_sites.push(LabelSite {
                file: spec.rel.clone(),
                line: no,
                label,
                global,
                allow,
            });
        }
    }

    /// D007 per-line half: `MetricName(` / `EventName(` constructor
    /// sites must take a plain string literal on the same line. The
    /// literal value is read from the *raw* source (blanking erased it);
    /// sites are pooled for the workspace-wide uniqueness check in
    /// [`Engine::finalize`].
    fn check_names(&mut self, spec: &SourceSpec, scanned: &Scanned, no: usize) {
        let line = &scanned.lines[no - 1];
        for callee in ["MetricName(", "EventName("] {
            let code_sites = call_sites(line.code.as_str(), callee);
            if code_sites.is_empty() {
                continue;
            }
            let raw_sites = call_sites(line.raw.as_str(), callee);
            let kind = &callee[..callee.len() - 1];
            if raw_sites.len() != code_sites.len() {
                // A comment or string on the same line also mentions the
                // constructor; refuse to guess which occurrence is which.
                self.emit(
                    spec,
                    scanned,
                    no,
                    "D007",
                    format!("{kind} call site is ambiguous on this line"),
                    D007_HINT,
                );
                continue;
            }
            for open in raw_sites {
                match leading_str_literal(&line.raw[open..]) {
                    Some(value) => {
                        let allow =
                            scanned.suppressor(no, "D007").map(|p| (p.line, p.reason.clone()));
                        self.name_sites.push(NameSite {
                            file: spec.rel.clone(),
                            line: no,
                            value,
                            allow,
                        });
                    }
                    None => self.emit(
                        spec,
                        scanned,
                        no,
                        "D007",
                        format!("{kind} argument is not a plain same-line string literal"),
                        D007_HINT,
                    ),
                }
            }
        }
    }

    /// Emit `rule` at `line` unless an allow pragma suppresses it.
    /// Severity is a property of the rule itself: D005/D006 warn,
    /// every other determinism rule is an error.
    fn emit(
        &mut self,
        spec: &SourceSpec,
        scanned: &Scanned,
        line: usize,
        rule: &'static str,
        message: String,
        hint: &'static str,
    ) {
        let severity =
            if rule == "D005" || rule == "D006" { Severity::Warning } else { Severity::Error };
        if let Some(p) = scanned.suppressor(line, rule) {
            self.used_pragmas.insert((spec.rel.clone(), p.line));
            self.suppressed.push(Suppression {
                file: spec.rel.clone(),
                line,
                rule,
                reason: p.reason.clone(),
            });
        } else {
            self.diags.push(Diagnostic {
                file: spec.rel.clone(),
                line,
                rule,
                severity,
                message,
                hint,
            });
        }
    }

    /// Like [`Engine::emit`] but for finalize-time findings (D004/D007
    /// cross-file checks), where the suppressing pragma was already
    /// resolved at scan time.
    fn emit_resolved(
        &mut self,
        file: &str,
        line: usize,
        allow: &Option<(usize, String)>,
        rule: &'static str,
        message: String,
        hint: &'static str,
    ) {
        if let Some((pline, reason)) = allow {
            self.used_pragmas.insert((file.to_string(), *pline));
            self.suppressed.push(Suppression {
                file: file.to_string(),
                line,
                rule,
                reason: reason.clone(),
            });
        } else {
            self.diags.push(Diagnostic {
                file: file.to_string(),
                line,
                rule,
                severity: Severity::Error,
                message,
                hint,
            });
        }
    }

    fn emit_site(&mut self, site: &LabelSite, message: String) {
        self.emit_resolved(&site.file, site.line, &site.allow, "D004", message, D004_HINT);
    }

    pub fn finalize(mut self) -> LintReport {
        // Resolve named labels against the workspace const table.
        let sites = std::mem::take(&mut self.label_sites);
        let mut resolved: Vec<(u64, usize)> = Vec::new(); // (value, site index)
        for (i, site) in sites.iter().enumerate() {
            let value = match &site.label {
                LabelArg::Value(v) => Some(*v),
                LabelArg::Named(name) => match self.consts.get(name) {
                    Some(vals) if vals.len() == 1 => vals.iter().next().copied(),
                    Some(_) => {
                        self.emit_site(
                            site,
                            format!("stream label const `{name}` has conflicting definitions"),
                        );
                        None
                    }
                    None => {
                        self.emit_site(
                            site,
                            format!(
                                "stream label `{name}` does not resolve to an integer-literal \
                                 const in the workspace"
                            ),
                        );
                        None
                    }
                },
            };
            if let (Some(v), true) = (value, site.global) {
                resolved.push((v, i));
            }
        }
        // Global uniqueness across fault_stream call sites.
        let mut by_value: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (v, i) in resolved {
            by_value.entry(v).or_default().push(i);
        }
        for (value, group) in by_value {
            if group.len() < 2 {
                continue;
            }
            let locations: Vec<String> =
                group.iter().map(|&i| format!("{}:{}", sites[i].file, sites[i].line)).collect();
            for (gi, &i) in group.iter().enumerate() {
                let others: Vec<&str> = locations
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != gi)
                    .map(|(_, l)| l.as_str())
                    .collect();
                self.emit_site(
                    &sites[i],
                    format!(
                        "fault stream label {value:#x} is also used at {} — shared labels \
                         silently correlate their draws",
                        others.join(", ")
                    ),
                );
            }
        }
        // D007 cross-file half: metric/event name literals must be
        // unique workspace-wide, so two subsystems can never silently
        // write to the same registry key or `"ev"` discriminator.
        let name_sites = std::mem::take(&mut self.name_sites);
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, site) in name_sites.iter().enumerate() {
            by_name.entry(site.value.as_str()).or_default().push(i);
        }
        for (value, group) in by_name {
            if group.len() < 2 {
                continue;
            }
            let locations: Vec<String> = group
                .iter()
                .map(|&i| format!("{}:{}", name_sites[i].file, name_sites[i].line))
                .collect();
            for (gi, &i) in group.iter().enumerate() {
                let others: Vec<&str> = locations
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != gi)
                    .map(|(_, l)| l.as_str())
                    .collect();
                let site = &name_sites[i];
                self.emit_resolved(
                    &site.file,
                    site.line,
                    &site.allow,
                    "D007",
                    format!(
                        "metric/event name \"{value}\" is also declared at {} — shared names \
                         silently merge unrelated instrumentation",
                        others.join(", ")
                    ),
                    D007_HINT,
                );
            }
        }
        // Pragmas that never fired keep the allowlist honest.
        for (file, line, rule) in &self.all_pragmas {
            if !self.used_pragmas.contains(&(file.clone(), *line)) {
                self.diags.push(Diagnostic {
                    file: file.clone(),
                    line: *line,
                    rule: "P003",
                    severity: Severity::Warning,
                    message: format!("allow({rule}) pragma never matched a violation"),
                    hint: "remove the stale pragma (or it will mask a future regression)",
                });
            }
        }
        self.diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.suppressed.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        LintReport {
            diagnostics: self.diags,
            suppressed: self.suppressed,
            files_scanned: self.files_scanned,
        }
    }
}

const D004_HINT: &str = "stream labels must be integer literals or named literal consts so \
                         uniqueness is statically checkable";

const D007_HINT: &str = "metric/trace-event names must be `&'static str` literals declared once \
                         (see crates/obs/src/name.rs) so uniqueness is statically checkable";

// ---------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Does `code` contain `tok` with non-identifier characters (or the
/// line boundary) on both sides? `tok` itself may contain `::`.
fn has_token(code: &str, tok: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(tok) {
        let i = start + pos;
        let left_ok = i == 0 || !is_ident_char(bytes[i - 1]);
        let j = i + tok.len();
        let right_ok = j >= bytes.len() || !is_ident_char(bytes[j]);
        if left_ok && right_ok {
            return true;
        }
        start = i + 1;
    }
    false
}

fn count_occurrences(code: &str, pat: &str) -> usize {
    code.matches(pat).count()
}

fn reads_env(code: &str) -> bool {
    [
        "std::env",
        "env::var",
        "env::vars",
        "env::var_os",
        "env::args",
        "env::args_os",
        "env::set_var",
        "env::remove_var",
    ]
    .iter()
    .any(|t| has_token(code, t))
}

/// Offsets just past the opening parenthesis of each call of `callee`
/// (which must end with `(`). Function and tuple-struct definitions
/// (`fn name(`, `struct Name(`) are skipped. Patterns starting with `.`
/// are method calls and need no left-boundary check (the receiver
/// legitimately precedes them).
fn call_sites(code: &str, callee: &str) -> Vec<usize> {
    let method = callee.starts_with('.');
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(callee) {
        let i = start + pos;
        let left_ok = method || i == 0 || !is_ident_char(bytes[i - 1]);
        let before = code[..i].trim_end();
        let is_def = before.ends_with("fn") || before.ends_with("struct");
        if left_ok && !is_def {
            out.push(i + callee.len());
        }
        start = i + 1;
    }
    out
}

/// Parse `"<value>")` at the start of `s` (leading whitespace allowed):
/// a plain string literal immediately closed by the call's `)`. Returns
/// the raw text between the quotes.
fn leading_str_literal(s: &str) -> Option<String> {
    let rest = s.trim_start().strip_prefix('"')?;
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                let after = rest[i + 1..].trim_start();
                return after.starts_with(')').then(|| rest[..i].to_string());
            }
            _ => i += 1,
        }
    }
    None
}

/// Top-level comma-split of the arguments of a call whose opening paren
/// sits just before `open` in line `li` (0-based). Joins continuation
/// lines; rustfmt never spreads these calls past a handful of lines.
fn call_args(scanned: &Scanned, li: usize, open: usize) -> Option<Vec<String>> {
    let mut buf = String::new();
    for (k, line) in scanned.lines.iter().enumerate().skip(li).take(8) {
        if k == li {
            buf.push_str(&line.code[open..]);
        } else {
            buf.push(' ');
            buf.push_str(&line.code);
        }
        let mut depth = 1i32;
        let mut args = Vec::new();
        let mut cur = String::new();
        for ch in buf.chars() {
            match ch {
                '(' | '[' => {
                    depth += 1;
                    cur.push(ch);
                }
                ')' | ']' => {
                    depth -= 1;
                    if depth == 0 {
                        args.push(cur.trim().to_string());
                        return Some(args);
                    }
                    cur.push(ch);
                }
                ',' if depth == 1 => {
                    args.push(cur.trim().to_string());
                    cur.clear();
                }
                _ => cur.push(ch),
            }
        }
    }
    None
}

/// Parse a Rust integer literal (decimal / hex / octal / binary, with
/// `_` separators and an optional unsigned suffix).
fn parse_int(tok: &str) -> Option<u64> {
    let mut t = tok.trim().replace('_', "");
    for suffix in ["u64", "u32", "usize", "u16", "u8"] {
        if let Some(stripped) = t.strip_suffix(suffix) {
            t = stripped.to_string();
            break;
        }
    }
    let t = t.trim();
    if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(h, 16).ok()
    } else if let Some(o) = t.strip_prefix("0o") {
        u64::from_str_radix(o, 8).ok()
    } else if let Some(b) = t.strip_prefix("0b") {
        u64::from_str_radix(b, 2).ok()
    } else {
        t.parse().ok()
    }
}

/// `STREAM_X`, `streams::CHURN`, `Self::LABEL` — a plain path with no
/// operators (a bare variable also matches; it is rejected later when it
/// fails to resolve to a const).
fn is_const_path(tok: &str) -> bool {
    !tok.is_empty()
        && tok.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && tok.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Record `const NAME: <int type> = <int literal>;` declarations.
fn collect_consts(code: &str, out: &mut BTreeMap<String, BTreeSet<u64>>) {
    let mut rest = code;
    while let Some(pos) = rest.find("const ") {
        let boundary = pos == 0 || !is_ident_char(rest.as_bytes()[pos - 1]);
        let after = &rest[pos + "const ".len()..];
        rest = after;
        if !boundary {
            continue;
        }
        let name: String =
            after.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
        if name.is_empty() {
            continue;
        }
        let tail = &after[name.len()..];
        let Some(eq) = tail.find('=') else { continue };
        if !tail[..eq].contains(':') {
            continue;
        }
        let value_src = tail[eq + 1..].split(';').next().unwrap_or("");
        if let Some(v) = parse_int(value_src) {
            out.entry(name).or_default().insert(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_boundaries() {
        assert!(has_token("use std::collections::HashMap;", "HashMap"));
        assert!(!has_token("struct MyHashMapWrapper;", "HashMap"));
        assert!(has_token("let t = Instant::now();", "Instant::now"));
        assert!(!has_token("instant_now()", "Instant::now"));
        assert!(has_token("std::env::var(X)", "env::var"));
        assert!(
            !has_token("env::var_os(X)", "env::var") || has_token("env::var_os(X)", "env::var_os")
        );
    }

    #[test]
    fn int_literals() {
        assert_eq!(parse_int("0xC0DE_0001"), Some(0xC0DE_0001));
        assert_eq!(parse_int(" 42u64 "), Some(42));
        assert_eq!(parse_int("0b1010"), Some(10));
        assert_eq!(parse_int("seed + 1"), None);
        assert_eq!(parse_int("LABEL"), None);
    }

    #[test]
    fn const_paths() {
        assert!(is_const_path("STREAM_X"));
        assert!(is_const_path("streams::CHURN"));
        assert!(!is_const_path("id.0 as u64"));
        assert!(!is_const_path("seed + 1"));
        assert!(!is_const_path("0xAB"));
    }

    #[test]
    fn const_collection() {
        let mut map = BTreeMap::new();
        collect_consts("pub const STREAM_A: u64 = 0xA2C4_0001;", &mut map);
        collect_consts("    pub const CHURN: u64 = 0xC0DE_0001;", &mut map);
        collect_consts("const NAME: &str = \" \";", &mut map);
        assert_eq!(map.get("STREAM_A").map(|s| s.len()), Some(1));
        assert!(map.get("STREAM_A").is_some_and(|s| s.contains(&0xA2C4_0001)));
        assert!(map.contains_key("CHURN"));
        assert!(!map.contains_key("NAME"));
    }

    #[test]
    fn str_literals() {
        assert_eq!(leading_str_literal("\"runner.checkout\")"), Some("runner.checkout".into()));
        assert_eq!(leading_str_literal("  \"x\" )"), Some("x".into()));
        assert_eq!(leading_str_literal("\"a\\\"b\")"), Some("a\\\"b".into()));
        assert_eq!(leading_str_literal("name)"), None, "variable is not a literal");
        assert_eq!(leading_str_literal("\"x\".trim())"), None, "literal must close the call");
        assert_eq!(leading_str_literal("concat!(\"a\", \"b\"))"), None);
    }

    #[test]
    fn call_site_skips_tuple_struct_definition() {
        assert!(call_sites("pub struct MetricName(pub &'static str);", "MetricName(").is_empty());
        assert_eq!(call_sites("MetricName(\"x\")", "MetricName(").len(), 1);
    }

    #[test]
    fn call_site_skips_definition() {
        assert!(call_sites("pub fn fault_stream(seed: u64, label: u64) -> Rng {", "fault_stream(")
            .is_empty());
        assert_eq!(call_sites("let r = fault_stream(seed, LABEL);", "fault_stream(").len(), 1);
        assert_eq!(
            call_sites("clamshell_sim::faults::fault_stream(s, L)", "fault_stream(").len(),
            1
        );
        assert_eq!(call_sites("let rng = self.rng.fork(id.0 as u64);", ".fork(").len(), 1);
        assert!(call_sites("pub fn fork(&mut self, label: u64) -> Rng {", ".fork(").is_empty());
    }
}
