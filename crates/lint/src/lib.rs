//! # clamshell-lint
//!
//! A workspace determinism linter: the mechanical form of the
//! reproducibility contract described in ARCHITECTURE.md. Every result
//! this reproduction publishes rests on one invariant — a run is
//! bit-identical across thread counts and across fault-injection
//! toggles — and this crate rejects the code patterns that break it
//! *before* any simulation runs, instead of waiting for the
//! golden-master suite to notice downstream.
//!
//! ## Rule catalog
//!
//! | Rule | Severity | What it rejects |
//! |------|----------|-----------------|
//! | D001 | error    | `HashMap`/`HashSet` in deterministic library code |
//! | D002 | error    | `Instant::now` / `SystemTime::now` outside `crates/bench` |
//! | D003 | error    | `std::env` reads outside `sweep::threads` / `scenarios::golden` |
//! | D004 | error    | RNG stream labels that are not literals/consts, or collide |
//! | D005 | warning  | `unsafe` without a `// SAFETY:` comment |
//! | D006 | warning  | `unwrap()`/`expect()` in runner/sweep hot-path library code |
//! | D007 | error    | `MetricName`/`EventName` args that are not unique string literals |
//!
//! Violations are suppressible only with an inline, *reasoned* pragma —
//! `// clamshell-lint: allow(D004) -- why this is sound` — which the
//! tool records and summarizes. Malformed pragmas (`P001`), unknown
//! rule ids (`P002`), and pragmas that never fire (`P003`) are
//! themselves warnings, so the allowlist cannot rot silently.
//!
//! The linter is a std-only, dependency-free line/token scanner (no
//! `syn`), consistent with the workspace's offline vendored-crates
//! policy. Run it with `cargo run -p clamshell-lint -- --workspace`.

pub mod diag;
pub mod discover;
pub mod rules;
pub mod scan;

pub use diag::{Diagnostic, LintReport, Severity, Suppression};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lint every workspace source under `root` (see
/// [`discover::discover`] for the scan set).
pub fn lint_root(root: &Path) -> io::Result<LintReport> {
    let specs = discover::discover(root)?;
    run(&specs)
}

/// Lint an explicit set of files, classified relative to `root`.
/// Relative paths are resolved against `root`; unclassifiable paths
/// (outside the workspace layout) are an error.
pub fn lint_paths(root: &Path, paths: &[PathBuf]) -> io::Result<LintReport> {
    let mut specs = Vec::new();
    for given in paths {
        let p = if given.is_absolute() { given.clone() } else { root.join(given) };
        let spec = discover::classify(root, &p).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "{} is not a lintable workspace source (relative to {})",
                    p.display(),
                    root.display()
                ),
            )
        })?;
        specs.push(spec);
    }
    run(&specs)
}

fn run(specs: &[discover::SourceSpec]) -> io::Result<LintReport> {
    let mut engine = rules::Engine::new();
    for spec in specs {
        let src = fs::read_to_string(&spec.path)?;
        let scanned = scan::scan(&src, rules::SUPPRESSIBLE);
        engine.check_file(spec, &scanned);
    }
    Ok(engine.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::{FileKind, SourceSpec};
    use crate::rules::{Engine, SUPPRESSIBLE};

    /// Drive the engine over in-memory sources (path never read).
    pub(crate) fn lint_sources(files: &[(&str, &str)]) -> LintReport {
        let mut engine = Engine::new();
        for (rel, src) in files {
            let spec = spec_for(rel);
            let scanned = scan::scan(src, SUPPRESSIBLE);
            engine.check_file(&spec, &scanned);
        }
        engine.finalize()
    }

    fn spec_for(rel: &str) -> SourceSpec {
        let parts: Vec<&str> = rel.split('/').collect();
        let (crate_key, sub) = match parts.as_slice() {
            ["crates", name, sub, ..] => (name.to_string(), *sub),
            [sub, ..] => ("root".to_string(), *sub),
            [] => panic!("empty rel"),
        };
        let kind = match sub {
            "src" => FileKind::Lib,
            "tests" => FileKind::Tests,
            "benches" => FileKind::Benches,
            "examples" => FileKind::Examples,
            other => panic!("unknown subdir {other}"),
        };
        SourceSpec { path: PathBuf::from(rel), rel: rel.to_string(), crate_key, kind }
    }

    fn rules_of(report: &LintReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn d001_fires_in_lib_not_in_tests() {
        let report = lint_sources(&[(
            "crates/core/src/x.rs",
            "use std::collections::HashMap;\n#[cfg(test)]\nmod t {\n    fn f() { let s: std::collections::HashSet<u8> = Default::default(); }\n}\n",
        )]);
        assert_eq!(rules_of(&report), vec!["D001"]);
    }

    #[test]
    fn d001_ignores_non_deterministic_crates() {
        let report = lint_sources(&[("crates/bench/src/x.rs", "use std::collections::HashMap;\n")]);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn d002_exempts_bench_crate() {
        let bad = "fn f() { let t = std::time::Instant::now(); }\n";
        let report = lint_sources(&[("crates/sim/src/x.rs", bad)]);
        assert_eq!(rules_of(&report), vec!["D002"]);
        let report = lint_sources(&[("crates/bench/src/x.rs", bad)]);
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn d003_sanctions_the_two_ingress_points() {
        let bad = "fn f() { let v = std::env::var(\"X\"); }\n";
        let report = lint_sources(&[("crates/core/src/x.rs", bad)]);
        assert_eq!(rules_of(&report), vec!["D003"]);
        let report = lint_sources(&[("crates/sweep/src/threads.rs", bad)]);
        assert!(report.diagnostics.is_empty());
        let report = lint_sources(&[("crates/scenarios/src/golden.rs", bad)]);
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn d004_cross_file_duplicate_labels() {
        let report = lint_sources(&[
            ("crates/core/src/a.rs", "fn f(s: u64) { fault_stream(s, 0xAB); }\n"),
            (
                "crates/crowd/src/b.rs",
                "const L: u64 = 0xAB;\nfn g(s: u64) { fault_stream(s, L); }\n",
            ),
        ]);
        let d004: Vec<_> = report.diagnostics.iter().filter(|d| d.rule == "D004").collect();
        assert_eq!(d004.len(), 2, "{:?}", report.diagnostics);
        assert!(d004[0].message.contains("0xab"), "{}", d004[0].message);
        assert!(d004[0].message.contains("crates/crowd/src/b.rs:2"), "{}", d004[0].message);
    }

    #[test]
    fn d004_unique_labels_are_clean() {
        let report = lint_sources(&[
            ("crates/core/src/a.rs", "fn f(s: u64) { fault_stream(s, 0xAB); }\n"),
            ("crates/crowd/src/b.rs", "fn g(s: u64) { fault_stream(s, 0xAC); }\n"),
        ]);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn d004_dynamic_label_needs_pragma() {
        let report = lint_sources(&[(
            "crates/crowd/src/p.rs",
            "fn f(rng: &mut Rng, id: u32) { let r = rng.fork(id as u64); }\n",
        )]);
        assert_eq!(rules_of(&report), vec!["D004"]);
        let report = lint_sources(&[(
            "crates/crowd/src/p.rs",
            "fn f(rng: &mut Rng, id: u32) {\n    // clamshell-lint: allow(D004) -- per-worker fork namespaced by parent\n    let r = rng.fork(id as u64);\n}\n",
        )]);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert_eq!(report.suppressed.len(), 1);
    }

    #[test]
    fn d007_requires_same_line_string_literals() {
        let report = lint_sources(&[(
            "crates/obs/src/x.rs",
            "pub fn named(n: &'static str) -> MetricName { MetricName(n) }\n",
        )]);
        assert_eq!(rules_of(&report), vec!["D007"]);
        let report = lint_sources(&[(
            "crates/obs/src/x.rs",
            "pub const A: MetricName = MetricName(\"pool.join\");\n",
        )]);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn d007_cross_file_duplicates_pool_metrics_and_events() {
        let report = lint_sources(&[
            ("crates/obs/src/a.rs", "pub const A: MetricName = MetricName(\"runner.walkout\");\n"),
            ("crates/core/src/b.rs", "pub const B: EventName = EventName(\"runner.walkout\");\n"),
        ]);
        let d007: Vec<_> = report.diagnostics.iter().filter(|d| d.rule == "D007").collect();
        assert_eq!(d007.len(), 2, "{:?}", report.diagnostics);
        assert!(d007[0].message.contains("runner.walkout"), "{}", d007[0].message);
        assert!(d007[0].message.contains("crates/obs/src/a.rs:1"), "{}", d007[0].message);
    }

    #[test]
    fn d007_dynamic_name_needs_pragma() {
        let report = lint_sources(&[(
            "crates/obs/src/x.rs",
            "// clamshell-lint: allow(D007) -- adapter maps foreign names at the boundary\npub fn named(n: &'static str) -> EventName { EventName(n) }\n",
        )]);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert_eq!(report.suppressed.len(), 1);
    }

    #[test]
    fn d006_exempts_lock_poison_idiom() {
        let src = "fn f(m: &std::sync::Mutex<u32>, o: Option<u32>) -> u32 {\n    let a = *m.lock().unwrap();\n    a + o.unwrap()\n}\n";
        let report = lint_sources(&[("crates/sweep/src/pool.rs", src)]);
        assert_eq!(rules_of(&report), vec!["D006"]);
        assert_eq!(report.diagnostics[0].line, 3);
    }

    #[test]
    fn unused_pragma_warns() {
        let report = lint_sources(&[(
            "crates/core/src/x.rs",
            "// clamshell-lint: allow(D001) -- nothing here\nfn f() {}\n",
        )]);
        assert_eq!(rules_of(&report), vec!["P003"]);
    }
}
