//! Workspace file discovery and source classification.
//!
//! The linter does not parse Cargo manifests: the workspace layout is
//! conventional (`src/` facade at the root, member crates under
//! `crates/<name>/`), so the scan set is derived from the directory
//! structure. `vendor/` (offline stand-in crates), `target/`, and the
//! linter's own `fixtures/` trees are never scanned.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which compilation target a source file belongs to. Tests and benches
/// are exempt from most of the rule catalog; examples count as shipping
/// code for the wall-clock rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    Lib,
    Tests,
    Benches,
    Examples,
}

/// A source file scheduled for linting.
#[derive(Debug)]
pub struct SourceSpec {
    pub path: PathBuf,
    /// Path relative to the linted root, `/`-separated.
    pub rel: String,
    /// `"root"` for the facade crate, else the `crates/<name>` dir name.
    pub crate_key: String,
    pub kind: FileKind,
}

const KIND_DIRS: &[(&str, FileKind)] = &[
    ("src", FileKind::Lib),
    ("tests", FileKind::Tests),
    ("benches", FileKind::Benches),
    ("examples", FileKind::Examples),
];

/// Enumerate every workspace source file under `root`, deterministically
/// ordered (diagnostics must not depend on directory-entry order).
pub fn discover(root: &Path) -> io::Result<Vec<SourceSpec>> {
    let mut out = Vec::new();
    for &(dir, kind) in KIND_DIRS {
        collect(root, &root.join(dir), "root", kind, &mut out)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> =
            fs::read_dir(&crates_dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for member in members {
            if !member.is_dir() {
                continue;
            }
            let key = member.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
            for &(dir, kind) in KIND_DIRS {
                collect(root, &member.join(dir), &key, kind, &mut out)?;
            }
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

/// Classify a single explicitly-passed file against `root`.
pub fn classify(root: &Path, path: &Path) -> Option<SourceSpec> {
    let rel = rel_path(root, path)?;
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_key, kind_dir) = match parts.as_slice() {
        ["crates", name, sub, ..] => (name.to_string(), *sub),
        [sub, ..] => ("root".to_string(), *sub),
        [] => return None,
    };
    let kind = KIND_DIRS.iter().find(|&&(d, _)| d == kind_dir).map(|&(_, k)| k)?;
    Some(SourceSpec { path: path.to_path_buf(), rel, crate_key, kind })
}

fn collect(
    root: &Path,
    dir: &Path,
    crate_key: &str,
    kind: FileKind,
    out: &mut Vec<SourceSpec>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "fixtures" && name != "target" {
                collect(root, &path, crate_key, kind, out)?;
            }
        } else if name.ends_with(".rs") {
            if let Some(rel) = rel_path(root, &path) {
                out.push(SourceSpec { path, rel, crate_key: crate_key.to_string(), kind });
            }
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let s: Vec<String> =
        rel.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
    Some(s.join("/"))
}

/// Find the nearest ancestor of `start` whose `Cargo.toml` declares a
/// `[workspace]` section.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(contents) = fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_crate_and_root_files() {
        let root = Path::new("/ws");
        let spec = classify(root, Path::new("/ws/crates/sim/src/rng.rs")).expect("crate file");
        assert_eq!(spec.crate_key, "sim");
        assert_eq!(spec.kind, FileKind::Lib);
        assert_eq!(spec.rel, "crates/sim/src/rng.rs");

        let spec = classify(root, Path::new("/ws/tests/determinism.rs")).expect("root test");
        assert_eq!(spec.crate_key, "root");
        assert_eq!(spec.kind, FileKind::Tests);

        let spec = classify(root, Path::new("/ws/examples/quickstart.rs")).expect("example");
        assert_eq!(spec.kind, FileKind::Examples);

        assert!(classify(root, Path::new("/ws/vendor/serde/src/lib.rs")).is_none());
        assert!(classify(root, Path::new("/elsewhere/src/lib.rs")).is_none());
    }
}
