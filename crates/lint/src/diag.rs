//! Diagnostics, suppressions, and the text / JSON renderers.

use std::fmt;

/// How bad a finding is. Errors always fail the run (exit 1); warnings
/// fail it only under `--deny-warnings`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding at a source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path relative to the linted root, with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (`D001`..`D006` or pragma rules `P001`..`P003`).
    pub rule: &'static str,
    pub severity: Severity,
    pub message: String,
    pub hint: &'static str,
}

/// A violation that an inline `// clamshell-lint: allow(...) -- reason`
/// pragma silenced. Recorded so the allowlist stays auditable.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub file: String,
    /// Line of the suppressed violation (not of the pragma).
    pub line: usize,
    pub rule: &'static str,
    pub reason: String,
}

/// The result of a lint run over a set of files.
#[derive(Debug, Default)]
pub struct LintReport {
    pub diagnostics: Vec<Diagnostic>,
    pub suppressed: Vec<Suppression>,
    pub files_scanned: usize,
}

impl LintReport {
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    pub fn warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Human-readable report: one block per diagnostic, then the
    /// recorded suppressions, then a one-line summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}: {}[{}]: {}\n    hint: {}\n",
                d.file,
                d.line,
                d.severity.as_str(),
                d.rule,
                d.message,
                d.hint
            ));
        }
        if !self.suppressed.is_empty() {
            out.push_str("suppressions in effect:\n");
            for s in &self.suppressed {
                out.push_str(&format!(
                    "    allowed {} at {}:{} -- {}\n",
                    s.rule, s.file, s.line, s.reason
                ));
            }
        }
        out.push_str(&format!(
            "{} files scanned: {} error{}, {} warning{}, {} suppressed\n",
            self.files_scanned,
            self.errors(),
            plural(self.errors()),
            self.warnings(),
            plural(self.warnings()),
            self.suppressed.len()
        ));
        out
    }

    /// Machine-readable report. The schema is stable and covered by the
    /// CLI tests: `version`, `files_scanned`, `diagnostics[]` (`file`,
    /// `line`, `rule`, `severity`, `message`, `hint`), `suppressed[]`
    /// (`file`, `line`, `rule`, `reason`), and `summary` (`errors`,
    /// `warnings`, `suppressed`).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"severity\": {}, \
                 \"message\": {}, \"hint\": {}}}",
                json_str(&d.file),
                d.line,
                json_str(d.rule),
                json_str(d.severity.as_str()),
                json_str(&d.message),
                json_str(d.hint)
            ));
        }
        out.push_str(if self.diagnostics.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}}}",
                json_str(&s.file),
                s.line,
                json_str(s.rule),
                json_str(&s.reason)
            ));
        }
        out.push_str(if self.suppressed.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str(&format!(
            "  \"summary\": {{\"errors\": {}, \"warnings\": {}, \"suppressed\": {}}}\n",
            self.errors(),
            self.warnings(),
            self.suppressed.len()
        ));
        out.push_str("}\n");
        out
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Minimal JSON string encoder (the crate is dependency-free).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(&mut out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        LintReport {
            diagnostics: vec![Diagnostic {
                file: "crates/x/src/a.rs".into(),
                line: 3,
                rule: "D001",
                severity: Severity::Error,
                message: "a \"quoted\" message".into(),
                hint: "h",
            }],
            suppressed: vec![Suppression {
                file: "crates/x/src/b.rs".into(),
                line: 9,
                rule: "D006",
                reason: "invariant".into(),
            }],
            files_scanned: 2,
        }
    }

    #[test]
    fn text_report_lists_findings_and_summary() {
        let text = sample().render_text();
        assert!(text.contains("crates/x/src/a.rs:3: error[D001]"), "{text}");
        assert!(text.contains("allowed D006 at crates/x/src/b.rs:9 -- invariant"), "{text}");
        assert!(text.contains("2 files scanned: 1 error, 0 warnings, 1 suppressed"), "{text}");
    }

    #[test]
    fn json_escapes_and_balances() {
        let json = sample().render_json();
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        assert!(json.contains("\"version\": 1"), "{json}");
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_report_renders_empty_arrays() {
        let json = LintReport::default().render_json();
        assert!(json.contains("\"diagnostics\": []"), "{json}");
        assert!(json.contains("\"suppressed\": []"), "{json}");
    }
}
