//! Lexical scanning: comment/string stripping, `#[cfg(test)]` region
//! tracking, and suppression-pragma parsing.
//!
//! The linter is deliberately a line/token-level tool — no `syn`, no
//! proc-macro machinery, consistent with the workspace's offline,
//! dependency-free policy. This module does the minimal lexical work the
//! rules need to avoid false positives: tokens inside string literals,
//! char literals, and comments must never trip a rule, and code under
//! `#[cfg(test)]` is exempt from most of the catalog.

/// Classification of a source line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Library / binary code: the determinism contract applies.
    Lib,
    /// Inside a `#[cfg(test)]` item (or following a `#[test]` attribute).
    Test,
}

/// A scanned line. `code` has comments removed and string / char literal
/// *contents* blanked with spaces (delimiters kept), so substring and
/// token searches only ever see real code. `comment` holds the text of
/// any comment on the line (used for pragma and `// SAFETY:` detection).
/// `raw` is the unmodified source line, for the few rules (D007) that
/// must read string-literal *values* the blanking erased.
#[derive(Debug)]
pub struct Line {
    pub code: String,
    pub comment: String,
    pub raw: String,
    pub region: Region,
}

impl Line {
    /// A line carrying a comment but no code (a standalone pragma on
    /// such a line applies to the next code line).
    pub fn comment_only(&self) -> bool {
        self.code.trim().is_empty() && !self.comment.trim().is_empty()
    }
}

/// A well-formed suppression pragma:
/// `// clamshell-lint: allow(D001) -- reason`.
#[derive(Debug)]
pub struct Pragma {
    /// 1-based line the pragma appears on.
    pub line: usize,
    pub rule: String,
    pub reason: String,
    /// On a comment-only line (applies to the next code line) vs
    /// trailing a code line (applies to that line).
    pub standalone: bool,
}

/// A malformed or unknown pragma; reported as its own warning so typos
/// cannot silently disable enforcement.
#[derive(Debug)]
pub struct PragmaIssue {
    pub line: usize,
    /// `P001` (malformed / missing reason) or `P002` (unknown rule id).
    pub rule: &'static str,
    pub message: String,
}

/// A fully scanned source file.
#[derive(Debug)]
pub struct Scanned {
    pub lines: Vec<Line>,
    pub pragmas: Vec<Pragma>,
    pub issues: Vec<PragmaIssue>,
}

/// The comment marker that introduces a pragma.
pub const PRAGMA_MARKER: &str = "clamshell-lint:";

pub fn scan(src: &str, known_rules: &[&str]) -> Scanned {
    let mut lines = strip(src);
    for (line, raw) in lines.iter_mut().zip(src.lines()) {
        line.raw = raw.to_string();
    }
    mark_regions(&mut lines);
    let (pragmas, issues) = parse_pragmas(&lines, known_rules);
    Scanned { lines, pragmas, issues }
}

impl Scanned {
    /// The pragma suppressing `rule` at 1-based `line`, if any: a
    /// trailing pragma on the line itself, or a standalone pragma on the
    /// immediately preceding run of comment-only lines.
    pub fn suppressor(&self, line: usize, rule: &str) -> Option<&Pragma> {
        if let Some(p) =
            self.pragmas.iter().find(|p| p.line == line && !p.standalone && p.rule == rule)
        {
            return Some(p);
        }
        // Walk up through comment-only lines (a stack of standalone
        // pragmas may precede one code line).
        let mut at = line;
        while at >= 2 && self.lines[at - 2].comment_only() {
            at -= 1;
            if let Some(p) =
                self.pragmas.iter().find(|p| p.line == at && p.standalone && p.rule == rule)
            {
                return Some(p);
            }
        }
        None
    }

    /// Does the line itself, or the contiguous run of comment-only
    /// lines directly above it, contain a `SAFETY:` marker? (Used by
    /// D005; the comment block may be arbitrarily long.)
    pub fn has_safety_comment(&self, line: usize) -> bool {
        if self.lines[line - 1].comment.contains("SAFETY:") {
            return true;
        }
        let mut at = line;
        while at >= 2 && self.lines[at - 2].comment_only() {
            at -= 1;
            if self.lines[at - 1].comment.contains("SAFETY:") {
                return true;
            }
        }
        false
    }
}

// ---------------------------------------------------------------------
// Stripping
// ---------------------------------------------------------------------

enum State {
    Normal,
    /// `bool`: doc comment (`///` or `//!`) — doc text is *not* captured,
    /// so prose showing pragma syntax can never act as a pragma.
    LineComment(bool),
    BlockComment(u32, bool),
    Str,
    RawStr(usize),
}

/// Split `src` into lines with comments removed and literal contents
/// blanked. Handles nested block comments, escapes, byte/raw strings
/// (`b"…"`, `r"…"`, `r#"…"#`), char literals, and lifetimes.
fn strip(src: &str) -> Vec<Line> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Normal;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            if let State::LineComment(_) = state {
                state = State::Normal;
            }
            out.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                raw: String::new(),
                region: Region::Lib,
            });
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                if c == '/' && next == Some('/') {
                    let doc = matches!(chars.get(i + 2), Some('/') | Some('!'))
                        && chars.get(i + 3) != Some(&'/');
                    state = State::LineComment(doc);
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    let doc = matches!(chars.get(i + 2), Some('*') | Some('!'))
                        && chars.get(i + 3) != Some(&'/');
                    state = State::BlockComment(1, doc);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Str;
                    i += 1;
                } else if let Some(hashes) = raw_string_at(&chars, i) {
                    code.push('"');
                    state = State::RawStr(hashes);
                    // skip the prefix (r / br), the hashes, and the quote
                    let prefix = if c == 'b' { 2 } else { 1 };
                    i += prefix + hashes + 1;
                } else if c == 'b' && next == Some('"') && !prev_is_ident(&chars, i) {
                    code.push('"');
                    state = State::Str;
                    i += 2;
                } else if c == '\'' || (c == 'b' && next == Some('\'') && !prev_is_ident(&chars, i))
                {
                    i = skip_char_or_lifetime(&chars, i, &mut code);
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment(doc) => {
                if !doc {
                    comment.push(c);
                }
                i += 1;
            }
            State::BlockComment(depth, doc) => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1, doc);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1, doc)
                    };
                    i += 2;
                } else {
                    if !doc {
                        comment.push(c);
                    }
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Normal;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"'
                    && chars[i + 1..].iter().take(hashes).filter(|&&h| h == '#').count() == hashes
                {
                    code.push('"');
                    state = State::Normal;
                    i += 1 + hashes;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        out.push(Line { code, comment, raw: String::new(), region: Region::Lib });
    }
    out
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_ascii_alphanumeric() || chars[i - 1] == '_')
}

/// If position `i` starts a raw string literal (`r"`, `r#"`, `br#"`, …),
/// the number of `#`s; else `None`.
fn raw_string_at(chars: &[char], i: usize) -> Option<usize> {
    if prev_is_ident(chars, i) {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// Consume a char literal (blanked) or a lifetime (kept) starting at the
/// `'` (or `b'`); returns the next index.
fn skip_char_or_lifetime(chars: &[char], i: usize, code: &mut String) -> usize {
    let start = if chars[i] == 'b' { i + 1 } else { i };
    debug_assert_eq!(chars[start], '\'');
    match chars.get(start + 1) {
        Some('\\') => {
            // Escaped char literal: blank through the closing quote.
            let mut j = start + 2;
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            for _ in i..=j.min(chars.len() - 1) {
                code.push(' ');
            }
            j + 1
        }
        Some(_) if chars.get(start + 2) == Some(&'\'') => {
            // Simple char literal 'x' (or b'x').
            for _ in 0..(start + 3 - i) {
                code.push(' ');
            }
            start + 3
        }
        _ => {
            // A lifetime (or stray quote): keep it as code.
            code.push('\'');
            i + 1
        }
    }
}

// ---------------------------------------------------------------------
// Regions
// ---------------------------------------------------------------------

/// Mark every line inside a `#[cfg(test)]` item (or after a `#[test]`
/// attribute) as [`Region::Test`] by tracking brace depth on the
/// stripped code.
fn mark_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut stack: Vec<i64> = Vec::new();
    for line in lines.iter_mut() {
        if line.code.contains("#[cfg(test)]")
            || line.code.contains("cfg(all(test")
            || line.code.trim() == "#[test]"
        {
            pending = true;
        }
        line.region = if pending || !stack.is_empty() { Region::Test } else { Region::Lib };
        for ch in line.code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending {
                        stack.push(depth);
                        pending = false;
                    }
                }
                '}' => {
                    if stack.last() == Some(&depth) {
                        stack.pop();
                    }
                    depth -= 1;
                }
                // `#[cfg(test)] mod tests;` / `#[cfg(test)] use …;`:
                // the attribute covers one item that ended without a
                // block, so stop pending at the semicolon.
                ';' => pending = false,
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------

fn parse_pragmas(lines: &[Line], known_rules: &[&str]) -> (Vec<Pragma>, Vec<PragmaIssue>) {
    let mut pragmas = Vec::new();
    let mut issues = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let no = idx + 1;
        let Some(pos) = line.comment.find(PRAGMA_MARKER) else { continue };
        let rest = line.comment[pos + PRAGMA_MARKER.len()..].trim();
        let Some(open) = rest.strip_prefix("allow(") else {
            issues.push(PragmaIssue {
                line: no,
                rule: "P001",
                message: format!("malformed pragma: expected `allow(<rule>)`, found `{rest}`"),
            });
            continue;
        };
        let Some(close) = open.find(')') else {
            issues.push(PragmaIssue {
                line: no,
                rule: "P001",
                message: "malformed pragma: unclosed `allow(`".into(),
            });
            continue;
        };
        let rule = open[..close].trim();
        if !known_rules.contains(&rule) {
            issues.push(PragmaIssue {
                line: no,
                rule: "P002",
                message: format!("unknown rule id `{rule}` in allow pragma"),
            });
            continue;
        }
        let tail = open[close + 1..].trim();
        let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            issues.push(PragmaIssue {
                line: no,
                rule: "P001",
                message: format!("pragma for {rule} is missing its `-- <reason>`"),
            });
            continue;
        }
        pragmas.push(Pragma {
            line: no,
            rule: rule.to_string(),
            reason: reason.to_string(),
            standalone: line.comment_only(),
        });
    }
    (pragmas, issues)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["D001", "D002"];

    fn codes(src: &str) -> Vec<String> {
        strip(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let c = codes("let x = \"HashMap // not a comment\"; // HashMap\nuse HashMap;");
        assert!(!c[0].contains("HashMap"), "{:?}", c[0]);
        assert!(c[0].contains("let x = "), "{:?}", c[0]);
        assert!(c[1].contains("HashMap"));
    }

    #[test]
    fn comment_text_is_captured() {
        let lines = strip("let a = 1; // SAFETY: fine\n/* block HashMap */ let b = 2;");
        assert!(lines[0].comment.contains("SAFETY: fine"));
        assert!(lines[1].comment.contains("block HashMap"));
        assert!(lines[1].code.contains("let b = 2"));
    }

    #[test]
    fn nested_block_comments_and_multiline_strings() {
        let src =
            "/* outer /* inner */ still comment */ code1\nlet s = \"line1\nline2 HashMap\"; code2";
        let c = codes(src);
        assert!(c[0].contains("code1"));
        assert!(!c[0].contains("outer"));
        assert!(!c[1].contains("line2"));
        assert!(c[2].contains("code2"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let c = codes("let s = r#\"HashMap \" inside\"#; after();");
        assert!(!c[0].contains("HashMap"), "{:?}", c[0]);
        assert!(c[0].contains("after()"), "{:?}", c[0]);
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let c = codes("let c = '{'; fn f<'a>(x: &'a str) {}");
        assert!(!c[0].contains('{') || c[0].matches('{').count() == 1, "{:?}", c[0]);
        assert!(c[0].contains("'a"), "{:?}", c[0]);
        // The blanked '{' must not break brace tracking:
        let mut lines = strip("let c = '{';\n#[cfg(test)]\nmod t {\n    x();\n}\nafter();");
        mark_regions(&mut lines);
        assert_eq!(lines[3].region, Region::Test);
        assert_eq!(lines[5].region, Region::Lib);
    }

    #[test]
    fn cfg_test_region_tracking() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x(); }\n}\nfn lib2() {}";
        let mut lines = strip(src);
        mark_regions(&mut lines);
        let regions: Vec<Region> = lines.iter().map(|l| l.region).collect();
        assert_eq!(regions[0], Region::Lib);
        assert_eq!(regions[2], Region::Test);
        assert_eq!(regions[3], Region::Test);
        assert_eq!(regions[5], Region::Lib);
    }

    #[test]
    fn cfg_test_use_item_is_test_region() {
        let src = "#[cfg(test)] use std::collections::HashSet;\nfn lib() {}";
        let mut lines = strip(src);
        mark_regions(&mut lines);
        assert_eq!(lines[0].region, Region::Test);
        assert_eq!(lines[1].region, Region::Lib);
    }

    #[test]
    fn trailing_and_standalone_pragmas() {
        let src = "// clamshell-lint: allow(D001) -- frozen order\nuse x;\nuse y; // clamshell-lint: allow(D002) -- no clock";
        let s = scan(src, RULES);
        assert_eq!(s.pragmas.len(), 2);
        assert!(s.suppressor(2, "D001").is_some());
        assert!(s.suppressor(2, "D002").is_none());
        assert!(s.suppressor(3, "D002").is_some());
        assert!(s.suppressor(3, "D001").is_none());
    }

    #[test]
    fn stacked_standalone_pragmas_reach_the_code_line() {
        let src =
            "// clamshell-lint: allow(D001) -- a\n// clamshell-lint: allow(D002) -- b\nuse x;";
        let s = scan(src, RULES);
        assert!(s.suppressor(3, "D001").is_some());
        assert!(s.suppressor(3, "D002").is_some());
    }

    #[test]
    fn pragma_missing_reason_is_an_issue() {
        let s = scan("use x; // clamshell-lint: allow(D001)", RULES);
        assert!(s.pragmas.is_empty());
        assert_eq!(s.issues.len(), 1);
        assert_eq!(s.issues[0].rule, "P001");
        assert!(s.issues[0].message.contains("missing"), "{}", s.issues[0].message);
    }

    #[test]
    fn pragma_unknown_rule_is_an_issue() {
        let s = scan("use x; // clamshell-lint: allow(D999) -- because", RULES);
        assert!(s.pragmas.is_empty());
        assert_eq!(s.issues[0].rule, "P002");
    }

    #[test]
    fn pragma_wrong_verb_is_an_issue() {
        let s = scan("use x; // clamshell-lint: deny(D001) -- nope", RULES);
        assert_eq!(s.issues[0].rule, "P001");
    }

    #[test]
    fn blank_line_breaks_standalone_pragma_chain() {
        let src = "// clamshell-lint: allow(D001) -- a\n\nuse x;";
        let s = scan(src, RULES);
        assert!(s.suppressor(3, "D001").is_none());
    }

    #[test]
    fn doc_comments_cannot_carry_pragmas() {
        let src = "/// syntax: `// clamshell-lint: allow(D001) -- reason`\n//! also `// clamshell-lint: allow(D002) -- x`\nfn f() {}\n";
        let s = scan(src, RULES);
        assert!(s.pragmas.is_empty(), "{:?}", s.pragmas);
        assert!(s.issues.is_empty(), "{:?}", s.issues);
    }

    #[test]
    fn safety_comment_window() {
        let src = "// SAFETY: checked\nunsafe { x() }\n\n\nunsafe { y() }";
        let s = scan(src, RULES);
        assert!(s.has_safety_comment(2));
        assert!(!s.has_safety_comment(5));
    }

    #[test]
    fn safety_comment_found_through_long_comment_block() {
        let src =
            "// SAFETY: a long explanation\n// that continues\n// and continues\nunsafe { x() }";
        let s = scan(src, RULES);
        assert!(s.has_safety_comment(4));
    }
}
