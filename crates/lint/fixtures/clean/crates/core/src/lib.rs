//! A fully clean fixture workspace: exit code 0, even with
//! `--deny-warnings`.

pub fn stable_sum(xs: &std::collections::BTreeMap<u32, u32>) -> u32 {
    xs.values().sum()
}
