//! A warnings-only fixture workspace: exit 0 by default, exit 1 under
//! `--deny-warnings` (D006 is a warning-severity rule).

pub fn hot_path_expect(r: Result<u32, String>) -> u32 {
    r.expect("completed")
}
