//! D006 fixture: every file under `crates/sweep/src/` is hot-path.

pub fn bad_expect(r: Result<u32, String>) -> u32 {
    r.expect("job completed")
}
