//! Sanctioned-ingress fixture: this path (`crates/sweep/src/threads.rs`)
//! may read the environment without tripping D003.

pub fn sanctioned() -> Option<String> {
    std::env::var("CLAMSHELL_THREADS").ok()
}
