//! Sharded-executor fixture: the checkpoint/resume module's hazards.
//! Everything under `crates/sweep/src/` is hot-path, so a stray
//! manifest-parse unwrap fires D006; shard knobs must arrive through
//! `ShardOptions`, never the environment, so an env read here fires
//! D003 (only `sweep::threads` and `scenarios::golden` are sanctioned).

pub fn bad_manifest_field_unwrap(field: Option<u64>) -> u64 {
    field.unwrap()
}

pub fn restore_checkpoint_words(words: Result<Vec<u64>, String>) -> Vec<u64> {
    // clamshell-lint: allow(D006) -- fixture witness: the fp chain verified this snapshot upstream
    words.expect("manifest chain verified")
}

pub fn bad_env_shard_size() -> Option<String> {
    std::env::var("CLAMSHELL_SHARD_SIZE").ok()
}

pub fn manifest_lock_poison_is_exempt(manifest: &std::sync::Mutex<Vec<u64>>) -> usize {
    manifest.lock().unwrap().len()
}
