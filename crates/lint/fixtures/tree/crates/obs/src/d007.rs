//! D007 fixture: metric/trace-event name hygiene.

pub struct MetricName(pub &'static str);
pub struct EventName(pub &'static str);

// A unique literal: clean.
pub const FIX_GOOD: MetricName = MetricName("fixture.good");

// Duplicated in crates/core/src/d007_dup.rs: fires at both sites.
pub const FIX_DUP_A: MetricName = MetricName("fixture.dup");

// Non-literal name argument: fires.
pub fn named(n: &'static str) -> MetricName {
    MetricName(n)
}

// clamshell-lint: allow(D007) -- fixture witness: boundary adapter may forward foreign names
pub fn adapted(n: &'static str) -> EventName { EventName(n) }
