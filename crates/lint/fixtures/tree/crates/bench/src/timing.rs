//! Bench-crate fixture: wall-clock reads are the whole point here, so
//! D002 does not apply inside `crates/bench`.

pub fn stopwatch() -> std::time::Instant {
    std::time::Instant::now()
}
