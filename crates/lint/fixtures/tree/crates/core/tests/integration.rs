//! Integration-test fixture: whole-file test sources are exempt from
//! the library-code rules.

use std::collections::HashMap;

#[test]
fn hash_collections_are_fine_in_tests() {
    let mut m = HashMap::new();
    m.insert(1, 2);
    assert_eq!(m[&1], 2);
}
