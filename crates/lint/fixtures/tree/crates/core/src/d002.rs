//! D002 fixture: wall-clock reads outside crates/bench.

pub fn bad_timing() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn allowed() -> std::time::SystemTime {
    // clamshell-lint: allow(D002) -- diagnostic-only timestamp, never reaches a report byte
    std::time::SystemTime::now()
}
