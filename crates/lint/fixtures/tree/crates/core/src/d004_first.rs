//! D004 fixture, file 1 of 2: the label here collides with a label
//! declared in `crates/crowd/src/d004_second.rs` (cross-file check).

pub const FIX_STREAM_A: u64 = 0x00AB;

pub fn duplicated_label(seed: u64) -> Rng {
    fault_stream(seed, FIX_STREAM_A)
}

pub fn dynamic_label(seed: u64, runtime_label: u64) -> Rng {
    fault_stream(seed, runtime_label)
}

pub fn dynamic_fork(rng: &mut Rng, id: u64) -> Rng {
    rng.fork(id * 2)
}

pub fn literal_fork_is_fine(rng: &mut Rng) -> Rng {
    rng.fork(7)
}
