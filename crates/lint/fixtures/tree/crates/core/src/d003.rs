//! D003 fixture: environment reads outside the sanctioned ingress points.

pub fn bad_env() -> Option<String> {
    std::env::var("SOME_KNOB").ok()
}

pub fn allowed() -> bool {
    // clamshell-lint: allow(D003) -- debug-only toggle that cannot change simulation output
    std::env::var_os("DEBUG_DUMP").is_some()
}
