//! D005 fixture: unsafe without a SAFETY comment.

pub fn bad(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn good(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid for reads (checked at every call site).
    unsafe { *p }
}

pub fn allowed(p: *const u8) -> u8 {
    unsafe { *p } // clamshell-lint: allow(D005) -- suppression witness for the self-test
}
