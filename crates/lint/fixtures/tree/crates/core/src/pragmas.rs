//! Pragma edge-case fixture: malformed, unknown, and stale pragmas are
//! warnings in their own right, so the allowlist cannot rot silently.

pub fn noop() {}

// clamshell-lint: allow(D001)
pub fn missing_reason() {}

// clamshell-lint: allow(D999) -- no such rule id
pub fn unknown_rule() {}

// clamshell-lint: deny(D001) -- wrong verb
pub fn malformed_verb() {}

// clamshell-lint: allow(D002) -- nothing on the next line uses a clock
pub fn unused_allow() {}
