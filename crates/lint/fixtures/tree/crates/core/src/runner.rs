//! D006 fixture: this path shadows the hot-path file name
//! `crates/core/src/runner.rs`, so the unwrap/expect ban applies.

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("always set")
}

pub fn poison_idiom_is_exempt(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

pub fn allowed(v: Option<u32>) -> u32 {
    v.unwrap() // clamshell-lint: allow(D006) -- invariant: caller checked is_some
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
