//! D001 fixture: hash-ordered collections in deterministic lib code.

pub fn bad_iteration(m: &std::collections::HashMap<u32, u32>) -> u32 {
    m.values().sum()
}

// clamshell-lint: allow(D001) -- contents are drained into a sorted Vec before any order-sensitive use
pub fn allowed(m: &std::collections::HashSet<u32>) -> usize {
    m.len()
}

pub fn fine(m: &std::collections::BTreeMap<u32, u32>) -> u32 {
    m.values().sum()
}

pub fn strings_do_not_count() -> &'static str {
    "a HashMap mentioned in a string is not a violation"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_region_is_exempt() {
        let mut s = std::collections::HashSet::new();
        s.insert(1);
        assert_eq!(s.len(), 1);
    }
}
