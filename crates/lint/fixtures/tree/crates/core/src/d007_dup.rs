//! D007 fixture: the duplicate-name partner file. `"fixture.dup"` is
//! also declared in crates/obs/src/d007.rs, as an *event* name — metric
//! and event names share one pool, so this still collides.

pub const FIX_DUP_B: EventName = EventName("fixture.dup");
