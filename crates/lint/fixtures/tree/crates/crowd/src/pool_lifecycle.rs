//! Pool-lifecycle fixture: the shapes the production pool module must
//! not regress into — hash-ordered member maps (D001) — plus a unique
//! RNG stream label (no D004: 0x00AD appears nowhere else in the tree).

pub fn member_map_on_hash(m: &std::collections::HashMap<u32, u32>) -> usize {
    m.len()
}

// clamshell-lint: allow(D001) -- scratch set is drained into a sorted checkout list before any order-sensitive use
pub fn checkout_scratch(s: &std::collections::HashSet<u32>) -> usize {
    s.len()
}

pub fn idle_jitter_stream(seed: u64) -> Rng {
    fault_stream(seed, 0x00AD)
}

pub fn ordered_members(m: &std::collections::BTreeMap<u32, u32>) -> usize {
    m.len()
}
