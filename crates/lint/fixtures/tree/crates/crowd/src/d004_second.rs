//! D004 fixture, file 2 of 2: same label value as
//! `crates/core/src/d004_first.rs` under a different const name.

const FIX_STREAM_B: u64 = 0x00AB;

pub fn duplicated_label(seed: u64) -> Rng {
    fault_stream(seed, FIX_STREAM_B)
}

pub fn suppressed_dynamic(seed: u64) -> Rng {
    // clamshell-lint: allow(D004) -- label is seed-derived and unique per run by construction
    fault_stream(seed, seed + 1)
}

pub fn unique_label(seed: u64) -> Rng {
    fault_stream(seed, 0x00AC)
}
