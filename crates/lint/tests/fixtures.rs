//! Fixture self-tests: run the linter over the known-bad tree under
//! `fixtures/tree` and assert exactly which (file, rule) pairs fire,
//! which are suppressed, and which known-bad-looking constructs are
//! correctly exempt.

use std::collections::BTreeSet;
use std::path::Path;

use clamshell_lint::lint_root;

fn fixture_root(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name)
}

fn findings(report: &clamshell_lint::LintReport) -> BTreeSet<(String, String)> {
    report.diagnostics.iter().map(|d| (d.file.clone(), d.rule.to_string())).collect()
}

fn count(report: &clamshell_lint::LintReport, file: &str, rule: &str) -> usize {
    report.diagnostics.iter().filter(|d| d.file == file && d.rule == rule).count()
}

fn suppressed_count(report: &clamshell_lint::LintReport, file: &str, rule: &str) -> usize {
    report.suppressed.iter().filter(|s| s.file == file && s.rule == rule).count()
}

#[test]
fn bad_tree_fires_every_rule() {
    let report = lint_root(&fixture_root("tree")).expect("lint fixtures/tree");
    let fired: BTreeSet<String> = report.diagnostics.iter().map(|d| d.rule.to_string()).collect();
    for rule in ["D001", "D002", "D003", "D004", "D005", "D006", "D007", "P001", "P002", "P003"] {
        assert!(fired.contains(rule), "expected {rule} to fire in fixtures/tree; fired: {fired:?}");
    }
}

#[test]
fn bad_tree_suppresses_every_suppressible_rule() {
    let report = lint_root(&fixture_root("tree")).expect("lint fixtures/tree");
    let seen: BTreeSet<String> = report.suppressed.iter().map(|s| s.rule.to_string()).collect();
    for rule in ["D001", "D002", "D003", "D004", "D005", "D006", "D007"] {
        assert!(seen.contains(rule), "expected a suppression witness for {rule}; saw: {seen:?}");
    }
}

#[test]
fn d001_hash_collections() {
    let report = lint_root(&fixture_root("tree")).expect("lint fixtures/tree");
    let f = "crates/core/src/d001.rs";
    assert_eq!(count(&report, f, "D001"), 1, "one un-suppressed HashMap use");
    assert_eq!(suppressed_count(&report, f, "D001"), 1, "one pragma-suppressed HashSet use");
}

#[test]
fn d002_wall_clock_fires_outside_bench_only() {
    let report = lint_root(&fixture_root("tree")).expect("lint fixtures/tree");
    assert_eq!(count(&report, "crates/core/src/d002.rs", "D002"), 1);
    assert_eq!(suppressed_count(&report, "crates/core/src/d002.rs", "D002"), 1);
    assert_eq!(
        count(&report, "crates/bench/src/timing.rs", "D002"),
        0,
        "crates/bench is exempt from the wall-clock ban"
    );
}

#[test]
fn d003_env_reads_respect_sanctioned_ingress() {
    let report = lint_root(&fixture_root("tree")).expect("lint fixtures/tree");
    assert_eq!(count(&report, "crates/core/src/d003.rs", "D003"), 1);
    assert_eq!(suppressed_count(&report, "crates/core/src/d003.rs", "D003"), 1);
    assert_eq!(
        count(&report, "crates/sweep/src/threads.rs", "D003"),
        0,
        "sweep::threads is a sanctioned ingress point"
    );
}

#[test]
fn d004_cross_file_duplicate_is_reported_at_both_sites() {
    let report = lint_root(&fixture_root("tree")).expect("lint fixtures/tree");
    // FIX_STREAM_A (core) and FIX_STREAM_B (crowd) both resolve to 0x00AB:
    // the duplicate must be reported at each call site, in each file.
    let dup_core: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.file == "crates/core/src/d004_first.rs" && d.rule == "D004")
        .collect();
    let dup_crowd: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.file == "crates/crowd/src/d004_second.rs" && d.rule == "D004")
        .collect();
    assert!(
        dup_core.iter().any(|d| d.message.contains("0xab") && d.message.contains("d004_second.rs")),
        "core site should name the crowd site as the other user of 0xab; got {dup_core:?}"
    );
    assert!(
        dup_crowd.iter().any(|d| d.message.contains("0xab") && d.message.contains("d004_first.rs")),
        "crowd site should name the core site as the other user of 0xab; got {dup_crowd:?}"
    );
}

#[test]
fn d004_dynamic_labels_fire_and_suppress() {
    let report = lint_root(&fixture_root("tree")).expect("lint fixtures/tree");
    // d004_first.rs: duplicate (1) + dynamic fault_stream label (1) + dynamic fork label (1).
    assert_eq!(count(&report, "crates/core/src/d004_first.rs", "D004"), 3);
    // d004_second.rs: duplicate (1); the dynamic label there is pragma-suppressed
    // and the 0x00AC label is unique.
    assert_eq!(count(&report, "crates/crowd/src/d004_second.rs", "D004"), 1);
    assert_eq!(suppressed_count(&report, "crates/crowd/src/d004_second.rs", "D004"), 1);
}

#[test]
fn d007_name_hygiene() {
    let report = lint_root(&fixture_root("tree")).expect("lint fixtures/tree");
    let obs = "crates/obs/src/d007.rs";
    let core = "crates/core/src/d007_dup.rs";
    // obs fixture: one non-literal argument + one half of the cross-file
    // duplicate; the other dynamic-name site is pragma-suppressed.
    assert_eq!(count(&report, obs, "D007"), 2);
    assert_eq!(suppressed_count(&report, obs, "D007"), 1);
    // The duplicate fires at the partner site too, naming the obs site.
    assert_eq!(count(&report, core, "D007"), 1);
    let dup = report
        .diagnostics
        .iter()
        .find(|d| d.file == core && d.rule == "D007")
        .expect("duplicate diagnostic at the core site");
    assert!(dup.message.contains("fixture.dup"), "{}", dup.message);
    assert!(dup.message.contains("crates/obs/src/d007.rs"), "{}", dup.message);
}

#[test]
fn d005_unsafe_without_safety_comment() {
    let report = lint_root(&fixture_root("tree")).expect("lint fixtures/tree");
    let f = "crates/core/src/d005.rs";
    assert_eq!(count(&report, f, "D005"), 1, "only the uncommented unsafe block fires");
    assert_eq!(suppressed_count(&report, f, "D005"), 1);
}

#[test]
fn d006_hot_path_unwraps() {
    let report = lint_root(&fixture_root("tree")).expect("lint fixtures/tree");
    let runner = "crates/core/src/runner.rs";
    assert_eq!(count(&report, runner, "D006"), 2, "bare unwrap + expect; poison idiom exempt");
    assert_eq!(suppressed_count(&report, runner, "D006"), 1);
    assert_eq!(count(&report, "crates/sweep/src/pool.rs", "D006"), 1);
}

#[test]
fn pragma_hygiene_rules() {
    let report = lint_root(&fixture_root("tree")).expect("lint fixtures/tree");
    let f = "crates/core/src/pragmas.rs";
    assert_eq!(count(&report, f, "P001"), 2, "missing reason + wrong verb");
    assert_eq!(count(&report, f, "P002"), 1, "unknown rule id D999");
    assert_eq!(count(&report, f, "P003"), 1, "stale allow(D002) with nothing to suppress");
}

#[test]
fn test_sources_and_clean_files_stay_silent() {
    let report = lint_root(&fixture_root("tree")).expect("lint fixtures/tree");
    let fired = findings(&report);
    assert!(
        !fired.iter().any(|(f, _)| f == "crates/core/tests/integration.rs"),
        "integration tests may use hash collections"
    );
    assert!(
        !fired.iter().any(|(f, _)| f == "crates/quality/src/ok.rs"),
        "the clean file must not fire anything"
    );
}

#[test]
fn pool_lifecycle_fixture_covers_the_new_module() {
    // The production-pool module's determinism hazards: a hash-ordered
    // member map fires D001, a drained scratch set is suppressible, and
    // its RNG stream label (0x00AD) is unique tree-wide so D004 stays
    // quiet.
    let report = lint_root(&fixture_root("tree")).expect("lint fixtures/tree");
    let f = "crates/crowd/src/pool_lifecycle.rs";
    assert_eq!(count(&report, f, "D001"), 1, "HashMap member map must fire D001");
    assert_eq!(suppressed_count(&report, f, "D001"), 1, "drained scratch set is suppressed");
    assert_eq!(count(&report, f, "D004"), 0, "0x00AD is unique across the fixture tree");
}

#[test]
fn shard_fixture_covers_the_sharded_executor() {
    // The checkpoint/resume module's hazards: manifest parsing tempts
    // unwraps (hot-path, D006), shard knobs tempt env reads (D003 — the
    // shard module is not a sanctioned ingress point), and the mutex
    // poison idiom stays exempt.
    let report = lint_root(&fixture_root("tree")).expect("lint fixtures/tree");
    let f = "crates/sweep/src/shard.rs";
    assert_eq!(count(&report, f, "D006"), 1, "manifest-parse unwrap fires; poison idiom exempt");
    assert_eq!(suppressed_count(&report, f, "D006"), 1, "chain-verified expect is suppressed");
    assert_eq!(count(&report, f, "D003"), 1, "env-read shard knob fires D003");
}

#[test]
fn clean_tree_is_clean() {
    let report = lint_root(&fixture_root("clean")).expect("lint fixtures/clean");
    assert!(report.diagnostics.is_empty(), "unexpected findings: {:?}", report.diagnostics);
    assert!(report.suppressed.is_empty());
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn warnonly_tree_has_warnings_but_no_errors() {
    let report = lint_root(&fixture_root("warnonly")).expect("lint fixtures/warnonly");
    assert_eq!(report.errors(), 0);
    assert_eq!(report.warnings(), 1, "exactly the one D006 warning");
    assert_eq!(report.diagnostics[0].rule, "D006");
}
