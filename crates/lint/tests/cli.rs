//! CLI contract tests: exit codes, flag parsing, and JSON schema
//! stability, driven through the real binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_clamshell-lint"))
}

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name)
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("spawn clamshell-lint")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

#[test]
fn no_args_is_a_usage_error() {
    let out = run(&[]);
    assert_eq!(code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = run(&["--workspace", "--frobnicate"]);
    assert_eq!(code(&out), 2);
}

#[test]
fn bad_format_is_a_usage_error() {
    let out = run(&["--workspace", "--format", "yaml"]);
    assert_eq!(code(&out), 2);
}

#[test]
fn workspace_and_paths_are_mutually_exclusive() {
    let out = run(&["--workspace", "src/lib.rs"]);
    assert_eq!(code(&out), 2);
}

#[test]
fn help_exits_zero() {
    let out = run(&["--help"]);
    assert_eq!(code(&out), 0);
    assert!(String::from_utf8_lossy(&out.stdout).contains("clamshell-lint"));
}

#[test]
fn bad_tree_exits_one() {
    let root = fixture_root("tree");
    let out = run(&["--root", root.to_str().unwrap(), "--workspace"]);
    assert_eq!(code(&out), 1);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("D001"), "text report names the rule ids:\n{text}");
    assert!(text.contains("files scanned"), "text report ends with a summary line:\n{text}");
}

#[test]
fn clean_tree_exits_zero_even_with_deny_warnings() {
    let root = fixture_root("clean");
    let out = run(&["--root", root.to_str().unwrap(), "--workspace", "--deny-warnings"]);
    assert_eq!(code(&out), 0, "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn warnings_gate_only_under_deny_warnings() {
    let root = fixture_root("warnonly");
    let plain = run(&["--root", root.to_str().unwrap(), "--workspace"]);
    assert_eq!(code(&plain), 0, "warnings alone do not fail the run");
    let deny = run(&["--root", root.to_str().unwrap(), "--workspace", "--deny-warnings"]);
    assert_eq!(code(&deny), 1, "--deny-warnings promotes warnings to failures");
}

#[test]
fn single_path_mode_lints_just_that_file() {
    let root = fixture_root("tree");
    let out = bin()
        .args(["--root", root.to_str().unwrap(), "crates/core/src/d002.rs"])
        .output()
        .expect("spawn clamshell-lint");
    assert_eq!(code(&out), 1);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("D002"));
    assert!(!text.contains("D001"), "other fixture files are not scanned in path mode");
}

#[test]
fn json_schema_is_stable() {
    let root = fixture_root("tree");
    let out = run(&["--root", root.to_str().unwrap(), "--workspace", "--format", "json"]);
    assert_eq!(code(&out), 1);
    let json = String::from_utf8_lossy(&out.stdout);
    for key in [
        "\"version\": 1",
        "\"files_scanned\":",
        "\"diagnostics\": [",
        "\"suppressed\": [",
        "\"summary\":",
        "\"errors\":",
        "\"warnings\":",
        "\"rule\": \"D004\"",
        "\"severity\": \"error\"",
        "\"hint\":",
    ] {
        assert!(json.contains(key), "missing {key} in JSON output:\n{json}");
    }
    assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
}

#[test]
fn json_output_for_a_clean_tree_has_empty_arrays() {
    let root = fixture_root("clean");
    let out = run(&["--root", root.to_str().unwrap(), "--workspace", "--format", "json"]);
    assert_eq!(code(&out), 0);
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"diagnostics\": []"), "got:\n{json}");
    assert!(json.contains("\"errors\": 0"));
}
