//! Redundancy-based vote aggregation.

use serde::{Deserialize, Serialize};

/// One worker's answer for one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vote {
    /// Identifier of the voting worker (opaque here; `WorkerId.0` upstream).
    pub worker: u32,
    /// The label the worker chose.
    pub label: u32,
}

/// Plurality vote over labels. Ties break toward the label that reached
/// its final count *first* (stable for streaming use: the earliest-leading
/// answer wins), which also makes the result invariant to label value.
///
/// Returns `None` on an empty vote set.
pub fn majority_vote(votes: &[Vote]) -> Option<u32> {
    majority_vote_weighted(votes, |_| 1.0)
}

/// Weighted plurality vote; weights typically come from worker-quality
/// estimates ([`crate::em`]). Returns `None` on empty input or if all
/// weights are zero.
pub fn majority_vote_weighted<F: Fn(u32) -> f64>(votes: &[Vote], weight: F) -> Option<u32> {
    if votes.is_empty() {
        return None;
    }
    // label -> (total weight, first index at which it took its final value)
    let mut tally: Vec<(u32, f64, usize)> = Vec::new();
    for (i, v) in votes.iter().enumerate() {
        let w = weight(v.worker).max(0.0);
        match tally.iter_mut().find(|(l, _, _)| *l == v.label) {
            Some(entry) => {
                entry.1 += w;
                entry.2 = i;
            }
            None => tally.push((v.label, w, i)),
        }
    }
    tally
        .into_iter()
        .filter(|&(_, w, _)| w > 0.0)
        // Max weight; ties -> earliest final update (smaller index wins),
        // then smaller label, purely for determinism.
        .max_by(|a, b| a.1.total_cmp(&b.1).then(b.2.cmp(&a.2)).then(b.0.cmp(&a.0)))
        .map(|(l, _, _)| l)
}

/// How many *additional* answers a quality-controlled task still needs
/// before it is complete: `quorum − received`, saturating at zero.
/// This is the quantity straggler mitigation keys off when deciding how
/// many concurrent assignments a task may hold (§4.1).
pub fn remaining_votes(quorum: u32, received: usize) -> u32 {
    quorum.saturating_sub(received as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(worker: u32, label: u32) -> Vote {
        Vote { worker, label }
    }

    #[test]
    fn simple_majority() {
        assert_eq!(majority_vote(&[v(0, 1), v(1, 1), v(2, 0)]), Some(1));
        assert_eq!(majority_vote(&[v(0, 2)]), Some(2));
        assert_eq!(majority_vote(&[]), None);
    }

    #[test]
    fn majority_invariant_to_permutation() {
        let votes = [v(0, 1), v(1, 1), v(2, 0), v(3, 1), v(4, 0)];
        let mut perm = votes;
        perm.reverse();
        assert_eq!(majority_vote(&votes), majority_vote(&perm));
        assert_eq!(majority_vote(&votes), Some(1));
    }

    #[test]
    fn tie_breaks_toward_earlier_leader() {
        // 0 and 1 each get two votes; label 0 completed its tally first.
        assert_eq!(majority_vote(&[v(0, 0), v(1, 0), v(2, 1), v(3, 1)]), Some(0));
        assert_eq!(majority_vote(&[v(0, 1), v(1, 1), v(2, 0), v(3, 0)]), Some(1));
    }

    #[test]
    fn weighted_vote_respects_quality() {
        // One expert (weight 3) outvotes two noisy workers (weight 1).
        let votes = [v(0, 1), v(1, 0), v(2, 0)];
        let res = majority_vote_weighted(&votes, |w| if w == 0 { 3.0 } else { 1.0 });
        assert_eq!(res, Some(1));
    }

    #[test]
    fn zero_weights_are_ignored() {
        let votes = [v(0, 1), v(1, 0)];
        assert_eq!(majority_vote_weighted(&votes, |w| if w == 0 { 0.0 } else { 1.0 }), Some(0));
        assert_eq!(majority_vote_weighted(&votes, |_| 0.0), None);
    }

    #[test]
    fn remaining_votes_saturates() {
        assert_eq!(remaining_votes(3, 0), 3);
        assert_eq!(remaining_votes(3, 2), 1);
        assert_eq!(remaining_votes(3, 3), 0);
        assert_eq!(remaining_votes(3, 5), 0);
    }

    // ------------------------------------------------------------------
    // Edge cases: empty ballots and exact ties must behave predictably —
    // the runner's complete_task leans on this determinism.
    // ------------------------------------------------------------------

    #[test]
    fn empty_ballots_never_invent_labels() {
        assert_eq!(majority_vote(&[]), None);
        assert_eq!(majority_vote_weighted(&[], |_| 1.0), None);
        assert_eq!(majority_vote_weighted(&[], |_| 0.0), None);
    }

    #[test]
    fn all_singleton_tie_picks_the_earliest_vote() {
        // Every label has exactly one vote: the first ballot cast wins,
        // regardless of label values or worker ids.
        assert_eq!(majority_vote(&[v(9, 3), v(1, 0), v(2, 2)]), Some(3));
        assert_eq!(majority_vote(&[v(0, 0), v(1, 3), v(2, 2)]), Some(0));
    }

    #[test]
    fn exact_tie_is_deterministic_across_repeats() {
        // A 2-2 tie resolves by earliest-final-count, identically on
        // every evaluation (no hidden iteration-order dependence).
        let votes = [v(0, 1), v(1, 0), v(2, 0), v(3, 1)];
        let first = majority_vote(&votes);
        for _ in 0..100 {
            assert_eq!(majority_vote(&votes), first);
        }
        assert_eq!(first, Some(0), "label 0 reached its final count at index 2 < 3");
    }

    #[test]
    fn exact_tie_is_label_value_invariant() {
        // Swapping which label value the earlier-finishing side uses must
        // track the position, not the numeric value.
        assert_eq!(majority_vote(&[v(0, 7), v(1, 7), v(2, 1), v(3, 1)]), Some(7));
        assert_eq!(majority_vote(&[v(0, 1), v(1, 1), v(2, 7), v(3, 7)]), Some(1));
    }

    #[test]
    fn weighted_exact_tie_breaks_by_earliest_final_update() {
        // Equal total weight on both labels: index order decides, so the
        // outcome is stable under re-evaluation and weight permutation.
        let votes = [v(0, 4), v(1, 5)];
        assert_eq!(majority_vote_weighted(&votes, |_| 2.5), Some(4));
        let reversed = [v(1, 5), v(0, 4)];
        assert_eq!(majority_vote_weighted(&reversed, |_| 2.5), Some(5));
    }
}
