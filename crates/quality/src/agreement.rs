//! Inter-worker agreement.
//!
//! §4.2 ("Extensions"): pool maintenance "can be easily extended to
//! optimize for other criteria … For example, we could maintain a pool
//! using quality (estimated using, e.g., inter-worker agreement)". This
//! module provides that estimator: for each worker, the fraction of their
//! answers that agree with a co-worker's answer on the same item.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Accumulates (item, worker, label) observations and computes per-worker
/// agreement rates.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AgreementTracker {
    /// item -> list of (worker, label)
    by_item: BTreeMap<u32, Vec<(u32, u32)>>,
}

impl AgreementTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an answer.
    pub fn observe(&mut self, worker: u32, item: u32, label: u32) {
        self.by_item.entry(item).or_default().push((worker, label));
    }

    /// Per-worker agreement rate: over all pairs `(w, w')` co-labeling an
    /// item, the fraction where their labels match. Workers with no
    /// co-labeled items are absent from the result.
    pub fn agreement_rates(&self) -> BTreeMap<u32, f64> {
        let mut agree: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        for answers in self.by_item.values() {
            for (i, &(w1, l1)) in answers.iter().enumerate() {
                for &(w2, l2) in answers.iter().skip(i + 1) {
                    if w1 == w2 {
                        continue; // repeated answer by the same worker
                    }
                    let matched = (l1 == l2) as u64;
                    let e1 = agree.entry(w1).or_insert((0, 0));
                    e1.0 += matched;
                    e1.1 += 1;
                    let e2 = agree.entry(w2).or_insert((0, 0));
                    e2.0 += matched;
                    e2.1 += 1;
                }
            }
        }
        agree.into_iter().map(|(w, (m, t))| (w, m as f64 / t as f64)).collect()
    }

    /// Mean pairwise agreement across all workers (a pool-quality scalar).
    pub fn pool_agreement(&self) -> f64 {
        let rates = self.agreement_rates();
        if rates.is_empty() {
            return 0.0;
        }
        rates.values().sum::<f64>() / rates.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement() {
        let mut t = AgreementTracker::new();
        for item in 0..5 {
            t.observe(0, item, 1);
            t.observe(1, item, 1);
        }
        let rates = t.agreement_rates();
        assert_eq!(rates[&0], 1.0);
        assert_eq!(rates[&1], 1.0);
        assert_eq!(t.pool_agreement(), 1.0);
    }

    #[test]
    fn disagreeing_worker_scores_low() {
        let mut t = AgreementTracker::new();
        for item in 0..10 {
            t.observe(0, item, 0);
            t.observe(1, item, 0);
            t.observe(2, item, 1); // contrarian
        }
        let rates = t.agreement_rates();
        assert_eq!(rates[&2], 0.0);
        assert!((rates[&0] - 0.5).abs() < 1e-12); // agrees with 1, not 2
        assert!(rates[&0] > rates[&2]);
    }

    #[test]
    fn no_overlap_no_rate() {
        let mut t = AgreementTracker::new();
        t.observe(0, 0, 1);
        t.observe(1, 1, 1);
        assert!(t.agreement_rates().is_empty());
        assert_eq!(t.pool_agreement(), 0.0);
    }

    #[test]
    fn same_worker_pairs_ignored() {
        let mut t = AgreementTracker::new();
        t.observe(0, 0, 1);
        t.observe(0, 0, 0); // same worker answered twice
        assert!(t.agreement_rates().is_empty());
    }
}
