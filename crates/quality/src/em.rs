//! Dawid–Skene-style EM worker-quality estimation.
//!
//! A "one-coin" variant of Dawid & Skene (1979): each worker `w` is
//! modeled by a single accuracy `λ_w` (probability of answering
//! correctly, errors uniform over wrong labels). EM alternates:
//!
//! * **E-step** — posterior over each item's true class given current
//!   worker accuracies;
//! * **M-step** — re-estimate each worker's accuracy as the expected
//!   fraction of items they matched.
//!
//! This is the estimation family the paper's quality-control discussion
//! cites (Ipeirotis, Provost & Wang 2010; Karger, Oh & Shah 2011), and it
//! exactly matches the worker model of the paper's simulator (correct with
//! probability `λ_i`, else uniform wrong), so planted parameters are
//! recoverable — which the tests verify.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A (worker, item, label) observation matrix in sparse form.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DawidSkene {
    /// Observations: `(worker, item, label)`.
    obs: Vec<(u32, u32, u32)>,
    n_classes: u32,
}

/// EM hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmConfig {
    /// Maximum EM iterations.
    pub max_iters: u32,
    /// Stop when no item posterior changes by more than this.
    pub tol: f64,
    /// Beta-style smoothing pseudo-counts on worker accuracy.
    pub smoothing: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig { max_iters: 50, tol: 1e-6, smoothing: 1.0 }
    }
}

/// EM output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmResult {
    /// Consensus (MAP) label per item.
    pub labels: BTreeMap<u32, u32>,
    /// Estimated accuracy per worker.
    pub worker_accuracy: BTreeMap<u32, f64>,
    /// Iterations run.
    pub iterations: u32,
}

impl DawidSkene {
    /// New empty observation set over `n_classes` classes.
    pub fn new(n_classes: u32) -> Self {
        assert!(n_classes >= 2);
        DawidSkene { obs: Vec::new(), n_classes }
    }

    /// Record that `worker` labeled `item` as `label`.
    pub fn observe(&mut self, worker: u32, item: u32, label: u32) {
        assert!(label < self.n_classes, "label out of range");
        self.obs.push((worker, item, label));
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.obs.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.obs.is_empty()
    }

    /// Run EM and return consensus labels plus worker accuracies.
    pub fn run(&self, cfg: &EmConfig) -> EmResult {
        let k = self.n_classes as usize;
        let items: Vec<u32> = {
            let mut v: Vec<u32> = self.obs.iter().map(|&(_, i, _)| i).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let workers: Vec<u32> = {
            let mut v: Vec<u32> = self.obs.iter().map(|&(w, _, _)| w).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let item_index: BTreeMap<u32, usize> =
            items.iter().enumerate().map(|(i, &x)| (x, i)).collect();
        let worker_index: BTreeMap<u32, usize> =
            workers.iter().enumerate().map(|(i, &x)| (x, i)).collect();

        // Optimistic accuracy initialization (workers assumed decent):
        // starting the E-step from confident accuracies gives sharp item
        // posteriors and avoids the well-known soft fixed point that
        // vote-count initialization falls into when most workers are
        // barely better than chance.
        let mut post = vec![vec![1.0 / k as f64; k]; items.len()];
        let mut acc = vec![0.8f64; workers.len()];
        let mut iterations = 0;

        for it in 0..cfg.max_iters {
            iterations = it + 1;
            // E-step: item posteriors from worker accuracies.
            let mut delta: f64 = 0.0;
            let mut log_lik = vec![vec![0.0f64; k]; items.len()];
            for &(worker, item, label) in &self.obs {
                let wi = worker_index[&worker];
                let a = acc[wi];
                let wrong = (1.0 - a) / (k as f64 - 1.0);
                let ll = &mut log_lik[item_index[&item]];
                for (c, l) in ll.iter_mut().enumerate() {
                    *l += if c as u32 == label { a.ln() } else { wrong.ln() };
                }
            }
            for (p, ll) in post.iter_mut().zip(&log_lik) {
                let max = ll.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mut s = 0.0;
                let mut newp = vec![0.0; k];
                for (np, &l) in newp.iter_mut().zip(ll) {
                    *np = (l - max).exp();
                    s += *np;
                }
                for (np, old) in newp.iter_mut().zip(p.iter()) {
                    *np /= s;
                    delta = delta.max((*np - old).abs());
                }
                *p = newp;
            }

            // M-step: worker accuracy = expected match rate against the
            // posterior consensus. Note this is the *soft* update: when
            // most of the pool is near chance the posteriors stay soft and
            // the estimates compress toward the middle, but their ordering
            // is preserved — which is all the downstream consumers
            // (vote weighting, quality-based maintenance) rely on. The
            // hard-assignment variant calibrates better in easy regimes
            // but can self-amplify a wrong consensus, so we keep soft.
            let mut match_w = vec![cfg.smoothing; workers.len()];
            let mut total_w = vec![2.0 * cfg.smoothing; workers.len()];
            for &(worker, item, label) in &self.obs {
                let wi = worker_index[&worker];
                let p_match = post[item_index[&item]][label as usize];
                match_w[wi] += p_match;
                total_w[wi] += 1.0;
            }
            for (a, (m, t)) in acc.iter_mut().zip(match_w.iter().zip(&total_w)) {
                // Clamp into (1/k, 1) so log-likelihoods stay finite and a
                // worker is never treated as worse than adversarial.
                *a = (m / t).clamp(1.0 / k as f64 + 1e-6, 1.0 - 1e-6);
            }

            if it > 0 && delta < cfg.tol {
                break;
            }
        }

        let labels = items
            .iter()
            .map(|&item| {
                let p = &post[item_index[&item]];
                let best = p
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(c, _)| c as u32)
                    .unwrap_or(0);
                (item, best)
            })
            .collect();
        let worker_accuracy = workers.iter().zip(&acc).map(|(&w, &a)| (w, a)).collect();
        EmResult { labels, worker_accuracy, iterations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clamshell_sim::rng::Rng;

    /// Plant a ground truth and simulate workers with known accuracies.
    fn planted(n_items: u32, n_classes: u32, accs: &[f64], seed: u64) -> (DawidSkene, Vec<u32>) {
        let mut rng = Rng::new(seed);
        let truth: Vec<u32> =
            (0..n_items).map(|_| rng.next_below(n_classes as u64) as u32).collect();
        let mut ds = DawidSkene::new(n_classes);
        for (w, &a) in accs.iter().enumerate() {
            for item in 0..n_items {
                let label = if rng.bernoulli(a) {
                    truth[item as usize]
                } else {
                    let wrong = rng.next_below(n_classes as u64 - 1) as u32;
                    if wrong >= truth[item as usize] {
                        wrong + 1
                    } else {
                        wrong
                    }
                };
                ds.observe(w as u32, item, label);
            }
        }
        (ds, truth)
    }

    #[test]
    fn recovers_planted_labels() {
        let (ds, truth) = planted(150, 3, &[0.9, 0.85, 0.8, 0.75, 0.7], 1);
        let res = ds.run(&EmConfig::default());
        let correct =
            truth.iter().enumerate().filter(|(i, &t)| res.labels[&(*i as u32)] == t).count();
        let acc = correct as f64 / truth.len() as f64;
        assert!(acc > 0.95, "consensus accuracy={acc}");
    }

    #[test]
    fn recovers_planted_worker_accuracies() {
        let planted_accs = [0.95, 0.8, 0.65];
        let (ds, _) = planted(400, 4, &planted_accs, 2);
        let res = ds.run(&EmConfig::default());
        for (w, &a) in planted_accs.iter().enumerate() {
            let est = res.worker_accuracy[&(w as u32)];
            assert!((est - a).abs() < 0.06, "worker {w}: est={est} planted={a}");
        }
        // Ordering preserved.
        assert!(res.worker_accuracy[&0] > res.worker_accuracy[&1]);
        assert!(res.worker_accuracy[&1] > res.worker_accuracy[&2]);
    }

    #[test]
    fn em_beats_majority_with_one_expert() {
        // One expert + four coin-flippers: majority vote is noisy, EM
        // should learn to trust the expert.
        let (ds, truth) = planted(300, 2, &[0.97, 0.55, 0.55, 0.55, 0.55], 3);
        let res = ds.run(&EmConfig::default());
        let em_correct =
            truth.iter().enumerate().filter(|(i, &t)| res.labels[&(*i as u32)] == t).count() as f64
                / truth.len() as f64;
        // Plain (unweighted) majority over the same votes, for comparison.
        let mut by_item: BTreeMap<u32, Vec<crate::voting::Vote>> = BTreeMap::new();
        // Re-derive votes from the observation set.
        for &(w, i, l) in &ds.obs {
            by_item.entry(i).or_default().push(crate::voting::Vote { worker: w, label: l });
        }
        let mv_correct = truth
            .iter()
            .enumerate()
            .filter(|(i, &t)| crate::voting::majority_vote(&by_item[&(*i as u32)]) == Some(t))
            .count() as f64
            / truth.len() as f64;
        assert!(em_correct > 0.85, "em accuracy={em_correct}");
        assert!(
            em_correct >= mv_correct - 0.02,
            "EM ({em_correct}) should not lose to majority ({mv_correct})"
        );
        // Soft EM compresses the absolute estimates in this near-chance
        // regime, but must still rank the expert clearly first.
        for w in 1..=4u32 {
            assert!(
                res.worker_accuracy[&0] > res.worker_accuracy[&w] + 0.05,
                "{:?}",
                res.worker_accuracy
            );
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        let ds = DawidSkene::new(2);
        assert!(ds.is_empty());
        let res = ds.run(&EmConfig::default());
        assert!(res.labels.is_empty());
        assert!(res.worker_accuracy.is_empty());
    }

    #[test]
    fn converges_quickly_on_unanimous_data() {
        let mut ds = DawidSkene::new(2);
        for item in 0..20 {
            for w in 0..3 {
                ds.observe(w, item, 1);
            }
        }
        let res = ds.run(&EmConfig::default());
        assert!(res.iterations < 10, "iterations={}", res.iterations);
        assert!(res.labels.values().all(|&l| l == 1));
    }

    #[test]
    #[should_panic]
    fn observe_rejects_out_of_range() {
        let mut ds = DawidSkene::new(2);
        ds.observe(0, 0, 5);
    }

    // ------------------------------------------------------------------
    // Degenerate inputs: EM must stay finite and deterministic when the
    // observation matrix carries no disagreement signal at all.
    // ------------------------------------------------------------------

    #[test]
    fn degenerate_all_identical_answers_is_stable() {
        // Every worker gives the same label to every item: the confusion
        // signal is rank-one, a classic EM degeneracy. Consensus must be
        // that label, accuracies finite and clamped, and the whole result
        // identical on every run (deterministic tie-breaking, no NaNs).
        let mut ds = DawidSkene::new(3);
        for item in 0..12 {
            for w in 0..4 {
                ds.observe(w, item, 2);
            }
        }
        let a = ds.run(&EmConfig::default());
        let b = ds.run(&EmConfig::default());
        assert!(a.labels.values().all(|&l| l == 2));
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.iterations, b.iterations);
        for (&w, &acc) in &a.worker_accuracy {
            assert!(acc.is_finite() && (0.0..=1.0).contains(&acc), "worker {w}: {acc}");
            assert_eq!(acc, b.worker_accuracy[&w], "accuracy must be reproducible");
        }
    }

    #[test]
    fn single_worker_single_item_converges() {
        let mut ds = DawidSkene::new(2);
        ds.observe(0, 0, 1);
        let res = ds.run(&EmConfig::default());
        assert_eq!(res.labels[&0], 1);
        assert!(res.worker_accuracy[&0].is_finite());
        assert!(res.iterations <= EmConfig::default().max_iters);
    }

    #[test]
    fn perfectly_split_votes_break_ties_deterministically() {
        // Two workers, always contradicting each other: item posteriors
        // are exactly symmetric. The MAP label must still be chosen the
        // same way every run (argmax takes the lowest index on ties).
        let mut ds = DawidSkene::new(2);
        for item in 0..10 {
            ds.observe(0, item, 0);
            ds.observe(1, item, 1);
        }
        let a = ds.run(&EmConfig::default());
        let b = ds.run(&EmConfig::default());
        assert_eq!(a.labels, b.labels);
        // Symmetric evidence: both accuracies equal and finite.
        let w0 = a.worker_accuracy[&0];
        let w1 = a.worker_accuracy[&1];
        assert!(w0.is_finite() && w1.is_finite());
        assert!((w0 - w1).abs() < 1e-9, "symmetric workers must tie: {w0} vs {w1}");
    }
}
