//! # clamshell-quality
//!
//! Quality control for crowd labels.
//!
//! CLAMShell's latency techniques are explicitly "compatible with standard
//! quality control algorithms such as redundancy-based voting schemes and
//! worker quality estimation algorithms" (§1), and §4.1 describes how
//! straggler mitigation decouples from redundant voting. This crate
//! supplies those standard algorithms:
//!
//! * [`voting`] — first-answer and majority-vote aggregation with vote
//!   quorums (the `v`-answer tasks of §4.1 "Working with Quality Control").
//! * [`em`] — Dawid–Skene-style expectation–maximization estimating worker
//!   accuracies and consensus labels jointly (the family of [Ipeirotis et
//!   al. 2010] / [Karger et al. 2011] cited by the paper).
//! * [`agreement`] — inter-worker agreement scores (the quality signal the
//!   paper suggests for quality-based pool maintenance, §4.2 "Extensions",
//!   citing Callison-Burch 2009).

#![warn(missing_docs)]

pub mod agreement;
pub mod confusion;
pub mod em;
pub mod voting;

pub use confusion::{ConfusionEm, ConfusionResult};
pub use em::{DawidSkene, EmConfig, EmResult};
pub use voting::{majority_vote, majority_vote_weighted, Vote};
