//! Full Dawid–Skene with per-worker confusion matrices.
//!
//! The one-coin model of [`crate::em`] assumes symmetric errors. Real
//! workers confuse specific class pairs (e.g. "4" vs "9" in digit
//! labeling), which the original Dawid & Skene (1979) formulation
//! captures with a per-worker confusion matrix `π_w[true][answered]`.
//! This module implements that full model; it is the natural upgrade path
//! for CLAMShell deployments whose tasks have structured error patterns.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Observation store for confusion-matrix EM.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConfusionEm {
    obs: Vec<(u32, u32, u32)>,
    n_classes: u32,
}

/// Result of confusion-matrix EM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfusionResult {
    /// MAP consensus label per item.
    pub labels: BTreeMap<u32, u32>,
    /// Per-worker confusion matrix, row-major `k × k`:
    /// `confusion[w][true * k + answered]`.
    pub confusion: BTreeMap<u32, Vec<f64>>,
    /// Per-worker scalar accuracy (trace of the confusion matrix weighted
    /// by class priors).
    pub worker_accuracy: BTreeMap<u32, f64>,
    /// Estimated class priors.
    pub priors: Vec<f64>,
    /// Iterations run.
    pub iterations: u32,
}

impl ConfusionEm {
    /// New store over `n_classes` classes.
    pub fn new(n_classes: u32) -> Self {
        assert!(n_classes >= 2);
        ConfusionEm { obs: Vec::new(), n_classes }
    }

    /// Record that `worker` labeled `item` as `label`.
    pub fn observe(&mut self, worker: u32, item: u32, label: u32) {
        assert!(label < self.n_classes, "label out of range");
        self.obs.push((worker, item, label));
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.obs.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.obs.is_empty()
    }

    /// Run EM for at most `max_iters` with smoothing `alpha`.
    ///
    /// Degenerate inputs (e.g. every observation carrying the same
    /// label) keep the estimates finite: `alpha` smoothing prevents
    /// zero rows in the confusion matrices, and ties in the MAP argmax
    /// resolve to the lowest class index deterministically (covered by
    /// the degenerate-input tests below).
    pub fn run(&self, max_iters: u32, alpha: f64, tol: f64) -> ConfusionResult {
        let k = self.n_classes as usize;
        let items: Vec<u32> = {
            let mut v: Vec<u32> = self.obs.iter().map(|&(_, i, _)| i).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let workers: Vec<u32> = {
            let mut v: Vec<u32> = self.obs.iter().map(|&(w, _, _)| w).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let item_index: BTreeMap<u32, usize> =
            items.iter().enumerate().map(|(i, &x)| (x, i)).collect();
        let worker_index: BTreeMap<u32, usize> =
            workers.iter().enumerate().map(|(i, &x)| (x, i)).collect();

        // Initialize confusion matrices as mostly-diagonal (workers are
        // assumed decent), priors uniform.
        let diag0 = 0.8;
        let off0 = (1.0 - diag0) / (k as f64 - 1.0);
        let mut confusion: Vec<Vec<f64>> = workers
            .iter()
            .map(|_| (0..k * k).map(|i| if i % (k + 1) == 0 { diag0 } else { off0 }).collect())
            .collect();
        let mut priors = vec![1.0 / k as f64; k];
        let mut post = vec![vec![1.0 / k as f64; k]; items.len()];
        let mut iterations = 0;

        for it in 0..max_iters {
            iterations = it + 1;
            // E-step.
            let mut delta: f64 = 0.0;
            let mut log_lik: Vec<Vec<f64>> = (0..items.len())
                .map(|_| priors.iter().map(|p| p.max(1e-12).ln()).collect())
                .collect();
            for &(worker, item, label) in &self.obs {
                let pi = &confusion[worker_index[&worker]];
                let ll = &mut log_lik[item_index[&item]];
                for (c, l) in ll.iter_mut().enumerate() {
                    *l += pi[c * k + label as usize].max(1e-12).ln();
                }
            }
            for (p, ll) in post.iter_mut().zip(&log_lik) {
                let max = ll.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mut s = 0.0;
                let mut newp = vec![0.0; k];
                for (np, &l) in newp.iter_mut().zip(ll) {
                    *np = (l - max).exp();
                    s += *np;
                }
                for (np, old) in newp.iter_mut().zip(p.iter()) {
                    *np /= s;
                    delta = delta.max((*np - old).abs());
                }
                *p = newp;
            }

            // M-step: priors and confusion rows from expected counts.
            let mut prior_counts = vec![alpha; k];
            for p in &post {
                for (pc, &pi) in prior_counts.iter_mut().zip(p) {
                    *pc += pi;
                }
            }
            let prior_total: f64 = prior_counts.iter().sum();
            for (pr, pc) in priors.iter_mut().zip(&prior_counts) {
                *pr = pc / prior_total;
            }

            let mut counts: Vec<Vec<f64>> = workers.iter().map(|_| vec![alpha; k * k]).collect();
            for &(worker, item, label) in &self.obs {
                let p = &post[item_index[&item]];
                let cw = &mut counts[worker_index[&worker]];
                for (c, &pc) in p.iter().enumerate() {
                    cw[c * k + label as usize] += pc;
                }
            }
            for (pi, cw) in confusion.iter_mut().zip(&counts) {
                for c in 0..k {
                    let row_sum: f64 = cw[c * k..(c + 1) * k].iter().sum();
                    for a in 0..k {
                        pi[c * k + a] = cw[c * k + a] / row_sum;
                    }
                }
            }

            if it > 0 && delta < tol {
                break;
            }
        }

        let labels: BTreeMap<u32, u32> = items
            .iter()
            .map(|&item| {
                let p = &post[item_index[&item]];
                let best = p
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(c, _)| c as u32)
                    .unwrap_or(0);
                (item, best)
            })
            .collect();
        let worker_accuracy: BTreeMap<u32, f64> = workers
            .iter()
            .map(|&w| {
                let pi = &confusion[worker_index[&w]];
                let acc: f64 = (0..k).map(|c| priors[c] * pi[c * k + c]).sum::<f64>();
                (w, acc)
            })
            .collect();
        let confusion_map =
            workers.iter().map(|&w| (w, confusion[worker_index[&w]].clone())).collect();
        ConfusionResult { labels, confusion: confusion_map, worker_accuracy, priors, iterations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clamshell_sim::rng::Rng;

    /// Workers with a planted *asymmetric* confusion: they answer class 0
    /// correctly but confuse 1 → 2 often.
    fn planted_asymmetric(n_items: u32, seed: u64) -> (ConfusionEm, Vec<u32>) {
        let mut rng = Rng::new(seed);
        let truth: Vec<u32> = (0..n_items).map(|_| rng.next_below(3) as u32).collect();
        let mut em = ConfusionEm::new(3);
        for w in 0..5u32 {
            for (i, &t) in truth.iter().enumerate() {
                let label = match t {
                    0 => {
                        if rng.bernoulli(0.95) {
                            0
                        } else {
                            1
                        }
                    }
                    1 => {
                        // Confuses 1 with 2 forty percent of the time.
                        if rng.bernoulli(0.6) {
                            1
                        } else {
                            2
                        }
                    }
                    _ => {
                        if rng.bernoulli(0.9) {
                            2
                        } else {
                            0
                        }
                    }
                };
                em.observe(w, i as u32, label);
            }
        }
        (em, truth)
    }

    #[test]
    fn recovers_labels_under_asymmetric_noise() {
        let (em, truth) = planted_asymmetric(240, 1);
        let res = em.run(60, 0.5, 1e-6);
        let correct =
            truth.iter().enumerate().filter(|(i, &t)| res.labels[&(*i as u32)] == t).count() as f64
                / truth.len() as f64;
        assert!(correct > 0.85, "consensus accuracy={correct}");
    }

    #[test]
    fn recovers_confusion_structure() {
        let (em, _) = planted_asymmetric(400, 2);
        let res = em.run(60, 0.5, 1e-6);
        let k = 3usize;
        for (_, pi) in res.confusion.iter() {
            // Rows are stochastic.
            for c in 0..k {
                let row: f64 = pi[c * k..(c + 1) * k].iter().sum();
                assert!((row - 1.0).abs() < 1e-9);
            }
            // The planted 1→2 confusion should be visible: π[1][2]
            // clearly exceeds π[0][2].
            assert!(
                pi[k + 2] > pi[2] + 0.1,
                "expected 1->2 confusion: pi[1][2]={} pi[0][2]={}",
                pi[k + 2],
                pi[2]
            );
        }
    }

    #[test]
    fn priors_roughly_uniform_for_balanced_truth() {
        let (em, _) = planted_asymmetric(600, 3);
        let res = em.run(60, 0.5, 1e-6);
        for &p in &res.priors {
            assert!((0.2..0.5).contains(&p), "priors={:?}", res.priors);
        }
        assert!((res.priors.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let em = ConfusionEm::new(4);
        assert!(em.is_empty());
        let res = em.run(10, 1.0, 1e-6);
        assert!(res.labels.is_empty());
        assert!(res.confusion.is_empty());
    }

    #[test]
    fn agrees_with_one_coin_on_symmetric_noise() {
        // Symmetric workers: both models should produce the same
        // consensus.
        let mut rng = Rng::new(4);
        let truth: Vec<u32> = (0..200).map(|_| rng.next_below(2) as u32).collect();
        let mut full = ConfusionEm::new(2);
        let mut coin = crate::em::DawidSkene::new(2);
        for w in 0..4u32 {
            for (i, &t) in truth.iter().enumerate() {
                let label = if rng.bernoulli(0.85) { t } else { 1 - t };
                full.observe(w, i as u32, label);
                coin.observe(w, i as u32, label);
            }
        }
        let rf = full.run(50, 1.0, 1e-6);
        let rc = coin.run(&crate::em::EmConfig::default());
        let agree = rf.labels.iter().filter(|(i, &l)| rc.labels[i] == l).count() as f64
            / rf.labels.len() as f64;
        assert!(agree > 0.97, "agreement={agree}");
    }

    #[test]
    fn degenerate_identical_answers_keep_confusion_finite() {
        // All workers answer class 1 on every item: the empirical
        // confusion matrix is a single column. Smoothing must keep every
        // matrix entry a finite probability, priors a valid distribution,
        // and the output bit-reproducible across runs.
        let mut em = ConfusionEm::new(3);
        for item in 0..15 {
            for w in 0..3 {
                em.observe(w, item, 1);
            }
        }
        let a = em.run(50, 1.0, 1e-6);
        let b = em.run(50, 1.0, 1e-6);
        assert!(a.labels.values().all(|&l| l == 1));
        assert_eq!(a.labels, b.labels);
        for (w, m) in &a.confusion {
            assert!(m.iter().all(|p| p.is_finite() && (0.0..=1.0).contains(p)), "worker {w}");
            // Every true-class row remains a probability distribution.
            for row in m.chunks(3) {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "row sums to {s}");
            }
            assert_eq!(m, &b.confusion[w], "confusion must be reproducible");
        }
        let prior_sum: f64 = a.priors.iter().sum();
        assert!((prior_sum - 1.0).abs() < 1e-9);
        assert!(a.priors[1] > a.priors[0], "mass concentrates on the answered class");
    }
}
