//! The classifier abstraction shared by learners and selection strategies.

use crate::linalg::{argmax, Matrix};
use serde::{Deserialize, Serialize};

/// One training example: a row of the feature matrix, its (crowd-provided)
/// label, and a weight.
///
/// Hybrid learning weights points by the active-to-passive ratio `k/p`
/// (§5.1 "Model Retraining"), so weights are first-class here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Example {
    /// Row index into the feature matrix.
    pub row: usize,
    /// Class label in `0..n_classes`.
    pub label: u32,
    /// Non-negative sample weight.
    pub weight: f64,
}

impl Example {
    /// Unit-weight example.
    pub fn new(row: usize, label: u32) -> Self {
        Example { row, label, weight: 1.0 }
    }

    /// Weighted example.
    pub fn weighted(row: usize, label: u32, weight: f64) -> Self {
        Example { row, label, weight }
    }
}

/// Hyper-parameters for the SGD learners.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Initial learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Number of passes over the training set.
    pub epochs: u32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Per-epoch multiplicative learning-rate decay.
    pub lr_decay: f64,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            learning_rate: 0.1,
            l2: 1e-4,
            epochs: 30,
            batch_size: 32,
            lr_decay: 0.97,
            seed: 0,
        }
    }
}

/// A probabilistic classifier trainable on weighted examples.
///
/// `fit` retrains from scratch on the given examples: CLAMShell retrains
/// on *all* previously observed labels after each batch (§5.1), so
/// incremental updates are unnecessary and from-scratch keeps learners
/// order-independent.
pub trait Classifier {
    /// Train on `examples`, whose `row` fields index into `x`.
    fn fit(&mut self, x: &Matrix, examples: &[Example]);

    /// Class-probability vector for a feature row (length `n_classes`).
    fn predict_proba(&self, features: &[f64]) -> Vec<f64>;

    /// Number of classes.
    fn n_classes(&self) -> u32;

    /// Hard prediction: argmax of `predict_proba`.
    fn predict(&self, features: &[f64]) -> u32 {
        argmax(&self.predict_proba(features)) as u32
    }

    /// Whether the model has been fit at least once with a non-empty
    /// training set.
    fn is_fit(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_constructors() {
        let e = Example::new(3, 1);
        assert_eq!(e.weight, 1.0);
        let w = Example::weighted(3, 1, 0.25);
        assert_eq!(w.weight, 0.25);
    }

    #[test]
    fn sgd_defaults_sane() {
        let c = SgdConfig::default();
        assert!(c.learning_rate > 0.0 && c.epochs > 0 && c.batch_size > 0);
        assert!((0.0..=1.0).contains(&c.lr_decay));
    }
}
