//! # clamshell-learn
//!
//! The machine-learning substrate for the CLAMShell reproduction.
//!
//! The paper trains models on crowd labels to impute the rest of a dataset
//! (§5): *passive* learning trains on uniformly sampled points, *active*
//! learning picks points by uncertainty sampling, and CLAMShell's *hybrid*
//! learner splits the worker pool between both. The original implementation
//! sits on scikit-learn (§6.1); Rust has no equivalent on the offline
//! allow-list, so this crate implements everything needed from scratch:
//!
//! * [`linalg`] — minimal dense matrix/vector kernels.
//! * [`model`] — the [`model::Classifier`] trait (probabilistic,
//!   weight-aware) shared by all learners and the selection strategies.
//! * [`logistic`] — binary logistic regression via mini-batch SGD + L2.
//! * [`softmax`] — multinomial logistic regression (the 10-class digits
//!   task).
//! * [`sampling`] — uncertainty measures and the candidate-subsample
//!   point-selection of §5.3 ("rather than consider all unlabeled points …
//!   we consider only a uniform random sample").
//! * [`eval`] — accuracy, train/test splits, learning curves.
//! * [`datasets`] — generators standing in for the paper's data: Guyon-style
//!   `make_classification` (the same algorithm scikit-learn adapts, used
//!   for Figure 15's hardness sweep), an MNIST-like `digits` task, and a
//!   CIFAR-like `objects` (birds vs airplanes) task.

#![warn(missing_docs)]

pub mod datasets;
pub mod ensemble;
pub mod eval;
pub mod linalg;
pub mod logistic;
pub mod model;
pub mod sampling;
pub mod softmax;

pub use datasets::Dataset;
pub use linalg::Matrix;
pub use logistic::LogisticRegression;
pub use model::{Classifier, Example, SgdConfig};
pub use softmax::SoftmaxRegression;
