//! Point selection: uncertainty sampling and random sampling.
//!
//! §5.3 of the paper: "rather than consider all unlabeled points for
//! selection in the next batch, we consider only a uniform random sample
//! of the points… the point selection time is linear in the sample size,
//! not the size of the entire unlabeled dataset."
//! [`select_uncertain`] implements exactly that — score a bounded
//! candidate subsample with the current model and take the top-`k`.

use crate::linalg::Matrix;
use crate::model::Classifier;
use clamshell_sim::rng::Rng;
use serde::{Deserialize, Serialize};

/// How a model's predictive distribution is turned into an uncertainty
/// score (higher = more uncertain = more valuable to label).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Uncertainty {
    /// `1 − max_c p(c)` — the paper's "uncertainty sampling" default.
    LeastConfidence,
    /// Negative margin between the two most probable classes.
    Margin,
    /// Shannon entropy of the predictive distribution.
    Entropy,
}

impl Uncertainty {
    /// Score a probability vector.
    pub fn score(self, probs: &[f64]) -> f64 {
        match self {
            Uncertainty::LeastConfidence => {
                1.0 - probs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            }
            Uncertainty::Margin => {
                let (mut top, mut second) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
                for &p in probs {
                    if p > top {
                        second = top;
                        top = p;
                    } else if p > second {
                        second = p;
                    }
                }
                -(top - second)
            }
            Uncertainty::Entropy => probs.iter().filter(|&&p| p > 0.0).map(|&p| -p * p.ln()).sum(),
        }
    }
}

/// Select up to `k` points for active labeling: draw a uniform candidate
/// subsample of size `sample_size` from `unlabeled`, score each with the
/// model, and return the top-`k` most uncertain (most uncertain first).
///
/// If the model is not yet fit, falls back to a uniform random pick — at
/// bootstrap there is no signal to exploit, which is also what the
/// paper's implementation does for its first batch.
pub fn select_uncertain<C: Classifier + ?Sized>(
    model: &C,
    x: &Matrix,
    unlabeled: &[usize],
    k: usize,
    sample_size: usize,
    measure: Uncertainty,
    rng: &mut Rng,
) -> Vec<usize> {
    let k = k.min(unlabeled.len());
    if k == 0 {
        return Vec::new();
    }
    if !model.is_fit() {
        return select_random(unlabeled, k, rng);
    }
    // Uniform candidate subsample (§5.3).
    let cand: Vec<usize> = if unlabeled.len() <= sample_size {
        unlabeled.to_vec()
    } else {
        rng.sample_indices(unlabeled.len(), sample_size).into_iter().map(|i| unlabeled[i]).collect()
    };
    let mut scored: Vec<(f64, usize)> = cand
        .into_iter()
        .map(|row| (measure.score(&model.predict_proba(x.row(row))), row))
        .collect();
    // Highest uncertainty first; tie-break on row id for determinism.
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.truncate(k);
    scored.into_iter().map(|(_, row)| row).collect()
}

/// Uniformly sample `k` distinct points from `unlabeled` (passive
/// learning's selection).
pub fn select_random(unlabeled: &[usize], k: usize, rng: &mut Rng) -> Vec<usize> {
    rng.sample_indices(unlabeled.len(), k).into_iter().map(|i| unlabeled[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::LogisticRegression;
    use crate::model::{Example, SgdConfig};

    #[test]
    fn least_confidence_scores() {
        let u = Uncertainty::LeastConfidence;
        assert!((u.score(&[0.5, 0.5]) - 0.5).abs() < 1e-12);
        assert!((u.score(&[0.9, 0.1]) - 0.1).abs() < 1e-12);
        assert!(u.score(&[0.5, 0.5]) > u.score(&[0.8, 0.2]));
    }

    #[test]
    fn margin_prefers_close_races() {
        let u = Uncertainty::Margin;
        assert!(u.score(&[0.45, 0.55]) > u.score(&[0.1, 0.9]));
        // Works for multiclass too: top-two margin.
        assert!(u.score(&[0.4, 0.39, 0.21]) > u.score(&[0.6, 0.3, 0.1]));
    }

    #[test]
    fn entropy_maximal_at_uniform() {
        let u = Uncertainty::Entropy;
        assert!(u.score(&[0.25; 4]) > u.score(&[0.7, 0.1, 0.1, 0.1]));
        assert_eq!(u.score(&[1.0, 0.0]), 0.0);
    }

    fn fitted_model() -> (LogisticRegression, Matrix) {
        // 1-D data: class 0 at -2, class 1 at +2; boundary at 0.
        let mut x = Matrix::zeros(0, 0);
        let mut ex = Vec::new();
        for i in 0..40 {
            let label = (i % 2) as u32;
            x.push_row(&[if label == 0 { -2.0 } else { 2.0 }]);
            ex.push(Example::new(i, label));
        }
        // Unlabeled points at varying distance from the boundary.
        for v in [-3.0, -0.05, 0.1, 2.5, 0.02, -1.5] {
            x.push_row(&[v]);
        }
        let mut m = LogisticRegression::new(SgdConfig::default());
        m.fit(&x, &ex);
        (m, x)
    }

    #[test]
    fn uncertain_selection_picks_boundary_points() {
        let (m, x) = fitted_model();
        let unlabeled = vec![40, 41, 42, 43, 44, 45];
        let mut rng = Rng::new(1);
        let picked =
            select_uncertain(&m, &x, &unlabeled, 3, 100, Uncertainty::LeastConfidence, &mut rng);
        assert_eq!(picked.len(), 3);
        // The three nearest-to-boundary rows are 41 (-0.05), 44 (0.02),
        // 42 (0.1).
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![41, 42, 44], "picked={picked:?}");
    }

    #[test]
    fn unfit_model_falls_back_to_random() {
        let m = LogisticRegression::new(SgdConfig::default());
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let unlabeled = vec![0, 1, 2];
        let mut rng = Rng::new(2);
        let picked =
            select_uncertain(&m, &x, &unlabeled, 2, 10, Uncertainty::LeastConfidence, &mut rng);
        assert_eq!(picked.len(), 2);
        assert!(picked.iter().all(|p| unlabeled.contains(p)));
    }

    #[test]
    fn selection_respects_k_and_pool() {
        let (m, x) = fitted_model();
        let mut rng = Rng::new(3);
        assert!(select_uncertain(&m, &x, &[], 5, 10, Uncertainty::Margin, &mut rng).is_empty());
        let picked = select_uncertain(&m, &x, &[40, 41], 5, 10, Uncertainty::Margin, &mut rng);
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn random_selection_distinct() {
        let mut rng = Rng::new(4);
        let unlabeled: Vec<usize> = (100..200).collect();
        let s = select_random(&unlabeled, 20, &mut rng);
        assert_eq!(s.len(), 20);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 20);
        assert!(s.iter().all(|&i| (100..200).contains(&i)));
    }

    #[test]
    fn candidate_subsampling_bounds_work() {
        // With sample_size=2 only 2 candidates are scored, so the result
        // is a subset of the unlabeled pool of size ≤ 2.
        let (m, x) = fitted_model();
        let unlabeled = vec![40, 41, 42, 43, 44, 45];
        let mut rng = Rng::new(5);
        let picked =
            select_uncertain(&m, &x, &unlabeled, 6, 2, Uncertainty::LeastConfidence, &mut rng);
        assert_eq!(picked.len(), 2);
    }
}
