//! Ensembles over the base learners — the paper's "future directions"
//! extension (§7): "hybrid learning simply trains a single model on the
//! points labeled by active and passive learners. We would like to
//! investigate whether better models can be trained by keeping the points
//! separate and using more sophisticated machine learning techniques such
//! as model averaging or ensembling."
//!
//! Two shapes are provided:
//!
//! * [`ModelAverage`] — keep the actively- and passively-labeled points
//!   separate, train one model on each, and average their predictive
//!   distributions with a tunable blend.
//! * [`BaggedEnsemble`] — bootstrap-resample the pooled training set into
//!   `k` members and average their probabilities (plain bagging).

use crate::linalg::Matrix;
use crate::logistic::LogisticRegression;
use crate::model::{Classifier, Example, SgdConfig};
use crate::softmax::SoftmaxRegression;
use clamshell_sim::rng::Rng;

fn fresh(n_classes: u32, sgd: SgdConfig) -> Box<dyn Classifier> {
    if n_classes == 2 {
        Box::new(LogisticRegression::new(sgd))
    } else {
        Box::new(SoftmaxRegression::new(n_classes, sgd))
    }
}

/// Average of an "active" model and a "passive" model, each trained on
/// its own split of the labels (§7's model-averaging suggestion).
pub struct ModelAverage {
    n_classes: u32,
    sgd: SgdConfig,
    /// Weight of the active model's probabilities in `[0, 1]`.
    pub active_weight: f64,
    active: Box<dyn Classifier>,
    passive: Box<dyn Classifier>,
}

impl ModelAverage {
    /// Build an untrained averaged pair.
    pub fn new(n_classes: u32, sgd: SgdConfig, active_weight: f64) -> Self {
        assert!((0.0..=1.0).contains(&active_weight));
        ModelAverage {
            n_classes,
            sgd,
            active_weight,
            active: fresh(n_classes, sgd),
            passive: fresh(n_classes, sgd),
        }
    }

    /// Train from the two label pools kept separate.
    pub fn fit_split(&mut self, x: &Matrix, active: &[Example], passive: &[Example]) {
        self.active = fresh(self.n_classes, self.sgd);
        self.passive = fresh(self.n_classes, self.sgd);
        self.active.fit(x, active);
        self.passive.fit(x, passive);
    }
}

impl Classifier for ModelAverage {
    /// Fitting on a pooled set trains both members identically; prefer
    /// [`ModelAverage::fit_split`].
    fn fit(&mut self, x: &Matrix, examples: &[Example]) {
        self.fit_split(x, examples, examples);
    }

    fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        match (self.active.is_fit(), self.passive.is_fit()) {
            (true, false) => self.active.predict_proba(features),
            (false, true) => self.passive.predict_proba(features),
            _ => {
                let a = self.active.predict_proba(features);
                let p = self.passive.predict_proba(features);
                let w = self.active_weight;
                a.iter().zip(&p).map(|(ai, pi)| w * ai + (1.0 - w) * pi).collect()
            }
        }
    }

    fn n_classes(&self) -> u32 {
        self.n_classes
    }

    fn is_fit(&self) -> bool {
        self.active.is_fit() || self.passive.is_fit()
    }
}

/// Bagging: `k` members trained on bootstrap resamples, probabilities
/// averaged.
pub struct BaggedEnsemble {
    n_classes: u32,
    sgd: SgdConfig,
    k: usize,
    seed: u64,
    members: Vec<Box<dyn Classifier>>,
}

impl BaggedEnsemble {
    /// Build an untrained bag of `k` members.
    pub fn new(n_classes: u32, sgd: SgdConfig, k: usize, seed: u64) -> Self {
        assert!(k >= 1, "need at least one member");
        BaggedEnsemble { n_classes, sgd, k, seed, members: Vec::new() }
    }

    /// Number of trained members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the bag is untrained.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl Classifier for BaggedEnsemble {
    fn fit(&mut self, x: &Matrix, examples: &[Example]) {
        self.members.clear();
        if examples.is_empty() {
            return;
        }
        let mut rng = Rng::new(self.seed);
        for m in 0..self.k {
            // Bootstrap resample with per-member SGD seed.
            let sample: Vec<Example> =
                (0..examples.len()).map(|_| examples[rng.index(examples.len())]).collect();
            let mut model = fresh(
                self.n_classes,
                SgdConfig {
                    seed: self.sgd.seed ^ (m as u64).wrapping_mul(0x9E37_79B9),
                    ..self.sgd
                },
            );
            model.fit(x, &sample);
            self.members.push(model);
        }
    }

    fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        if self.members.is_empty() {
            return vec![1.0 / self.n_classes as f64; self.n_classes as usize];
        }
        let mut acc = vec![0.0; self.n_classes as usize];
        for m in &self.members {
            for (a, p) in acc.iter_mut().zip(m.predict_proba(features)) {
                *a += p;
            }
        }
        let inv = 1.0 / self.members.len() as f64;
        for a in acc.iter_mut() {
            *a *= inv;
        }
        acc
    }

    fn n_classes(&self) -> u32 {
        self.n_classes
    }

    fn is_fit(&self) -> bool {
        !self.members.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::generate::{make_classification, GenConfig};
    use crate::eval::{accuracy, train_test_split};

    fn noisy_dataset(seed: u64) -> crate::Dataset {
        make_classification(
            &GenConfig {
                n_samples: 400,
                n_features: 12,
                n_informative: 4,
                n_redundant: 2,
                class_sep: 1.0,
                flip_y: 0.08,
                ..Default::default()
            },
            seed,
        )
    }

    #[test]
    fn model_average_blends_probabilities() {
        let ds = noisy_dataset(1);
        let ex: Vec<Example> = (0..200).map(|r| Example::new(r, ds.labels[r])).collect();
        let (a, p) = ex.split_at(100);
        let mut avg = ModelAverage::new(2, SgdConfig::default(), 0.5);
        avg.fit_split(&ds.features, a, p);
        assert!(avg.is_fit());
        let probs = avg.predict_proba(ds.features.row(300));
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn model_average_with_one_empty_side_degrades_gracefully() {
        let ds = noisy_dataset(2);
        let ex: Vec<Example> = (0..100).map(|r| Example::new(r, ds.labels[r])).collect();
        let mut avg = ModelAverage::new(2, SgdConfig::default(), 0.7);
        avg.fit_split(&ds.features, &ex, &[]);
        assert!(avg.is_fit());
        // Falls back to the trained side only.
        let (train, test) = train_test_split(ds.len(), 0.3, 2);
        let _ = train; // avg already trained on the first 100 rows
        let tl: Vec<u32> = test.iter().map(|&r| ds.labels[r]).collect();
        assert!(accuracy(&avg, &ds.features, &test, &tl) > 0.6);
    }

    #[test]
    fn bagging_matches_or_beats_single_model_on_noisy_data() {
        let ds = noisy_dataset(3);
        let (train, test) = train_test_split(ds.len(), 0.3, 3);
        let ex: Vec<Example> = train.iter().map(|&r| Example::new(r, ds.labels[r])).collect();
        let tl: Vec<u32> = test.iter().map(|&r| ds.labels[r]).collect();

        let mut single = LogisticRegression::new(SgdConfig::default());
        single.fit(&ds.features, &ex);
        let single_acc = accuracy(&single, &ds.features, &test, &tl);

        let mut bag = BaggedEnsemble::new(2, SgdConfig::default(), 7, 3);
        bag.fit(&ds.features, &ex);
        assert_eq!(bag.len(), 7);
        let bag_acc = accuracy(&bag, &ds.features, &test, &tl);

        assert!(
            bag_acc >= single_acc - 0.03,
            "bagging should not lose: bag={bag_acc} single={single_acc}"
        );
    }

    #[test]
    fn unfit_ensembles_are_uniform() {
        let bag = BaggedEnsemble::new(4, SgdConfig::default(), 3, 1);
        assert!(!bag.is_fit());
        let p = bag.predict_proba(&[0.0]);
        assert!(p.iter().all(|&v| (v - 0.25).abs() < 1e-12));
    }

    #[test]
    fn bagging_is_deterministic() {
        let ds = noisy_dataset(4);
        let ex: Vec<Example> = (0..150).map(|r| Example::new(r, ds.labels[r])).collect();
        let mut a = BaggedEnsemble::new(2, SgdConfig::default(), 3, 9);
        let mut b = BaggedEnsemble::new(2, SgdConfig::default(), 3, 9);
        a.fit(&ds.features, &ex);
        b.fit(&ds.features, &ex);
        for r in 200..210 {
            assert_eq!(a.predict_proba(ds.features.row(r)), b.predict_proba(ds.features.row(r)));
        }
    }
}
