//! Model evaluation: accuracy, splits, and learning curves.

use crate::linalg::Matrix;
use crate::model::Classifier;
use clamshell_sim::rng::Rng;
use serde::{Deserialize, Serialize};

/// Fraction of `rows` whose prediction matches `labels`.
pub fn accuracy<C: Classifier + ?Sized>(
    model: &C,
    x: &Matrix,
    rows: &[usize],
    labels: &[u32],
) -> f64 {
    assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
    if rows.is_empty() {
        return 0.0;
    }
    let correct = rows.iter().zip(labels).filter(|(&r, &y)| model.predict(x.row(r)) == y).count();
    correct as f64 / rows.len() as f64
}

/// Deterministic shuffled split of `n` indices into train/test.
pub fn train_test_split(n: usize, test_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!((0.0..1.0).contains(&test_frac), "test_frac in [0,1)");
    let mut idx: Vec<usize> = (0..n).collect();
    Rng::new(seed).shuffle(&mut idx);
    let n_test = ((n as f64) * test_frac).round() as usize;
    let test = idx.split_off(n - n_test);
    (idx, test)
}

/// One observation on a learning curve: after `labels_acquired` labels
/// (at `time_secs` of simulated time, where applicable), the model scored
/// `test_accuracy` on a held-out set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Simulated seconds since the run began (0 for label-indexed curves).
    pub time_secs: f64,
    /// Number of crowd labels acquired so far.
    pub labels_acquired: usize,
    /// Held-out accuracy of the model trained on those labels.
    pub test_accuracy: f64,
}

/// A full learning curve.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LearningCurve {
    /// Curve observations, in acquisition order.
    pub points: Vec<CurvePoint>,
}

impl LearningCurve {
    /// Empty curve.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an observation.
    pub fn push(&mut self, time_secs: f64, labels_acquired: usize, test_accuracy: f64) {
        self.points.push(CurvePoint { time_secs, labels_acquired, test_accuracy });
    }

    /// Final accuracy (0 if empty).
    pub fn final_accuracy(&self) -> f64 {
        self.points.last().map(|p| p.test_accuracy).unwrap_or(0.0)
    }

    /// First simulated time at which accuracy reached `threshold`
    /// (Figure 17's metric), or `None` if never reached.
    pub fn time_to_accuracy(&self, threshold: f64) -> Option<f64> {
        self.points.iter().find(|p| p.test_accuracy >= threshold).map(|p| p.time_secs)
    }

    /// First label count at which accuracy reached `threshold`.
    pub fn labels_to_accuracy(&self, threshold: f64) -> Option<usize> {
        self.points.iter().find(|p| p.test_accuracy >= threshold).map(|p| p.labels_acquired)
    }

    /// Area under the (labels, accuracy) curve, normalized by the label
    /// span — a scalar "how fast did it learn" score used to compare
    /// AL/PL/HL runs.
    pub fn auc_by_labels(&self) -> f64 {
        if self.points.len() < 2 {
            return self.final_accuracy();
        }
        let mut area = 0.0;
        for w in self.points.windows(2) {
            let dx = (w[1].labels_acquired - w[0].labels_acquired) as f64;
            area += dx * (w[0].test_accuracy + w[1].test_accuracy) / 2.0;
        }
        let span =
            (self.points.last().unwrap().labels_acquired - self.points[0].labels_acquired) as f64;
        if span > 0.0 {
            area / span
        } else {
            self.final_accuracy()
        }
    }

    /// Accuracy at (or interpolated just before) a given simulated time.
    pub fn accuracy_at_time(&self, time_secs: f64) -> f64 {
        let mut acc = 0.0;
        for p in &self.points {
            if p.time_secs <= time_secs {
                acc = p.test_accuracy;
            } else {
                break;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::LogisticRegression;
    use crate::model::{Example, SgdConfig};

    #[test]
    fn split_is_disjoint_and_complete() {
        let (train, test) = train_test_split(100, 0.3, 7);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_deterministic() {
        assert_eq!(train_test_split(50, 0.2, 3), train_test_split(50, 0.2, 3));
        assert_ne!(train_test_split(50, 0.2, 3).1, train_test_split(50, 0.2, 4).1);
    }

    #[test]
    fn accuracy_of_perfect_and_empty() {
        let mut x = Matrix::zeros(0, 0);
        x.push_row(&[-5.0]);
        x.push_row(&[5.0]);
        let ex = vec![Example::new(0, 0), Example::new(1, 1)];
        let mut lr = LogisticRegression::new(SgdConfig::default());
        lr.fit(&x, &ex);
        assert_eq!(accuracy(&lr, &x, &[0, 1], &[0, 1]), 1.0);
        assert_eq!(accuracy(&lr, &x, &[], &[]), 0.0);
    }

    #[test]
    fn curve_thresholds_and_auc() {
        let mut c = LearningCurve::new();
        c.push(0.0, 0, 0.5);
        c.push(10.0, 50, 0.7);
        c.push(20.0, 100, 0.9);
        assert_eq!(c.time_to_accuracy(0.7), Some(10.0));
        assert_eq!(c.labels_to_accuracy(0.9), Some(100));
        assert_eq!(c.time_to_accuracy(0.95), None);
        assert_eq!(c.final_accuracy(), 0.9);
        // Trapezoid: (50*(0.5+0.7)/2 + 50*(0.7+0.9)/2) / 100 = 0.7
        assert!((c.auc_by_labels() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn accuracy_at_time_steps() {
        let mut c = LearningCurve::new();
        c.push(5.0, 10, 0.6);
        c.push(15.0, 20, 0.8);
        assert_eq!(c.accuracy_at_time(0.0), 0.0);
        assert_eq!(c.accuracy_at_time(5.0), 0.6);
        assert_eq!(c.accuracy_at_time(14.9), 0.6);
        assert_eq!(c.accuracy_at_time(100.0), 0.8);
    }
}
