//! CIFAR-like synthetic object images: "Birds" vs "Airplanes".
//!
//! The paper limits CIFAR-10 to two categories — "In order to make the
//! learning task simpler, we limited the topic categories to two: 'Birds'
//! and 'Airplanes'. We used raw pixel values as features, generating 3072
//! features per image." We generate a structural stand-in: 32×32 RGB
//! scenes where airplanes are elongated bright shapes on sky-like
//! backgrounds and birds are compact dark shapes on more varied (sky or
//! foliage) backgrounds, with heavy nuisance variation so the linear
//! learning curve is slower than the digits task — preserving the paper's
//! relative difficulty ordering (85% on CIFAR vs 70% on MNIST with 500
//! points is *harder* per-class for the 10-class task; what matters is
//! that both tasks are learnable but far from saturated at 500 labels).

use super::Dataset;
use crate::linalg::Matrix;
use clamshell_sim::rng::Rng;
use serde::{Deserialize, Serialize};

/// Image side length (32 → 32×32×3 = 3072 features, matching CIFAR).
pub const SIDE: usize = 32;

/// Class index for airplanes.
pub const AIRPLANE: u32 = 0;
/// Class index for birds.
pub const BIRD: u32 = 1;

/// Configuration for the objects generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectsConfig {
    /// Number of images.
    pub n_samples: usize,
    /// Std of additive per-channel Gaussian noise.
    pub pixel_noise: f64,
}

impl Default for ObjectsConfig {
    fn default() -> Self {
        ObjectsConfig { n_samples: 2000, pixel_noise: 0.10 }
    }
}

#[inline]
fn put(px: &mut [f64], r: usize, c: usize, rgb: [f64; 3], alpha: f64) {
    let base = (r * SIDE + c) * 3;
    for ch in 0..3 {
        px[base + ch] = px[base + ch] * (1.0 - alpha) + rgb[ch] * alpha;
    }
}

/// Paint a filled ellipse with soft edges.
fn ellipse(px: &mut [f64], cx: f64, cy: f64, rx: f64, ry: f64, angle: f64, rgb: [f64; 3]) {
    let (sin, cos) = angle.sin_cos();
    for r in 0..SIDE {
        for c in 0..SIDE {
            let x = c as f64 + 0.5 - cx;
            let y = r as f64 + 0.5 - cy;
            let xr = x * cos + y * sin;
            let yr = -x * sin + y * cos;
            let d = (xr / rx).powi(2) + (yr / ry).powi(2);
            if d < 1.3 {
                let alpha = ((1.3 - d) / 0.3).clamp(0.0, 1.0);
                put(px, r, c, rgb, alpha);
            }
        }
    }
}

fn sky_background(px: &mut [f64], rng: &mut Rng) {
    let base_b = rng.range_f64(0.6, 0.95);
    let base_g = rng.range_f64(0.55, base_b);
    let base_r = rng.range_f64(0.3, base_g);
    for r in 0..SIDE {
        // Vertical gradient: lighter at the top.
        let grad = 1.0 - 0.25 * (r as f64 / SIDE as f64);
        for c in 0..SIDE {
            put(px, r, c, [base_r * grad, base_g * grad, base_b * grad], 1.0);
        }
    }
}

fn foliage_background(px: &mut [f64], rng: &mut Rng) {
    let base_g = rng.range_f64(0.35, 0.7);
    let base_r = rng.range_f64(0.15, base_g);
    let base_b = rng.range_f64(0.05, 0.35);
    for r in 0..SIDE {
        for c in 0..SIDE {
            let tex = 0.12 * rng.next_gaussian();
            put(
                px,
                r,
                c,
                [
                    (base_r + tex).clamp(0.0, 1.0),
                    (base_g + tex).clamp(0.0, 1.0),
                    (base_b + tex * 0.4).clamp(0.0, 1.0),
                ],
                1.0,
            );
        }
    }
}

/// Render one image as a 3072-length RGB vector in `[0, 1]`.
pub fn render_object(class: u32, cfg: &ObjectsConfig, rng: &mut Rng) -> Vec<f64> {
    let mut px = vec![0.0f64; SIDE * SIDE * 3];
    let cx = rng.range_f64(10.0, 22.0);
    let cy = rng.range_f64(10.0, 22.0);
    match class {
        AIRPLANE => {
            // Airplanes are (almost) always on sky.
            sky_background(&mut px, rng);
            let body = rng.range_f64(0.75, 0.95);
            let tone = [body, body, body.min(1.0)];
            let len = rng.range_f64(9.0, 13.0);
            let tilt = rng.range_f64(-0.25, 0.25);
            // Fuselage: long thin bright ellipse.
            ellipse(&mut px, cx, cy, len, len * 0.18, tilt, tone);
            // Wings: shorter ellipse crossing at ~70–110 degrees.
            let wang = tilt + rng.range_f64(1.2, 1.9);
            ellipse(&mut px, cx, cy, len * 0.55, len * 0.12, wang, tone);
            // Tail fin.
            ellipse(
                &mut px,
                cx - len * 0.8 * tilt.cos(),
                cy - len * 0.8 * tilt.sin(),
                len * 0.22,
                len * 0.10,
                tilt + 0.9,
                tone,
            );
        }
        BIRD => {
            // Birds appear over sky or foliage.
            if rng.bernoulli(0.5) {
                sky_background(&mut px, rng);
            } else {
                foliage_background(&mut px, rng);
            }
            let shade = rng.range_f64(0.05, 0.45);
            let tint = rng.range_f64(0.0, 0.25);
            let tone = [shade + tint, shade, shade * 0.8];
            let size = rng.range_f64(3.5, 6.0);
            // Compact body.
            ellipse(&mut px, cx, cy, size, size * 0.7, rng.range_f64(-0.4, 0.4), tone);
            // Head.
            ellipse(&mut px, cx + size, cy - size * 0.5, size * 0.45, size * 0.4, 0.0, tone);
            // Two swept wings.
            for side in [-1.0, 1.0] {
                ellipse(
                    &mut px,
                    cx - size * 0.3,
                    cy + side * size * 0.8,
                    size * 1.3,
                    size * 0.25,
                    side * rng.range_f64(0.5, 0.9),
                    tone,
                );
            }
        }
        _ => panic!("class out of range"),
    }
    // Global nuisance: brightness shift + pixel noise.
    let bright = rng.range_f64(-0.08, 0.08);
    for v in px.iter_mut() {
        *v = (*v + bright + cfg.pixel_noise * rng.next_gaussian()).clamp(0.0, 1.0);
    }
    px
}

/// Generate a birds-vs-airplanes dataset.
pub fn objects(cfg: &ObjectsConfig, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let mut features = Matrix::zeros(0, 0);
    let mut labels = Vec::with_capacity(cfg.n_samples);
    for i in 0..cfg.n_samples {
        let class = (i % 2) as u32;
        features.push_row(&render_object(class, cfg, &mut rng));
        labels.push(class);
    }
    let ds = Dataset { features, labels, n_classes: 2, name: "objects".into() };
    ds.validate();
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{accuracy, train_test_split};
    use crate::logistic::LogisticRegression;
    use crate::model::{Classifier, Example, SgdConfig};

    #[test]
    fn shape_and_range() {
        let ds = objects(&ObjectsConfig { n_samples: 20, ..Default::default() }, 1);
        assert_eq!(ds.dims(), 3072);
        assert_eq!(ds.len(), 20);
        assert!(ds.features.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn balanced_classes() {
        let ds = objects(&ObjectsConfig { n_samples: 100, ..Default::default() }, 2);
        assert_eq!(ds.class_counts(), vec![50, 50]);
    }

    #[test]
    fn linearly_learnable_but_not_trivial() {
        let ds = objects(&ObjectsConfig { n_samples: 300, ..Default::default() }, 3);
        let (train, test) = train_test_split(ds.len(), 0.3, 3);
        let ex: Vec<Example> = train.iter().map(|&r| Example::new(r, ds.labels[r])).collect();
        let mut m = LogisticRegression::new(SgdConfig {
            epochs: 15,
            learning_rate: 0.05,
            ..Default::default()
        });
        m.fit(&ds.features, &ex);
        let tl: Vec<u32> = test.iter().map(|&r| ds.labels[r]).collect();
        let acc = accuracy(&m, &ds.features, &test, &tl);
        assert!(acc > 0.65, "should beat chance comfortably: acc={acc}");
        assert!(acc < 0.995, "should not be trivially separable: acc={acc}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ObjectsConfig { n_samples: 10, ..Default::default() };
        assert_eq!(objects(&cfg, 5), objects(&cfg, 5));
    }

    #[test]
    #[should_panic]
    fn render_rejects_bad_class() {
        let mut rng = Rng::new(1);
        let _ = render_object(2, &ObjectsConfig::default(), &mut rng);
    }
}
