//! MNIST-like synthetic handwritten digits.
//!
//! The paper uses MNIST ("70,000 black and white images of handwritten
//! digits … raw pixel values as features, leading to 784 features per
//! image"). The raw dataset is not bundled offline, so we generate a
//! structural equivalent: 28×28 grayscale images of the ten digits,
//! rendered as seven-segment-style strokes with random affine jitter,
//! stroke-weight variation, and pixel noise. What the learning experiments
//! need — a 10-class, 784-raw-feature task of moderate difficulty where a
//! linear model learns steadily over hundreds of labels — is preserved.

use super::Dataset;
use crate::linalg::Matrix;
use clamshell_sim::rng::Rng;
use serde::{Deserialize, Serialize};

/// Image side length (28 → 784 features, matching MNIST).
pub const SIDE: usize = 28;

/// Configuration for the digits generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DigitsConfig {
    /// Number of images.
    pub n_samples: usize,
    /// Std of additive per-pixel Gaussian noise (in unit intensity).
    pub pixel_noise: f64,
    /// Max translation jitter as a fraction of image size.
    pub jitter: f64,
}

impl Default for DigitsConfig {
    fn default() -> Self {
        DigitsConfig { n_samples: 2000, pixel_noise: 0.18, jitter: 0.10 }
    }
}

/// Segment endpoints in unit square coordinates `(x, y)`, y down.
type Seg = ((f64, f64), (f64, f64));

/// The classic seven segments.
const SEG_A: Seg = ((0.25, 0.15), (0.75, 0.15)); // top
const SEG_B: Seg = ((0.75, 0.15), (0.75, 0.50)); // top right
const SEG_C: Seg = ((0.75, 0.50), (0.75, 0.85)); // bottom right
const SEG_D: Seg = ((0.25, 0.85), (0.75, 0.85)); // bottom
const SEG_E: Seg = ((0.25, 0.50), (0.25, 0.85)); // bottom left
const SEG_F: Seg = ((0.25, 0.15), (0.25, 0.50)); // top left
const SEG_G: Seg = ((0.25, 0.50), (0.75, 0.50)); // middle

/// Which segments each digit lights up.
fn segments(digit: u32) -> Vec<Seg> {
    match digit {
        0 => vec![SEG_A, SEG_B, SEG_C, SEG_D, SEG_E, SEG_F],
        1 => vec![SEG_B, SEG_C],
        2 => vec![SEG_A, SEG_B, SEG_G, SEG_E, SEG_D],
        3 => vec![SEG_A, SEG_B, SEG_G, SEG_C, SEG_D],
        4 => vec![SEG_F, SEG_G, SEG_B, SEG_C],
        5 => vec![SEG_A, SEG_F, SEG_G, SEG_C, SEG_D],
        6 => vec![SEG_A, SEG_F, SEG_G, SEG_E, SEG_C, SEG_D],
        7 => vec![SEG_A, SEG_B, SEG_C],
        8 => vec![SEG_A, SEG_B, SEG_C, SEG_D, SEG_E, SEG_F, SEG_G],
        9 => vec![SEG_A, SEG_B, SEG_C, SEG_D, SEG_F, SEG_G],
        _ => panic!("digit out of range"),
    }
}

/// Distance from point `p` to segment `s`.
fn seg_dist(p: (f64, f64), s: Seg) -> f64 {
    let ((x1, y1), (x2, y2)) = s;
    let (px, py) = p;
    let (dx, dy) = (x2 - x1, y2 - y1);
    let len2 = dx * dx + dy * dy;
    let t =
        if len2 == 0.0 { 0.0 } else { (((px - x1) * dx + (py - y1) * dy) / len2).clamp(0.0, 1.0) };
    let (cx, cy) = (x1 + t * dx, y1 + t * dy);
    ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
}

/// Render one digit image into a 784-length pixel vector in `[0, 1]`.
pub fn render_digit(digit: u32, cfg: &DigitsConfig, rng: &mut Rng) -> Vec<f64> {
    let segs = segments(digit);
    // Random affine jitter: translation, scale, shear.
    let tx = rng.range_f64(-cfg.jitter, cfg.jitter);
    let ty = rng.range_f64(-cfg.jitter, cfg.jitter);
    let scale = rng.range_f64(0.85, 1.15);
    let shear = rng.range_f64(-0.15, 0.15);
    let stroke = rng.range_f64(0.035, 0.065); // stroke half-width
    let intensity = rng.range_f64(0.75, 1.0);

    let mut px = vec![0.0f64; SIDE * SIDE];
    for r in 0..SIDE {
        for c in 0..SIDE {
            // Map pixel center back into glyph space (inverse transform).
            let x0 = (c as f64 + 0.5) / SIDE as f64;
            let y0 = (r as f64 + 0.5) / SIDE as f64;
            let x = (x0 - 0.5 - tx) / scale - shear * (y0 - 0.5) + 0.5;
            let y = (y0 - 0.5 - ty) / scale + 0.5;
            let d = segs.iter().map(|&s| seg_dist((x, y), s)).fold(f64::INFINITY, f64::min);
            let v = intensity * (-(d * d) / (2.0 * stroke * stroke)).exp();
            let noise = cfg.pixel_noise * rng.next_gaussian();
            px[r * SIDE + c] = (v + noise).clamp(0.0, 1.0);
        }
    }
    px
}

/// Generate a digits dataset.
pub fn digits(cfg: &DigitsConfig, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let mut features = Matrix::zeros(0, 0);
    let mut labels = Vec::with_capacity(cfg.n_samples);
    for i in 0..cfg.n_samples {
        let digit = (i % 10) as u32;
        features.push_row(&render_digit(digit, cfg, &mut rng));
        labels.push(digit);
    }
    let ds = Dataset { features, labels, n_classes: 10, name: "digits".into() };
    ds.validate();
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{accuracy, train_test_split};
    use crate::model::{Classifier, Example, SgdConfig};
    use crate::softmax::SoftmaxRegression;

    #[test]
    fn shape_and_pixel_range() {
        let ds = digits(&DigitsConfig { n_samples: 50, ..Default::default() }, 1);
        assert_eq!(ds.dims(), 784);
        assert_eq!(ds.len(), 50);
        assert!(ds.features.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn all_ten_classes_present() {
        let ds = digits(&DigitsConfig { n_samples: 100, ..Default::default() }, 2);
        let counts = ds.class_counts();
        assert_eq!(counts, vec![10; 10]);
    }

    #[test]
    fn digits_are_distinguishable_by_linear_model() {
        // A modest training set should comfortably beat chance (10%) —
        // mirroring the paper's MNIST runs where ~70% is reached within
        // 500 labels.
        let ds = digits(&DigitsConfig { n_samples: 400, ..Default::default() }, 3);
        let (train, test) = train_test_split(ds.len(), 0.25, 3);
        let ex: Vec<Example> = train.iter().map(|&r| Example::new(r, ds.labels[r])).collect();
        let mut m = SoftmaxRegression::new(
            10,
            SgdConfig { epochs: 20, learning_rate: 0.3, ..Default::default() },
        );
        m.fit(&ds.features, &ex);
        let test_labels: Vec<u32> = test.iter().map(|&r| ds.labels[r]).collect();
        let acc = accuracy(&m, &ds.features, &test, &test_labels);
        assert!(acc > 0.5, "acc={acc}");
    }

    #[test]
    fn noise_hurts_separability() {
        let clean = digits(&DigitsConfig { n_samples: 300, pixel_noise: 0.02, jitter: 0.02 }, 4);
        let noisy = digits(&DigitsConfig { n_samples: 300, pixel_noise: 0.45, jitter: 0.18 }, 4);
        let eval = |ds: &Dataset| {
            let (train, test) = train_test_split(ds.len(), 0.3, 4);
            let ex: Vec<Example> = train.iter().map(|&r| Example::new(r, ds.labels[r])).collect();
            let mut m = SoftmaxRegression::new(
                10,
                SgdConfig { epochs: 15, learning_rate: 0.3, ..Default::default() },
            );
            m.fit(&ds.features, &ex);
            let tl: Vec<u32> = test.iter().map(|&r| ds.labels[r]).collect();
            accuracy(&m, &ds.features, &test, &tl)
        };
        let (a_clean, a_noisy) = (eval(&clean), eval(&noisy));
        assert!(a_clean > a_noisy, "noise should hurt: clean={a_clean} noisy={a_noisy}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = DigitsConfig { n_samples: 20, ..Default::default() };
        assert_eq!(digits(&cfg, 7), digits(&cfg, 7));
    }

    #[test]
    #[should_panic]
    fn render_rejects_non_digit() {
        let mut rng = Rng::new(1);
        let _ = render_digit(10, &DigitsConfig::default(), &mut rng);
    }
}
