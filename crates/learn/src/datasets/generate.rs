//! Guyon-style synthetic classification problems.
//!
//! Reimplements the algorithm scikit-learn's `make_classification` adapts
//! from Guyon's NIPS-2003 variable-selection benchmark design — the exact
//! generator the paper uses for its hardness sweep (Figure 15): "datasets
//! of varying difficulty … generated with the scikit-learn data generator,
//! which builds classification problems following an adaptation of the
//! algorithm from \[19\]".
//!
//! Mechanics: class clusters are placed at vertices of an
//! `n_informative`-dimensional hypercube with side `2·class_sep`; points
//! are drawn from unit Gaussians around their cluster centroid and passed
//! through a random linear map (intra-cluster covariance); redundant
//! features are random linear combinations of informative ones; the rest
//! is pure Gaussian noise; finally a `flip_y` fraction of labels is
//! randomized. Lower `class_sep` / higher `flip_y` / more noise features =
//! harder problem.

use super::Dataset;
use crate::linalg::Matrix;
use clamshell_sim::rng::Rng;
use serde::{Deserialize, Serialize};

/// Parameters for [`make_classification`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenConfig {
    /// Number of items to generate.
    pub n_samples: usize,
    /// Total feature count.
    pub n_features: usize,
    /// Number of informative features (≤ `n_features`).
    pub n_informative: usize,
    /// Number of redundant (linear-combination) features.
    pub n_redundant: usize,
    /// Number of classes.
    pub n_classes: u32,
    /// Clusters per class.
    pub n_clusters_per_class: usize,
    /// Half-distance between cluster centroids; the main hardness knob.
    pub class_sep: f64,
    /// Fraction of labels replaced with uniform random classes.
    pub flip_y: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            n_samples: 1000,
            n_features: 20,
            n_informative: 5,
            n_redundant: 4,
            n_classes: 2,
            n_clusters_per_class: 2,
            class_sep: 1.0,
            flip_y: 0.01,
        }
    }
}

impl GenConfig {
    /// The paper's Figure 15 sweeps problem hardness by the number of
    /// generated features; this helper mirrors that axis while keeping
    /// informative dimensionality fixed, so more features = more noise =
    /// harder. `hardness ∈ {0,1,2,…}` raises feature count and shrinks
    /// separation.
    pub fn with_hardness(hardness: u32) -> GenConfig {
        let h = hardness as f64;
        GenConfig {
            n_features: 10 * (1 + hardness as usize * 3),
            class_sep: (1.6 / (1.0 + 0.8 * h)).max(0.2),
            flip_y: 0.01 + 0.04 * h,
            ..Default::default()
        }
    }
}

/// Generate a dataset per `cfg`, deterministically from `seed`.
pub fn make_classification(cfg: &GenConfig, seed: u64) -> Dataset {
    assert!(cfg.n_informative >= 1, "need at least one informative feature");
    assert!(
        cfg.n_informative + cfg.n_redundant <= cfg.n_features,
        "informative + redundant exceeds total features"
    );
    assert!(cfg.n_classes >= 2, "need at least 2 classes");
    assert!(cfg.n_clusters_per_class >= 1);
    assert!((0.0..=1.0).contains(&cfg.flip_y));

    let mut rng = Rng::new(seed);
    let n_clusters = cfg.n_classes as usize * cfg.n_clusters_per_class;
    let d_inf = cfg.n_informative;

    // Cluster centroids: random hypercube vertices scaled by class_sep,
    // plus a small jitter so clusters are distinguishable when
    // n_clusters > 2^d_inf.
    let centroids: Vec<Vec<f64>> = (0..n_clusters)
        .map(|_| {
            (0..d_inf)
                .map(|_| {
                    let vertex = if rng.bernoulli(0.5) { 1.0 } else { -1.0 };
                    vertex * cfg.class_sep + 0.1 * rng.next_gaussian()
                })
                .collect()
        })
        .collect();

    // Per-cluster random linear transform (covariance structure).
    let transforms: Vec<Vec<f64>> = (0..n_clusters)
        .map(|_| {
            let mut t = vec![0.0; d_inf * d_inf];
            for (i, v) in t.iter_mut().enumerate() {
                let diag = i % (d_inf + 1) == 0;
                *v = if diag { 1.0 } else { 0.3 * rng.next_gaussian() };
            }
            t
        })
        .collect();

    // Redundant features: random combination matrix of informative ones.
    let comb: Vec<f64> = (0..cfg.n_redundant * d_inf).map(|_| rng.next_gaussian() * 0.7).collect();

    let mut features = Matrix::zeros(0, 0);
    let mut labels = Vec::with_capacity(cfg.n_samples);
    let mut raw = vec![0.0; d_inf];
    let mut informative = vec![0.0; d_inf];

    for i in 0..cfg.n_samples {
        // Round-robin classes so the dataset is balanced, random cluster
        // within the class.
        let class = (i % cfg.n_classes as usize) as u32;
        let cluster =
            class as usize * cfg.n_clusters_per_class + rng.index(cfg.n_clusters_per_class);

        for r in raw.iter_mut() {
            *r = rng.next_gaussian();
        }
        // informative = centroid + T * raw
        let t = &transforms[cluster];
        for (j, inf) in informative.iter_mut().enumerate() {
            let mut v = centroids[cluster][j];
            for (k, &r) in raw.iter().enumerate() {
                v += t[j * d_inf + k] * r;
            }
            *inf = v;
        }

        let mut row = Vec::with_capacity(cfg.n_features);
        row.extend_from_slice(&informative);
        for r in 0..cfg.n_redundant {
            let mut v = 0.0;
            for (k, &inf) in informative.iter().enumerate() {
                v += comb[r * d_inf + k] * inf;
            }
            row.push(v);
        }
        while row.len() < cfg.n_features {
            row.push(rng.next_gaussian());
        }

        features.push_row(&row);
        let label = if rng.bernoulli(cfg.flip_y) {
            rng.next_below(cfg.n_classes as u64) as u32
        } else {
            class
        };
        labels.push(label);
    }

    let ds = Dataset {
        features,
        labels,
        n_classes: cfg.n_classes,
        name: format!(
            "generated(d={},sep={:.2},flip={:.2})",
            cfg.n_features, cfg.class_sep, cfg.flip_y
        ),
    };
    ds.validate();
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{accuracy, train_test_split};
    use crate::logistic::LogisticRegression;
    use crate::model::{Classifier, Example, SgdConfig};

    fn holdout_accuracy(ds: &Dataset, seed: u64) -> f64 {
        let (train, test) = train_test_split(ds.len(), 0.3, seed);
        let ex: Vec<Example> = train.iter().map(|&r| Example::new(r, ds.labels[r])).collect();
        let mut m = LogisticRegression::new(SgdConfig::default());
        m.fit(&ds.features, &ex);
        let test_labels: Vec<u32> = test.iter().map(|&r| ds.labels[r]).collect();
        accuracy(&m, &ds.features, &test, &test_labels)
    }

    #[test]
    fn generates_requested_shape() {
        let cfg = GenConfig { n_samples: 200, n_features: 15, ..Default::default() };
        let ds = make_classification(&cfg, 1);
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.dims(), 15);
        ds.validate();
    }

    #[test]
    fn classes_roughly_balanced() {
        let ds = make_classification(&GenConfig { n_samples: 1000, ..Default::default() }, 2);
        let counts = ds.class_counts();
        for &c in &counts {
            assert!((450..550).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn easy_problem_is_learnable() {
        let cfg = GenConfig { n_samples: 600, class_sep: 2.0, flip_y: 0.0, ..Default::default() };
        let acc = holdout_accuracy(&make_classification(&cfg, 3), 3);
        assert!(acc > 0.9, "acc={acc}");
    }

    #[test]
    fn hardness_monotonically_degrades_accuracy() {
        let easy = holdout_accuracy(&make_classification(&GenConfig::with_hardness(0), 4), 4);
        let hard = holdout_accuracy(&make_classification(&GenConfig::with_hardness(3), 4), 4);
        assert!(easy > hard + 0.05, "hardness should matter: easy={easy} hard={hard}");
        assert!(hard > 0.5, "hard problems remain above chance: {hard}");
    }

    #[test]
    fn flip_y_bounds_achievable_accuracy() {
        let cfg = GenConfig { n_samples: 800, class_sep: 3.0, flip_y: 0.3, ..Default::default() };
        let acc = holdout_accuracy(&make_classification(&cfg, 5), 5);
        // With 30% random labels, ~15% of test labels disagree with the
        // Bayes classifier; accuracy can't be near 1.
        assert!(acc < 0.93, "acc={acc}");
        assert!(acc > 0.6, "acc={acc}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GenConfig::default();
        let a = make_classification(&cfg, 9);
        let b = make_classification(&cfg, 9);
        assert_eq!(a, b);
        let c = make_classification(&cfg, 10);
        assert_ne!(a.features.as_slice(), c.features.as_slice());
    }

    #[test]
    fn multiclass_generation() {
        let cfg =
            GenConfig { n_samples: 300, n_classes: 4, n_informative: 6, ..Default::default() };
        let ds = make_classification(&cfg, 11);
        ds.validate();
        assert_eq!(ds.class_counts().len(), 4);
    }

    #[test]
    #[should_panic]
    fn rejects_too_many_special_features() {
        let cfg =
            GenConfig { n_features: 5, n_informative: 4, n_redundant: 4, ..Default::default() };
        let _ = make_classification(&cfg, 1);
    }
}
