//! Dataset container and generators.
//!
//! Three generators stand in for the paper's data sources (see DESIGN.md
//! §1 for the substitution rationale):
//!
//! * [`generate`] — Guyon-style `make_classification` (what the paper uses
//!   for Figure 15: "these datasets are generated with the scikit-learn
//!   data generator, which builds classification problems following an
//!   adaptation of the algorithm from [Guyon 2003]").
//! * [`digits`] — MNIST-like 10-class handwritten-digit images
//!   (28×28 = 784 raw-pixel features, like the paper's MNIST usage).
//! * [`objects`] — CIFAR-like "Birds vs Airplanes" binary task
//!   (32×32×3 = 3072 raw-pixel features, like the paper's CIFAR-10 subset).

pub mod digits;
pub mod generate;
pub mod objects;

use crate::eval::train_test_split;
use crate::linalg::Matrix;
use serde::{Deserialize, Serialize};

/// A labeled classification dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature matrix, one row per item.
    pub features: Matrix,
    /// Ground-truth class per item, in `0..n_classes`.
    pub labels: Vec<u32>,
    /// Number of classes.
    pub n_classes: u32,
    /// Human-readable name for reports.
    pub name: String,
}

impl Dataset {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn dims(&self) -> usize {
        self.features.cols()
    }

    /// Deterministic train/test index split.
    pub fn split(&self, test_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
        train_test_split(self.len(), test_frac, seed)
    }

    /// Sanity-check invariants (used by tests and debug assertions).
    pub fn validate(&self) {
        assert_eq!(self.features.rows(), self.labels.len(), "rows/labels mismatch");
        assert!(self.n_classes >= 2, "need >= 2 classes");
        assert!(self.labels.iter().all(|&l| l < self.n_classes), "label out of range");
        assert!(self.features.as_slice().iter().all(|v| v.is_finite()), "non-finite feature");
    }

    /// Per-class item counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes as usize];
        for &l in &self.labels {
            counts[l as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset {
            features: Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0], vec![0.5, 0.5]]),
            labels: vec![0, 1, 0],
            n_classes: 2,
            name: "tiny".into(),
        }
    }

    #[test]
    fn validate_accepts_wellformed() {
        tiny().validate();
    }

    #[test]
    #[should_panic]
    fn validate_rejects_out_of_range_label() {
        let mut d = tiny();
        d.labels[0] = 7;
        d.validate();
    }

    #[test]
    fn class_counts_sum_to_len() {
        let d = tiny();
        let counts = d.class_counts();
        assert_eq!(counts, vec![2, 1]);
        assert_eq!(counts.iter().sum::<usize>(), d.len());
    }

    #[test]
    fn split_partitions_items() {
        let d = tiny();
        let (train, test) = d.split(0.34, 1);
        assert_eq!(train.len() + test.len(), 3);
    }
}
