//! Multinomial (softmax) logistic regression for multi-class tasks —
//! the 10-class MNIST-like digits dataset in particular.

use crate::linalg::{dot, softmax_into, Matrix};
use crate::model::{Classifier, Example, SgdConfig};
use clamshell_sim::rng::Rng;
use serde::{Deserialize, Serialize};

/// Multinomial logistic regression with `n_classes` linear heads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftmaxRegression {
    config: SgdConfig,
    n_classes: u32,
    /// Row-major `n_classes × d` weight matrix.
    weights: Vec<f64>,
    bias: Vec<f64>,
    dims: usize,
    fitted: bool,
}

impl SoftmaxRegression {
    /// New untrained model for `n_classes` classes.
    pub fn new(n_classes: u32, config: SgdConfig) -> Self {
        assert!(n_classes >= 2, "need at least two classes");
        SoftmaxRegression {
            config,
            n_classes,
            weights: Vec::new(),
            bias: Vec::new(),
            dims: 0,
            fitted: false,
        }
    }

    #[inline]
    fn class_weights(&self, c: usize) -> &[f64] {
        &self.weights[c * self.dims..(c + 1) * self.dims]
    }

    fn logits_into(&self, features: &[f64], out: &mut [f64]) {
        for (c, logit) in out.iter_mut().enumerate().take(self.n_classes as usize) {
            *logit = dot(self.class_weights(c), features) + self.bias[c];
        }
    }
}

impl Classifier for SoftmaxRegression {
    fn fit(&mut self, x: &Matrix, examples: &[Example]) {
        if examples.is_empty() {
            return;
        }
        let d = x.cols();
        let k = self.n_classes as usize;
        self.dims = d;
        self.weights = vec![0.0; k * d];
        self.bias = vec![0.0; k];

        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut rng = Rng::new(self.config.seed);
        let mut lr = self.config.learning_rate;
        let mean_w: f64 = examples.iter().map(|e| e.weight).sum::<f64>() / examples.len() as f64;
        let wnorm = if mean_w > 0.0 { 1.0 / mean_w } else { 1.0 };

        let mut logits = vec![0.0; k];
        let mut probs = vec![0.0; k];

        for _epoch in 0..self.config.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(self.config.batch_size) {
                let mut gw = vec![0.0; k * d];
                let mut gb = vec![0.0; k];
                for &i in chunk {
                    let ex = examples[i];
                    debug_assert!(
                        ex.label < self.n_classes,
                        "label {} out of range {}",
                        ex.label,
                        self.n_classes
                    );
                    let row = x.row(ex.row);
                    // Forward.
                    for (c, logit) in logits.iter_mut().enumerate().take(k) {
                        *logit = dot(&self.weights[c * d..(c + 1) * d], row) + self.bias[c];
                    }
                    softmax_into(&logits, &mut probs);
                    // Backward: grad = (p - onehot(y)) ⊗ row.
                    let w = ex.weight * wnorm;
                    for c in 0..k {
                        let err = (probs[c] - (c as u32 == ex.label) as u8 as f64) * w;
                        if err != 0.0 {
                            let gwc = &mut gw[c * d..(c + 1) * d];
                            for (g, &xi) in gwc.iter_mut().zip(row) {
                                *g += err * xi;
                            }
                            gb[c] += err;
                        }
                    }
                }
                let inv = 1.0 / chunk.len() as f64;
                let shrink = 1.0 - lr * self.config.l2;
                for (w, g) in self.weights.iter_mut().zip(&gw) {
                    *w = *w * shrink - lr * g * inv;
                }
                for (b, g) in self.bias.iter_mut().zip(&gb) {
                    *b -= lr * g * inv;
                }
            }
            lr *= self.config.lr_decay;
        }
        self.fitted = true;
    }

    fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        let k = self.n_classes as usize;
        if !self.fitted {
            return vec![1.0 / k as f64; k];
        }
        let mut logits = vec![0.0; k];
        self.logits_into(features, &mut logits);
        let mut probs = vec![0.0; k];
        softmax_into(&logits, &mut probs);
        probs
    }

    fn n_classes(&self) -> u32 {
        self.n_classes
    }

    fn is_fit(&self) -> bool {
        self.fitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::accuracy;

    /// Four well-separated Gaussian blobs in 2D.
    fn blobs4(n_per: usize, seed: u64) -> (Matrix, Vec<Example>) {
        let centers = [(-3.0, -3.0), (3.0, -3.0), (-3.0, 3.0), (3.0, 3.0)];
        let mut rng = Rng::new(seed);
        let mut m = Matrix::zeros(0, 0);
        let mut ex = Vec::new();
        for i in 0..n_per * 4 {
            let label = (i % 4) as u32;
            let (cx, cy) = centers[label as usize];
            m.push_row(&[cx + rng.next_gaussian() * 0.6, cy + rng.next_gaussian() * 0.6]);
            ex.push(Example::new(i, label));
        }
        (m, ex)
    }

    #[test]
    fn learns_four_blobs() {
        let (x, ex) = blobs4(80, 1);
        let mut sm = SoftmaxRegression::new(4, SgdConfig::default());
        sm.fit(&x, &ex);
        let rows: Vec<usize> = ex.iter().map(|e| e.row).collect();
        let labels: Vec<u32> = ex.iter().map(|e| e.label).collect();
        let acc = accuracy(&sm, &x, &rows, &labels);
        assert!(acc > 0.95, "acc={acc}");
    }

    #[test]
    fn probabilities_normalized() {
        let (x, ex) = blobs4(30, 2);
        let mut sm = SoftmaxRegression::new(4, SgdConfig::default());
        sm.fit(&x, &ex);
        for i in 0..8 {
            let p = sm.predict_proba(x.row(i));
            assert_eq!(p.len(), 4);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn unfit_model_is_uniform() {
        let sm = SoftmaxRegression::new(5, SgdConfig::default());
        let p = sm.predict_proba(&[0.0, 0.0]);
        assert!(p.iter().all(|&v| (v - 0.2).abs() < 1e-12));
    }

    #[test]
    fn binary_softmax_agrees_with_logistic_direction() {
        // Softmax with k=2 should separate the same blobs as the binary LR.
        let mut rng = Rng::new(3);
        let mut m = Matrix::zeros(0, 0);
        let mut ex = Vec::new();
        for i in 0..200 {
            let label = (i % 2) as u32;
            let cx = if label == 0 { -2.0 } else { 2.0 };
            m.push_row(&[cx + rng.next_gaussian() * 0.5]);
            ex.push(Example::new(i, label));
        }
        let mut sm = SoftmaxRegression::new(2, SgdConfig::default());
        sm.fit(&m, &ex);
        assert_eq!(sm.predict(&[-2.0]), 0);
        assert_eq!(sm.predict(&[2.0]), 1);
    }

    #[test]
    #[should_panic]
    fn rejects_single_class() {
        let _ = SoftmaxRegression::new(1, SgdConfig::default());
    }
}
