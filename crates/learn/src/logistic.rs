//! Binary logistic regression via weighted mini-batch SGD.
//!
//! Used for the two-class tasks (the CIFAR-like birds/airplanes dataset
//! and generated binary problems). Matches the role scikit-learn's
//! `LogisticRegression`/`SGDClassifier` plays in the paper's stack.

use crate::linalg::{axpy, dot, sigmoid, Matrix};
use crate::model::{Classifier, Example, SgdConfig};
use clamshell_sim::rng::Rng;
use serde::{Deserialize, Serialize};

/// Binary logistic regression model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    config: SgdConfig,
    weights: Vec<f64>,
    bias: f64,
    fitted: bool,
}

impl LogisticRegression {
    /// New untrained model with the given SGD hyper-parameters.
    pub fn new(config: SgdConfig) -> Self {
        LogisticRegression { config, weights: Vec::new(), bias: 0.0, fitted: false }
    }

    /// Model weights (empty until fit).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Probability of class 1 for a feature row.
    pub fn proba_positive(&self, features: &[f64]) -> f64 {
        if !self.fitted || self.weights.is_empty() {
            return 0.5;
        }
        sigmoid(dot(&self.weights, features) + self.bias)
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &Matrix, examples: &[Example]) {
        if examples.is_empty() {
            return;
        }
        let d = x.cols();
        self.weights = vec![0.0; d];
        self.bias = 0.0;

        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut rng = Rng::new(self.config.seed);
        let mut lr = self.config.learning_rate;
        // Normalize weights so the effective learning rate is insensitive
        // to the absolute weight scale.
        let mean_w: f64 = examples.iter().map(|e| e.weight).sum::<f64>() / examples.len() as f64;
        let wnorm = if mean_w > 0.0 { 1.0 / mean_w } else { 1.0 };

        for _epoch in 0..self.config.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(self.config.batch_size) {
                // Accumulate the mini-batch gradient.
                let mut gw = vec![0.0; d];
                let mut gb = 0.0;
                for &i in chunk {
                    let ex = examples[i];
                    debug_assert!(ex.label < 2, "binary learner got label {}", ex.label);
                    let row = x.row(ex.row);
                    let p = sigmoid(dot(&self.weights, row) + self.bias);
                    let err = (p - ex.label as f64) * ex.weight * wnorm;
                    axpy(err, row, &mut gw);
                    gb += err;
                }
                let inv = 1.0 / chunk.len() as f64;
                // L2 on weights only (standard practice: bias unregularized).
                let shrink = 1.0 - lr * self.config.l2;
                for (w, g) in self.weights.iter_mut().zip(&gw) {
                    *w = *w * shrink - lr * g * inv;
                }
                self.bias -= lr * gb * inv;
            }
            lr *= self.config.lr_decay;
        }
        self.fitted = true;
    }

    fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        let p1 = self.proba_positive(features);
        vec![1.0 - p1, p1]
    }

    fn n_classes(&self) -> u32 {
        2
    }

    fn is_fit(&self) -> bool {
        self.fitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::accuracy;

    /// Linearly separable blobs in 2D.
    fn blobs(n_per: usize, seed: u64) -> (Matrix, Vec<Example>) {
        let mut rng = Rng::new(seed);
        let mut m = Matrix::zeros(0, 0);
        let mut ex = Vec::new();
        for i in 0..n_per * 2 {
            let label = (i % 2) as u32;
            let cx = if label == 0 { -2.0 } else { 2.0 };
            m.push_row(&[cx + rng.next_gaussian() * 0.5, rng.next_gaussian() * 0.5]);
            ex.push(Example::new(i, label));
        }
        (m, ex)
    }

    #[test]
    fn learns_separable_data() {
        let (x, ex) = blobs(100, 1);
        let mut lr = LogisticRegression::new(SgdConfig::default());
        lr.fit(&x, &ex);
        let labels: Vec<u32> = ex.iter().map(|e| e.label).collect();
        let rows: Vec<usize> = ex.iter().map(|e| e.row).collect();
        let acc = accuracy(&lr, &x, &rows, &labels);
        assert!(acc > 0.97, "acc={acc}");
    }

    #[test]
    fn unfit_model_is_uninformative() {
        let lr = LogisticRegression::new(SgdConfig::default());
        assert!(!lr.is_fit());
        assert_eq!(lr.predict_proba(&[1.0, 2.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, ex) = blobs(50, 2);
        let mut lr = LogisticRegression::new(SgdConfig::default());
        lr.fit(&x, &ex);
        for i in 0..10 {
            let p = lr.predict_proba(x.row(i));
            assert!((p[0] + p[1] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_shift_decision_boundary() {
        // Downweighting one class's examples to ~0 should push predictions
        // toward the other class near the boundary.
        let (x, mut ex) = blobs(100, 3);
        for e in ex.iter_mut() {
            if e.label == 1 {
                e.weight = 0.01;
            }
        }
        let mut lr = LogisticRegression::new(SgdConfig::default());
        lr.fit(&x, &ex);
        // Point at the midpoint should lean class 0.
        assert!(lr.proba_positive(&[0.0, 0.0]) < 0.5);
    }

    #[test]
    fn deterministic_for_seed() {
        let (x, ex) = blobs(50, 4);
        let mut a = LogisticRegression::new(SgdConfig::default());
        let mut b = LogisticRegression::new(SgdConfig::default());
        a.fit(&x, &ex);
        b.fit(&x, &ex);
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.bias(), b.bias());
    }

    #[test]
    fn fit_on_empty_is_noop() {
        let mut lr = LogisticRegression::new(SgdConfig::default());
        lr.fit(&Matrix::zeros(0, 0), &[]);
        assert!(!lr.is_fit());
    }
}
