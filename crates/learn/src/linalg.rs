//! Minimal dense linear algebra.
//!
//! The learners need exactly three kernels — dot products, scaled
//! accumulation (axpy), and row access over a dense row-major matrix — so
//! that is all we build. Everything is `f64`; feature counts in the
//! reproduction top out at 3072 (the CIFAR-like task), well within scalar
//! throughput for the training-set sizes involved (≤ a few thousand rows).

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/buffer mismatch");
        Matrix { rows, cols, data }
    }

    /// Build from row slices.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map(|x| x.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (feature dimensionality).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Flat data buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Append a row (must match `cols`, or set it if the matrix is empty).
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "push_row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Simple 4-lane unrolling: lets LLVM vectorize without fast-math.
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for j in chunks * 4..a.len() {
        s += a[j] * b[j];
    }
    s
}

/// `y += alpha * x` over equal-length slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y *= alpha` in place.
#[inline]
pub fn scale(alpha: f64, y: &mut [f64]) {
    for yi in y {
        *yi *= alpha;
    }
}

/// Numerically stable softmax over `logits`, written into `out`.
pub fn softmax_into(logits: &[f64], out: &mut [f64]) {
    debug_assert_eq!(logits.len(), out.len());
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for (o, &l) in out.iter_mut().zip(logits) {
        let e = (l - max).exp();
        *o = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for o in out.iter_mut() {
        *o *= inv;
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Index of the maximum element (first on ties).
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shape_and_access() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn push_row_grows() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn ragged_push_rejected() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0]);
    }

    #[test]
    fn dot_matches_naive_for_odd_lengths() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 13] {
            let a: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-10, "n={n}");
        }
    }

    #[test]
    fn axpy_and_scale() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 10.0, 10.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 14.0, 16.0]);
        scale(0.5, &mut y);
        assert_eq!(y, [6.0, 7.0, 8.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let logits = [1000.0, 1001.0, 999.0];
        let mut out = [0.0; 3];
        softmax_into(&logits, &mut out);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(out.iter().all(|p| p.is_finite() && *p > 0.0));
        assert!(out[1] > out[0] && out[0] > out[2]);
    }

    #[test]
    fn sigmoid_symmetry_and_extremes() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(sigmoid(800.0) <= 1.0);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }
}
