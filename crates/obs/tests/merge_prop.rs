//! Property tests for the snapshot merge the sweep fold relies on:
//! merging per-job registries must be associative (and commutative for
//! this value domain), so a parallel sweep folding in job-index order
//! agrees with any serial regrouping.

use clamshell_obs::registry::{MetricsSnapshot, OCCUPANCY_BOUNDS, QUEUE_DEPTH_BOUNDS};
use clamshell_obs::{names, MetricsRegistry};
use proptest::prelude::*;

/// Build a snapshot from a compact seed tuple: counter deltas, gauge
/// values, and histogram observations across a shared name set.
fn snapshot(
    dispatch: u64,
    walkout: u64,
    hwm: u64,
    depth_obs: Vec<u64>,
    occ_obs: Vec<u64>,
) -> MetricsSnapshot {
    let mut r = MetricsRegistry::new();
    r.add(names::RUNNER_DISPATCH, dispatch);
    r.add(names::RUNNER_WALKOUT, walkout);
    r.gauge_max(names::RUNNER_QUEUE_DEPTH_HWM, hwm);
    for v in depth_obs {
        r.observe(names::RUNNER_QUEUE_DEPTH, QUEUE_DEPTH_BOUNDS, v);
    }
    for v in occ_obs {
        r.observe(names::POOL_OCCUPANCY, OCCUPANCY_BOUNDS, v);
    }
    r.snapshot()
}

fn arb_snapshot() -> impl proptest::strategy::Strategy<Value = MetricsSnapshot> {
    (
        0u64..1000,
        0u64..1000,
        0u64..500,
        proptest::collection::vec(0u64..300, 0..6),
        proptest::collection::vec(0u64..100, 0..6),
    )
        .prop_map(|(d, w, h, depth, occ)| snapshot(d, w, h, depth, occ))
}

fn merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn merge_is_associative(
        a in arb_snapshot(),
        b in arb_snapshot(),
        c in arb_snapshot(),
    ) {
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_commutative(a in arb_snapshot(), b in arb_snapshot()) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn empty_is_identity(a in arb_snapshot()) {
        let empty = MetricsSnapshot::default();
        prop_assert_eq!(merged(&a, &empty), a.clone());
        prop_assert_eq!(merged(&empty, &a), a);
    }
}
