//! JSONL trace rendering and the FNV-1a trace fingerprint.
//!
//! The wire format is deliberately hand-rolled: every line is rendered
//! field-by-field in a fixed order, so the bytes are a function of the
//! event stream alone — no map-iteration or float-formatting ambiguity.
//! That makes the rendered trace (and its fingerprint) a golden artifact
//! that must be byte-identical across thread counts.
//!
//! Schema, version 1. Each `(scenario, seed)` section is one header line
//! followed by one line per retained event:
//!
//! ```text
//! {"v":1,"stream":"clamshell-trace","scenario":"<name>","seed":<n>,
//!  "events":<n>,"recorded":<n>,"dropped":<n>,"fingerprint":"fnv1a:<16 hex>"}
//! {"v":1,"seq":<n>,"at_ms":<n>,"ev":"<event-name>",...variant fields}
//! ```
//!
//! Versioning contract: existing fields never change meaning or order;
//! additions bump `TRACE_SCHEMA_VERSION`.

use std::fmt::Write as _;

use crate::recorder::{TraceEvent, TraceKind};

/// Bump on any change to line shape or field order.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// 64-bit FNV-1a, same constants as the report fingerprints in
/// `clamshell-scenarios`.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// `"fnv1a:<16 lowercase hex digits>"` — the committed/logged form.
pub fn fingerprint_hex(fp: u64) -> String {
    format!("fnv1a:{fp:016x}")
}

/// Render one event line (no trailing newline).
pub fn render_event(event: &TraceEvent) -> String {
    let mut line = String::with_capacity(96);
    let _ = write!(
        line,
        "{{\"v\":{},\"seq\":{},\"at_ms\":{},\"ev\":\"{}\"",
        TRACE_SCHEMA_VERSION,
        event.seq,
        event.at_ms,
        event.kind.event_name().as_str()
    );
    match event.kind {
        TraceKind::Checkout { worker, waited_ms } => {
            let _ = write!(line, ",\"worker\":{worker},\"waited_ms\":{waited_ms}");
        }
        TraceKind::Dispatch { worker, task, assignment } => {
            let _ =
                write!(line, ",\"worker\":{worker},\"task\":{task},\"assignment\":{assignment}");
        }
        TraceKind::AssignmentDone { worker, task, assignment, span_ms } => {
            let _ = write!(
                line,
                ",\"worker\":{worker},\"task\":{task},\"assignment\":{assignment},\"span_ms\":{span_ms}"
            );
        }
        TraceKind::Walkout { worker, task, assignment } => {
            let _ =
                write!(line, ",\"worker\":{worker},\"task\":{task},\"assignment\":{assignment}");
        }
        TraceKind::ReserveTimeout { worker }
        | TraceKind::StaleRetired { worker }
        | TraceKind::MaintenanceEvict { worker } => {
            let _ = write!(line, ",\"worker\":{worker}");
        }
        TraceKind::OutageDefer { resume_ms } => {
            let _ = write!(line, ",\"resume_ms\":{resume_ms}");
        }
        TraceKind::OutageResume => {}
        TraceKind::PoolJoin { worker, occupancy } | TraceKind::PoolLeave { worker, occupancy } => {
            let _ = write!(line, ",\"worker\":{worker},\"occupancy\":{occupancy}");
        }
    }
    line.push('}');
    line
}

/// FNV-1a over every event's fixed-width encoding: `seq` and `at_ms` as
/// LE `u64`, the kind index as one byte, then the variant's payload
/// (see [`TraceKind::field_values`]) as LE `u64`s in render order.
///
/// This hashes exactly the information the rendered JSONL line carries —
/// [`render_event`] is a pure function of these fields — but skips the
/// per-event string rendering, keeping `into_report` off the formatting
/// path (the whole-run overhead guard in the `hotloop` bench depends on
/// this). Equal fingerprints therefore imply byte-identical rendered
/// traces, and the committed golden fingerprints pin the stream just as
/// tightly as hashing the text would.
pub fn fingerprint_events<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> u64 {
    let mut fnv = Fnv::new();
    for event in events {
        fnv.write(&event.seq.to_le_bytes());
        fnv.write(&event.at_ms.to_le_bytes());
        fnv.write(&[event.kind.index() as u8]);
        let (values, n) = event.kind.field_values();
        for value in &values[..n] {
            fnv.write(&value.to_le_bytes());
        }
    }
    fnv.finish()
}

/// Render the section header line (no trailing newline).
pub fn render_header(
    scenario: &str,
    seed: u64,
    events: usize,
    recorded: u64,
    dropped: u64,
    fingerprint: u64,
) -> String {
    format!(
        "{{\"v\":{},\"stream\":\"clamshell-trace\",\"scenario\":\"{}\",\"seed\":{},\"events\":{},\"recorded\":{},\"dropped\":{},\"fingerprint\":\"{}\"}}",
        TRACE_SCHEMA_VERSION,
        escape(scenario),
        seed,
        events,
        recorded,
        dropped,
        fingerprint_hex(fingerprint)
    )
}

/// Minimal JSON string escape; scenario names are plain slugs but the
/// renderer must never emit malformed JSON regardless.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal structural check for the flat (non-nested) objects this
    /// renderer emits: balanced outer braces, well-paired quotes, and
    /// `"key":value` comma separation. The vendored serde_json has no
    /// parser, so the CI schema validation uses python3; this keeps a
    /// sanity net inside the crate too.
    fn assert_flat_json_object(line: &str) {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        let body = &line[1..line.len() - 1];
        let mut in_str = false;
        let mut escaped = false;
        let mut pairs = Vec::new();
        let mut start = 0;
        for (i, c) in body.char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' if in_str => escaped = true,
                '"' => in_str = !in_str,
                ',' if !in_str => {
                    pairs.push(&body[start..i]);
                    start = i + 1;
                }
                '{' | '}' if !in_str => panic!("nested object in flat line: {line}"),
                _ => {}
            }
        }
        assert!(!in_str, "unterminated string: {line}");
        pairs.push(&body[start..]);
        for pair in pairs {
            let (key, value) = pair.split_once(':').expect("key:value pair");
            assert!(
                key.starts_with('"') && key.ends_with('"') && key.len() >= 3,
                "bad key in {line}"
            );
            let is_num = value.bytes().all(|b| b.is_ascii_digit()) && !value.is_empty();
            let is_str = value.starts_with('"') && value.ends_with('"') && value.len() >= 2;
            assert!(is_num || is_str, "bad value {value:?} in {line}");
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(Fnv::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut a = Fnv::new();
        a.write(b"a");
        assert_eq!(a.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut foobar = Fnv::new();
        foobar.write(b"foobar");
        assert_eq!(foobar.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn event_lines_are_stable() {
        let e = TraceEvent {
            seq: 7,
            at_ms: 1250,
            kind: TraceKind::AssignmentDone { worker: 3, task: 11, assignment: 42, span_ms: 900 },
        };
        assert_eq!(
            render_event(&e),
            "{\"v\":1,\"seq\":7,\"at_ms\":1250,\"ev\":\"assignment_done\",\"worker\":3,\"task\":11,\"assignment\":42,\"span_ms\":900}"
        );
        let bare = TraceEvent { seq: 0, at_ms: 0, kind: TraceKind::OutageResume };
        assert_eq!(render_event(&bare), "{\"v\":1,\"seq\":0,\"at_ms\":0,\"ev\":\"outage_resume\"}");
    }

    #[test]
    fn every_line_parses_as_json() {
        let kinds = [
            TraceKind::Checkout { worker: 1, waited_ms: 2 },
            TraceKind::Dispatch { worker: 1, task: 2, assignment: 3 },
            TraceKind::AssignmentDone { worker: 1, task: 2, assignment: 3, span_ms: 4 },
            TraceKind::Walkout { worker: 1, task: 2, assignment: 3 },
            TraceKind::ReserveTimeout { worker: 1 },
            TraceKind::StaleRetired { worker: 1 },
            TraceKind::MaintenanceEvict { worker: 1 },
            TraceKind::OutageDefer { resume_ms: 5 },
            TraceKind::OutageResume,
            TraceKind::PoolJoin { worker: 1, occupancy: 2 },
            TraceKind::PoolLeave { worker: 1, occupancy: 2 },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let line = render_event(&TraceEvent { seq: i as u64, at_ms: 10 * i as u64, kind });
            assert_flat_json_object(&line);
            assert!(line.starts_with("{\"v\":1,\"seq\":"), "{line}");
            assert!(line.contains(",\"at_ms\":"), "{line}");
            assert!(line.contains(",\"ev\":\""), "{line}");
        }
        let header = render_header("blackout", 42, 10, 12, 2, 0xdead_beef);
        assert_flat_json_object(&header);
        assert!(header.contains("\"fingerprint\":\"fnv1a:00000000deadbeef\""));
    }

    #[test]
    fn fingerprint_tracks_event_bytes() {
        let a = TraceEvent { seq: 0, at_ms: 1, kind: TraceKind::ReserveTimeout { worker: 5 } };
        let b = TraceEvent { seq: 1, at_ms: 2, kind: TraceKind::ReserveTimeout { worker: 6 } };
        let fp_ab = fingerprint_events([&a, &b]);
        let fp_ba = fingerprint_events([&b, &a]);
        assert_ne!(fp_ab, fp_ba, "fingerprint must be order-sensitive");
        assert_eq!(fp_ab, fingerprint_events(vec![&a, &b]));
        // Same payload, different kind: the kind index byte must keep
        // the encodings distinct.
        let join =
            TraceEvent { seq: 0, at_ms: 1, kind: TraceKind::PoolJoin { worker: 5, occupancy: 2 } };
        let leave = TraceEvent { kind: TraceKind::PoolLeave { worker: 5, occupancy: 2 }, ..join };
        assert_ne!(fingerprint_events([&join]), fingerprint_events([&leave]));
    }
}
