//! Sim-time metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! All storage is ordered (`BTreeMap` keyed by the `&'static str` behind
//! a [`MetricName`]), so iteration — and therefore serialization and the
//! trace fingerprint — is deterministic. There are no wall-clock reads
//! anywhere: values are observed at simulation timestamps supplied by
//! the caller, and the registry itself stores no times at all.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::name::MetricName;

/// Bucket upper bounds (inclusive) for assignment-span latencies, in
/// simulated milliseconds. One extra overflow bucket is appended.
pub const SPAN_BOUNDS_MS: &[u64] = &[250, 500, 1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000];

/// Bucket upper bounds (inclusive) for ready-queue depth samples.
pub const QUEUE_DEPTH_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 128];

/// Bucket upper bounds (inclusive) for retainer-pool occupancy samples.
pub const OCCUPANCY_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64];

/// A fixed-bucket histogram. `counts.len() == bounds.len() + 1`; the
/// last bucket counts observations above every bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: &'static [u64],
    counts: Vec<u64>,
}

impl Histogram {
    pub fn new(bounds: &'static [u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram { bounds, counts: vec![0; bounds.len() + 1] }
    }

    /// Count `value` in the first bucket whose bound it does not exceed.
    pub fn observe(&mut self, value: u64) {
        let idx = self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
    }

    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// The live registry held by an enabled runner. Keys are `&'static str`
/// (zero-copy, D001-clean ordered storage); [`MetricsRegistry::snapshot`]
/// converts to owned strings for the serializable ride-along report.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    pub fn inc(&mut self, name: MetricName) {
        self.add(name, 1);
    }

    pub fn add(&mut self, name: MetricName, delta: u64) {
        *self.counters.entry(name.as_str()).or_insert(0) += delta;
    }

    /// High-water-mark gauge: keeps the maximum value ever set.
    pub fn gauge_max(&mut self, name: MetricName, value: u64) {
        let slot = self.gauges.entry(name.as_str()).or_insert(0);
        if value > *slot {
            *slot = value;
        }
    }

    pub fn observe(&mut self, name: MetricName, bounds: &'static [u64], value: u64) {
        self.histograms
            .entry(name.as_str())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Merge a whole histogram in (used when folding `PoolObs` counts).
    pub fn absorb_histogram(&mut self, name: MetricName, bounds: &'static [u64], counts: &[u64]) {
        let hist = self.histograms.entry(name.as_str()).or_insert_with(|| Histogram::new(bounds));
        assert_eq!(hist.counts.len(), counts.len(), "histogram shape mismatch");
        for (slot, &c) in hist.counts.iter_mut().zip(counts) {
            *slot += c;
        }
    }

    pub fn counter(&self, name: MetricName) -> u64 {
        self.counters.get(name.as_str()).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: MetricName) -> u64 {
        self.gauges.get(name.as_str()).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: MetricName) -> Option<&Histogram> {
        self.histograms.get(name.as_str())
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.to_string(),
                        HistogramSnapshot { bounds: h.bounds.to_vec(), counts: h.counts.clone() },
                    )
                })
                .collect(),
        }
    }
}

/// Owned, serializable histogram state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct HistogramSnapshot {
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
}

/// Owned, serializable registry state. This is what rides along on
/// `RunReport` and what `sweep` folds across jobs: counters add,
/// high-water gauges take the max, histograms add bucket-wise — all
/// associative and commutative, so a parallel sweep folding per-job
/// snapshots in job-index order reduces to the same value as a serial
/// one (the same contract `OnlineStats::merge` upholds).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold `other` into `self`. Histograms under the same name must
    /// share bucket bounds (they always do: bounds come from the static
    /// tables above).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(0);
            if *v > *slot {
                *slot = *v;
            }
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
                Some(mine) => {
                    assert_eq!(mine.bounds, h.bounds, "histogram bounds mismatch for {k}");
                    for (slot, &c) in mine.counts.iter_mut().zip(&h.counts) {
                        *slot += c;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::names;

    #[test]
    fn histogram_buckets_are_inclusive_with_overflow() {
        let mut h = Histogram::new(&[10, 20]);
        h.observe(0);
        h.observe(10);
        h.observe(11);
        h.observe(20);
        h.observe(21);
        h.observe(u64::MAX);
        assert_eq!(h.counts(), &[2, 2, 2]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn registry_roundtrip_and_snapshot() {
        let mut r = MetricsRegistry::new();
        r.inc(names::RUNNER_DISPATCH);
        r.add(names::RUNNER_DISPATCH, 2);
        r.gauge_max(names::RUNNER_QUEUE_DEPTH_HWM, 5);
        r.gauge_max(names::RUNNER_QUEUE_DEPTH_HWM, 3);
        r.observe(names::RUNNER_QUEUE_DEPTH, QUEUE_DEPTH_BOUNDS, 4);
        assert_eq!(r.counter(names::RUNNER_DISPATCH), 3);
        assert_eq!(r.gauge(names::RUNNER_QUEUE_DEPTH_HWM), 5);

        let s = r.snapshot();
        assert_eq!(s.counters["runner.dispatch"], 3);
        assert_eq!(s.gauges["runner.queue_depth_hwm"], 5);
        assert_eq!(s.histograms["runner.queue_depth"].counts.iter().sum::<u64>(), 1);
    }

    #[test]
    fn merge_adds_counters_maxes_gauges_sums_histograms() {
        let mut a = MetricsRegistry::new();
        a.inc(names::RUNNER_WALKOUT);
        a.gauge_max(names::POOL_OCCUPANCY_HWM, 4);
        a.observe(names::POOL_OCCUPANCY, OCCUPANCY_BOUNDS, 2);
        let mut b = MetricsRegistry::new();
        b.add(names::RUNNER_WALKOUT, 5);
        b.gauge_max(names::POOL_OCCUPANCY_HWM, 2);
        b.observe(names::POOL_OCCUPANCY, OCCUPANCY_BOUNDS, 100);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counters["runner.walkout"], 6);
        assert_eq!(merged.gauges["pool.occupancy_hwm"], 4);
        assert_eq!(merged.histograms["pool.occupancy"].counts.iter().sum::<u64>(), 2);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut r = MetricsRegistry::new();
        r.inc(names::POOL_JOIN);
        r.observe(names::POOL_OCCUPANCY, OCCUPANCY_BOUNDS, 1);
        let snap = r.snapshot();

        let mut left = MetricsSnapshot::default();
        left.merge(&snap);
        assert_eq!(left, snap);

        let mut right = snap.clone();
        right.merge(&MetricsSnapshot::default());
        assert_eq!(right, snap);
    }
}
