//! The observability switch carried on `RunConfig`.

use serde::{Deserialize, Serialize};

/// Default flight-recorder capacity: large enough to hold every event of
/// a `--quick` scenario run, small enough that an enabled long run stays
/// bounded-memory (older events are dropped and counted, not lost
/// silently).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Observability configuration. `Default` is fully disabled: the runner
/// allocates no observer, records nothing, and — critically for the
/// reproducibility contract — draws zero extra RNG values, so enabling
/// or disabling observability can never perturb a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Master switch for the registry + flight recorder.
    pub enabled: bool,
    /// Bounded capacity of the flight-recorder ring buffer.
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig { enabled: false, ring_capacity: DEFAULT_RING_CAPACITY }
    }
}

impl ObsConfig {
    /// Enabled with the default ring capacity.
    pub fn on() -> Self {
        ObsConfig { enabled: true, ..ObsConfig::default() }
    }

    /// Enabled with an explicit ring capacity.
    pub fn with_ring(ring_capacity: usize) -> Self {
        ObsConfig { enabled: true, ring_capacity }
    }

    pub fn validate(&self) {
        if self.enabled {
            assert!(self.ring_capacity >= 1, "obs ring capacity must be >= 1");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off() {
        let cfg = ObsConfig::default();
        assert!(!cfg.enabled);
        assert_eq!(cfg.ring_capacity, DEFAULT_RING_CAPACITY);
        cfg.validate();
    }

    #[test]
    fn on_enables_with_default_ring() {
        let cfg = ObsConfig::on();
        assert!(cfg.enabled);
        assert_eq!(cfg.ring_capacity, DEFAULT_RING_CAPACITY);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "ring capacity")]
    fn zero_ring_rejected_when_enabled() {
        ObsConfig::with_ring(0).validate();
    }
}
