//! Static metric and trace-event names.
//!
//! Every name in the workspace is declared exactly once, here, as a
//! `const`. Lint rule D007 enforces the contract: `MetricName(..)` /
//! `EventName(..)` constructor calls must take a plain string literal on
//! the same line, and the literal values must be unique workspace-wide —
//! so instrumentation sites reference these consts rather than re-typing
//! strings, and two subsystems can never silently share a name.

use serde::{Deserialize, Serialize};

/// Key for a counter, gauge, or histogram in the [`MetricsRegistry`].
///
/// [`MetricsRegistry`]: crate::MetricsRegistry
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetricName(pub &'static str);

impl MetricName {
    pub fn as_str(self) -> &'static str {
        self.0
    }
}

/// The `"ev"` discriminator of a JSONL trace line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventName(pub &'static str);

impl EventName {
    pub fn as_str(self) -> &'static str {
        self.0
    }
}

/// The single workspace-wide name registry.
pub mod names {
    use super::{EventName, MetricName};

    // Runner event counters (incremented once per recorded trace event).
    pub const RUNNER_CHECKOUT: MetricName = MetricName("runner.checkout");
    pub const RUNNER_DISPATCH: MetricName = MetricName("runner.dispatch");
    pub const RUNNER_ASSIGNMENT_DONE: MetricName = MetricName("runner.assignment_done");
    pub const RUNNER_WALKOUT: MetricName = MetricName("runner.walkout");
    pub const RUNNER_RESERVE_TIMEOUT: MetricName = MetricName("runner.reserve_timeout");
    pub const RUNNER_STALE_RETIRED: MetricName = MetricName("runner.stale_retired");
    pub const RUNNER_MAINTENANCE_EVICT: MetricName = MetricName("runner.maintenance_evict");
    pub const RUNNER_OUTAGE_DEFER: MetricName = MetricName("runner.outage_defer");
    pub const RUNNER_OUTAGE_RESUME: MetricName = MetricName("runner.outage_resume");

    // Runner distributions.
    pub const RUNNER_ASSIGNMENT_SPAN_MS: MetricName = MetricName("runner.assignment_span_ms");
    pub const RUNNER_QUEUE_DEPTH: MetricName = MetricName("runner.queue_depth");
    pub const RUNNER_QUEUE_DEPTH_HWM: MetricName = MetricName("runner.queue_depth_hwm");

    // Retainer-pool state transitions (folded in from `PoolObs`).
    pub const POOL_JOIN: MetricName = MetricName("pool.join");
    pub const POOL_LEAVE: MetricName = MetricName("pool.leave");
    pub const POOL_CHECKIN: MetricName = MetricName("pool.checkin");
    pub const POOL_OCCUPANCY: MetricName = MetricName("pool.occupancy");
    pub const POOL_OCCUPANCY_HWM: MetricName = MetricName("pool.occupancy_hwm");

    // Trace-event discriminators (the `"ev"` field in JSONL lines).
    pub const EV_CHECKOUT: EventName = EventName("checkout");
    pub const EV_DISPATCH: EventName = EventName("dispatch");
    pub const EV_ASSIGNMENT_DONE: EventName = EventName("assignment_done");
    pub const EV_WALKOUT: EventName = EventName("walkout");
    pub const EV_RESERVE_TIMEOUT: EventName = EventName("reserve_timeout");
    pub const EV_STALE_RETIRED: EventName = EventName("stale_retired");
    pub const EV_MAINTENANCE_EVICT: EventName = EventName("maintenance_evict");
    pub const EV_OUTAGE_DEFER: EventName = EventName("outage_defer");
    pub const EV_OUTAGE_RESUME: EventName = EventName("outage_resume");
    pub const EV_POOL_JOIN: EventName = EventName("pool_join");
    pub const EV_POOL_LEAVE: EventName = EventName("pool_leave");
}

#[cfg(test)]
mod tests {
    use super::names;

    #[test]
    fn metric_and_event_names_are_unique() {
        // The lint enforces this statically across the workspace; this
        // test keeps the registry honest even when lint doesn't run.
        let all: &[&str] = &[
            names::RUNNER_CHECKOUT.as_str(),
            names::RUNNER_DISPATCH.as_str(),
            names::RUNNER_ASSIGNMENT_DONE.as_str(),
            names::RUNNER_WALKOUT.as_str(),
            names::RUNNER_RESERVE_TIMEOUT.as_str(),
            names::RUNNER_STALE_RETIRED.as_str(),
            names::RUNNER_MAINTENANCE_EVICT.as_str(),
            names::RUNNER_OUTAGE_DEFER.as_str(),
            names::RUNNER_OUTAGE_RESUME.as_str(),
            names::RUNNER_ASSIGNMENT_SPAN_MS.as_str(),
            names::RUNNER_QUEUE_DEPTH.as_str(),
            names::RUNNER_QUEUE_DEPTH_HWM.as_str(),
            names::POOL_JOIN.as_str(),
            names::POOL_LEAVE.as_str(),
            names::POOL_CHECKIN.as_str(),
            names::POOL_OCCUPANCY.as_str(),
            names::POOL_OCCUPANCY_HWM.as_str(),
            names::EV_CHECKOUT.as_str(),
            names::EV_DISPATCH.as_str(),
            names::EV_ASSIGNMENT_DONE.as_str(),
            names::EV_WALKOUT.as_str(),
            names::EV_RESERVE_TIMEOUT.as_str(),
            names::EV_STALE_RETIRED.as_str(),
            names::EV_MAINTENANCE_EVICT.as_str(),
            names::EV_OUTAGE_DEFER.as_str(),
            names::EV_OUTAGE_RESUME.as_str(),
            names::EV_POOL_JOIN.as_str(),
            names::EV_POOL_LEAVE.as_str(),
        ];
        let mut sorted = all.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "duplicate metric/event name");
    }
}
