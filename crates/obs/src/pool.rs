//! Per-pool transition counters carried inside `crowd::RetainerPool`.
//!
//! The pool cannot depend on the runner's observer (it is a value type
//! that gets cloned and serialized with the rest of the runner state),
//! so an enabled pool carries this small struct and the runner folds it
//! into the shared registry at `finish()`.

use serde::{Deserialize, Serialize};

use crate::registry::OCCUPANCY_BOUNDS;

/// Counters and an occupancy distribution for one retainer pool.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolObs {
    pub joins: u64,
    pub leaves: u64,
    pub checkouts: u64,
    pub checkins: u64,
    pub occupancy_hwm: u64,
    /// Occupancy sampled at every join/leave, bucketed against
    /// [`OCCUPANCY_BOUNDS`] (`len == bounds + 1`, last bucket overflow).
    pub occupancy_counts: Vec<u64>,
}

impl Default for PoolObs {
    fn default() -> Self {
        PoolObs::new()
    }
}

impl PoolObs {
    pub fn new() -> Self {
        PoolObs {
            joins: 0,
            leaves: 0,
            checkouts: 0,
            checkins: 0,
            occupancy_hwm: 0,
            occupancy_counts: vec![0; OCCUPANCY_BOUNDS.len() + 1],
        }
    }

    fn sample(&mut self, occupancy: u64) {
        if occupancy > self.occupancy_hwm {
            self.occupancy_hwm = occupancy;
        }
        let idx =
            OCCUPANCY_BOUNDS.iter().position(|&b| occupancy <= b).unwrap_or(OCCUPANCY_BOUNDS.len());
        self.occupancy_counts[idx] += 1;
    }

    /// A worker joined; `occupancy` is the pool size immediately after.
    pub fn note_join(&mut self, occupancy: u64) {
        self.joins += 1;
        self.sample(occupancy);
    }

    /// A worker left; `occupancy` is the pool size immediately after.
    pub fn note_leave(&mut self, occupancy: u64) {
        self.leaves += 1;
        self.sample(occupancy);
    }

    /// A waiting worker was checked out to start work.
    pub fn note_checkout(&mut self) {
        self.checkouts += 1;
    }

    /// A working worker finished and checked back in (or departed).
    pub fn note_checkin(&mut self) {
        self.checkins += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_accumulate() {
        let mut obs = PoolObs::new();
        obs.note_join(1);
        obs.note_join(2);
        obs.note_checkout();
        obs.note_checkin();
        obs.note_leave(1);
        assert_eq!(obs.joins, 2);
        assert_eq!(obs.leaves, 1);
        assert_eq!(obs.checkouts, 1);
        assert_eq!(obs.checkins, 1);
        assert_eq!(obs.occupancy_hwm, 2);
        assert_eq!(obs.occupancy_counts.iter().sum::<u64>(), 3);
    }

    #[test]
    fn occupancy_overflow_bucket() {
        let mut obs = PoolObs::new();
        obs.note_join(1_000_000);
        assert_eq!(*obs.occupancy_counts.last().unwrap(), 1);
        assert_eq!(obs.occupancy_hwm, 1_000_000);
    }
}
