//! Flight recorder: a bounded ring buffer of structured runner events.
//!
//! The recorder never grows past its configured capacity: when full, the
//! oldest event is evicted and counted in `dropped`, so long enabled
//! runs stay bounded-memory while the tail — the part you want when a
//! run panics or an invariant trips — is always retained. Sequence
//! numbers are global (they keep counting across drops), so a trace
//! consumer can tell exactly which prefix is missing.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::name::{names, EventName, MetricName};

/// One structured runner event. All ids are raw (`WorkerId.0`,
/// `TaskId.0`, `AssignmentId.0`) so this crate stays dependency-light;
/// all times are simulated milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A pooled worker left `Waiting` and started work; `waited_ms` is
    /// the retainer time paid for.
    Checkout { worker: u32, waited_ms: u64 },
    /// The runner routed a task to a worker.
    Dispatch { worker: u32, task: u32, assignment: u32 },
    /// An assignment completed and was recorded.
    AssignmentDone { worker: u32, task: u32, assignment: u32, span_ms: u64 },
    /// A worker abandoned mid-assignment (churn walkout).
    Walkout { worker: u32, task: u32, assignment: u32 },
    /// A reserve worker's patience expired before being used.
    ReserveTimeout { worker: u32 },
    /// A pooled worker from an old generation was retired at dispatch.
    StaleRetired { worker: u32 },
    /// The maintainer evicted a low-performing pooled worker.
    MaintenanceEvict { worker: u32 },
    /// A platform outage deferred event delivery until `resume_ms`.
    OutageDefer { resume_ms: u64 },
    /// Simulation time passed the end of an outage window.
    OutageResume,
    /// A worker joined the retainer pool; `occupancy` is the pool size
    /// immediately after.
    PoolJoin { worker: u32, occupancy: u64 },
    /// A worker left the retainer pool; `occupancy` is the pool size
    /// immediately after.
    PoolLeave { worker: u32, occupancy: u64 },
}

impl TraceKind {
    /// The JSONL `"ev"` discriminator for this event.
    pub fn event_name(&self) -> EventName {
        match self {
            TraceKind::Checkout { .. } => names::EV_CHECKOUT,
            TraceKind::Dispatch { .. } => names::EV_DISPATCH,
            TraceKind::AssignmentDone { .. } => names::EV_ASSIGNMENT_DONE,
            TraceKind::Walkout { .. } => names::EV_WALKOUT,
            TraceKind::ReserveTimeout { .. } => names::EV_RESERVE_TIMEOUT,
            TraceKind::StaleRetired { .. } => names::EV_STALE_RETIRED,
            TraceKind::MaintenanceEvict { .. } => names::EV_MAINTENANCE_EVICT,
            TraceKind::OutageDefer { .. } => names::EV_OUTAGE_DEFER,
            TraceKind::OutageResume => names::EV_OUTAGE_RESUME,
            TraceKind::PoolJoin { .. } => names::EV_POOL_JOIN,
            TraceKind::PoolLeave { .. } => names::EV_POOL_LEAVE,
        }
    }

    /// The registry counter incremented once per recorded event.
    pub fn counter(&self) -> MetricName {
        KIND_COUNTERS[self.index()]
    }

    /// Number of event kinds ([`Self::index`] is always `< COUNT`).
    pub const COUNT: usize = 11;

    /// Dense kind index — lets the observer keep per-kind counters in a
    /// flat array on the hot path instead of a map lookup per event.
    pub fn index(&self) -> usize {
        match self {
            TraceKind::Checkout { .. } => 0,
            TraceKind::Dispatch { .. } => 1,
            TraceKind::AssignmentDone { .. } => 2,
            TraceKind::Walkout { .. } => 3,
            TraceKind::ReserveTimeout { .. } => 4,
            TraceKind::StaleRetired { .. } => 5,
            TraceKind::MaintenanceEvict { .. } => 6,
            TraceKind::OutageDefer { .. } => 7,
            TraceKind::OutageResume => 8,
            TraceKind::PoolJoin { .. } => 9,
            TraceKind::PoolLeave { .. } => 10,
        }
    }

    /// The variant's numeric payload, widened to `u64`, in the same
    /// order the JSONL renderer emits the fields. Feeds the trace
    /// fingerprint: together with [`Self::index`] this is exactly the
    /// information the rendered line carries.
    pub fn field_values(&self) -> ([u64; 4], usize) {
        match *self {
            TraceKind::Checkout { worker, waited_ms } => ([worker.into(), waited_ms, 0, 0], 2),
            TraceKind::Dispatch { worker, task, assignment }
            | TraceKind::Walkout { worker, task, assignment } => {
                ([worker.into(), task.into(), assignment.into(), 0], 3)
            }
            TraceKind::AssignmentDone { worker, task, assignment, span_ms } => {
                ([worker.into(), task.into(), assignment.into(), span_ms], 4)
            }
            TraceKind::ReserveTimeout { worker }
            | TraceKind::StaleRetired { worker }
            | TraceKind::MaintenanceEvict { worker } => ([worker.into(), 0, 0, 0], 1),
            TraceKind::OutageDefer { resume_ms } => ([resume_ms, 0, 0, 0], 1),
            TraceKind::OutageResume => ([0, 0, 0, 0], 0),
            TraceKind::PoolJoin { worker, occupancy }
            | TraceKind::PoolLeave { worker, occupancy } => ([worker.into(), occupancy, 0, 0], 2),
        }
    }
}

/// Counter names aligned with [`TraceKind::index`].
pub const KIND_COUNTERS: [MetricName; TraceKind::COUNT] = [
    names::RUNNER_CHECKOUT,
    names::RUNNER_DISPATCH,
    names::RUNNER_ASSIGNMENT_DONE,
    names::RUNNER_WALKOUT,
    names::RUNNER_RESERVE_TIMEOUT,
    names::RUNNER_STALE_RETIRED,
    names::RUNNER_MAINTENANCE_EVICT,
    names::RUNNER_OUTAGE_DEFER,
    names::RUNNER_OUTAGE_RESUME,
    names::POOL_JOIN,
    names::POOL_LEAVE,
];

/// A recorded event: global sequence number + sim-time millisecond stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    pub seq: u64,
    pub at_ms: u64,
    pub kind: TraceKind,
}

/// The bounded ring buffer.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    next_seq: u64,
    dropped: u64,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "flight recorder capacity must be >= 1");
        FlightRecorder {
            capacity,
            events: VecDeque::with_capacity(capacity),
            next_seq: 0,
            dropped: 0,
        }
    }

    pub fn record(&mut self, at_ms: u64, kind: TraceKind) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent { seq: self.next_seq, at_ms, kind });
        self.next_seq += 1;
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded, including dropped ones.
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted from the ring to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(worker: u32) -> TraceKind {
        TraceKind::ReserveTimeout { worker }
    }

    #[test]
    fn records_in_order_below_capacity() {
        let mut r = FlightRecorder::new(8);
        for i in 0..5 {
            r.record(i * 10, ev(i as u32));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 0);
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wraps_dropping_oldest_and_counts_drops() {
        let mut r = FlightRecorder::new(3);
        for i in 0..10 {
            r.record(i, ev(i as u32));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.dropped(), 7);
        // The tail survives; sequence numbers expose the gap.
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        assert_eq!(r.dropped() + r.len() as u64, r.recorded());
    }

    #[test]
    fn capacity_one_keeps_only_latest() {
        let mut r = FlightRecorder::new(1);
        r.record(1, ev(1));
        r.record(2, ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().map(|e| e.seq), Some(1));
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        FlightRecorder::new(0);
    }
}
