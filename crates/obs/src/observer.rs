//! The per-run observer owned by an enabled `Runner`, and the
//! serializable [`ObsReport`] it collapses into at `finish()`.

use std::io::Write;

use clamshell_sim::time::SimTime;
use serde::{Deserialize, Serialize};

use crate::config::ObsConfig;
use crate::name::names;
use crate::pool::PoolObs;
use crate::recorder::{FlightRecorder, TraceEvent, TraceKind, KIND_COUNTERS};
use crate::registry::{Histogram, MetricsRegistry, MetricsSnapshot};
use crate::registry::{HistogramSnapshot, OCCUPANCY_BOUNDS, QUEUE_DEPTH_BOUNDS, SPAN_BOUNDS_MS};
use crate::trace::{self, TRACE_SCHEMA_VERSION};

/// Live observability state for one run: the metrics registry plus the
/// flight recorder. Constructed only when `ObsConfig.enabled`; the
/// disabled path holds `None` and costs one branch per instrumentation
/// point.
///
/// The per-event counters and histograms live in flat fields (array
/// index / bucket scan, no map lookup) so an enabled run stays cheap on
/// the hot path; they fold into the ordered registry once, at
/// [`RunObserver::into_report`].
#[derive(Debug, Clone)]
pub struct RunObserver {
    pub registry: MetricsRegistry,
    pub recorder: FlightRecorder,
    /// Per-kind event counts, indexed by [`TraceKind::index`].
    kind_counts: [u64; TraceKind::COUNT],
    /// Assignment-span histogram (`runner.assignment_span_ms`).
    span: Histogram,
    /// Ready-queue depth histogram (`runner.queue_depth`).
    queue_depth: Histogram,
    /// Ready-queue high-water mark (`runner.queue_depth_hwm`).
    queue_depth_hwm: u64,
    /// Queue-depth samples taken (0 = the gauge/histogram never existed).
    queue_samples: u64,
}

impl RunObserver {
    pub fn new(cfg: &ObsConfig) -> Self {
        cfg.validate();
        RunObserver {
            registry: MetricsRegistry::new(),
            recorder: FlightRecorder::new(cfg.ring_capacity),
            kind_counts: [0; TraceKind::COUNT],
            span: Histogram::new(SPAN_BOUNDS_MS),
            queue_depth: Histogram::new(QUEUE_DEPTH_BOUNDS),
            queue_depth_hwm: 0,
            queue_samples: 0,
        }
    }

    /// Record a structured event: appends to the ring, bumps the
    /// matching counter, and feeds the latency histogram for
    /// `AssignmentDone`.
    pub fn record(&mut self, at: SimTime, kind: TraceKind) {
        self.kind_counts[kind.index()] += 1;
        if let TraceKind::AssignmentDone { span_ms, .. } = kind {
            self.span.observe(span_ms);
        }
        self.recorder.record(at.as_millis(), kind);
    }

    /// Sample the ready-queue depth (histogram + high-water gauge).
    pub fn note_queue_depth(&mut self, depth: u64) {
        self.queue_samples += 1;
        self.queue_depth.observe(depth);
        if depth > self.queue_depth_hwm {
            self.queue_depth_hwm = depth;
        }
    }

    /// Fold the flat hot-path state into the ordered registry. Idempotent
    /// only in the trivial sense (the flat fields are left untouched), so
    /// it runs exactly once, from [`Self::into_report`].
    fn fold_hot_state(&mut self) {
        for (i, &n) in self.kind_counts.iter().enumerate() {
            if n > 0 {
                self.registry.add(KIND_COUNTERS[i], n);
            }
        }
        if self.span.total() > 0 {
            self.registry.absorb_histogram(
                names::RUNNER_ASSIGNMENT_SPAN_MS,
                SPAN_BOUNDS_MS,
                self.span.counts(),
            );
        }
        if self.queue_samples > 0 {
            self.registry.absorb_histogram(
                names::RUNNER_QUEUE_DEPTH,
                QUEUE_DEPTH_BOUNDS,
                self.queue_depth.counts(),
            );
            self.registry.gauge_max(names::RUNNER_QUEUE_DEPTH_HWM, self.queue_depth_hwm);
        }
    }

    /// Fold the pool's transition counters into the shared registry.
    /// Join/leave/checkout *counters* already arrive via trace events,
    /// so only the pool-local aggregates (check-ins, occupancy
    /// distribution and high-water mark) are absorbed here; the overlap
    /// is deliberately kept separate so the reconciliation tests can
    /// cross-check the two code paths against each other.
    pub fn absorb_pool(&mut self, pool: &PoolObs) {
        self.registry.add(names::POOL_CHECKIN, pool.checkins);
        self.registry.gauge_max(names::POOL_OCCUPANCY_HWM, pool.occupancy_hwm);
        self.registry.absorb_histogram(
            names::POOL_OCCUPANCY,
            OCCUPANCY_BOUNDS,
            &pool.occupancy_counts,
        );
    }

    /// Collapse into the serializable report that rides on `RunReport`.
    pub fn into_report(mut self) -> ObsReport {
        self.fold_hot_state();
        let recorded = self.recorder.recorded();
        let dropped = self.recorder.dropped();
        let fingerprint = trace::fingerprint_events(self.recorder.iter());
        ObsReport {
            schema: TRACE_SCHEMA_VERSION,
            metrics: self.registry.snapshot(),
            events: self.recorder.into_events(),
            recorded,
            dropped,
            fingerprint,
        }
    }

    /// Dump the retained ring to `out` as a JSONL section. Used on
    /// panic/invariant failure so the tail of the run is never lost.
    pub fn dump(&self, scenario: &str, seed: u64, out: &mut dyn Write) -> std::io::Result<()> {
        let fingerprint = trace::fingerprint_events(self.recorder.iter());
        writeln!(
            out,
            "{}",
            trace::render_header(
                scenario,
                seed,
                self.recorder.len(),
                self.recorder.recorded(),
                self.recorder.dropped(),
                fingerprint,
            )
        )?;
        for event in self.recorder.iter() {
            writeln!(out, "{}", trace::render_event(event))?;
        }
        Ok(())
    }
}

/// The serializable observability report attached to `RunReport` when
/// obs is enabled (`None` otherwise, keeping disabled reports
/// byte-identical to pre-obs builds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// Trace schema version the events were recorded under.
    pub schema: u32,
    pub metrics: MetricsSnapshot,
    /// Retained flight-recorder tail, oldest first.
    pub events: Vec<TraceEvent>,
    /// Total events recorded, including any evicted from the ring.
    pub recorded: u64,
    /// Events evicted to keep the ring bounded.
    pub dropped: u64,
    /// FNV-1a over the structured event stream (see
    /// [`trace::fingerprint_events`]); pins the rendered JSONL too,
    /// since rendering is a pure function of the hashed fields.
    pub fingerprint: u64,
}

impl ObsReport {
    /// Render this report's full JSONL section (header + events).
    pub fn render_jsonl(&self, scenario: &str, seed: u64) -> String {
        let mut out = String::new();
        out.push_str(&trace::render_header(
            scenario,
            seed,
            self.events.len(),
            self.recorded,
            self.dropped,
            self.fingerprint,
        ));
        out.push('\n');
        for event in &self.events {
            out.push_str(&trace::render_event(event));
            out.push('\n');
        }
        out
    }

    /// Count of retained events matching an `"ev"` discriminator.
    pub fn event_count(&self, name: &str) -> u64 {
        self.events.iter().filter(|e| e.kind.event_name().as_str() == name).count() as u64
    }

    /// Convenience accessor for a counter in the embedded snapshot.
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.counters.get(name).copied().unwrap_or(0)
    }

    /// Convenience accessor for a histogram in the embedded snapshot.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.metrics.histograms.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observer() -> RunObserver {
        RunObserver::new(&ObsConfig::on())
    }

    #[test]
    fn record_updates_ring_and_counters() {
        let mut obs = observer();
        obs.record(
            SimTime::from_millis(10),
            TraceKind::Dispatch { worker: 1, task: 2, assignment: 3 },
        );
        obs.record(
            SimTime::from_millis(500),
            TraceKind::AssignmentDone { worker: 1, task: 2, assignment: 3, span_ms: 490 },
        );
        assert_eq!(obs.recorder.len(), 2);
        let report = obs.into_report();
        assert_eq!(report.counter(names::RUNNER_DISPATCH.as_str()), 1);
        assert_eq!(report.counter(names::RUNNER_ASSIGNMENT_DONE.as_str()), 1);
        let hist =
            report.histogram(names::RUNNER_ASSIGNMENT_SPAN_MS.as_str()).expect("span histogram");
        assert_eq!(hist.counts.iter().sum::<u64>(), 1);
    }

    #[test]
    fn report_roundtrip_preserves_order_and_fingerprint() {
        let mut obs = observer();
        for i in 0..4 {
            obs.record(
                SimTime::from_millis(i * 100),
                TraceKind::ReserveTimeout { worker: i as u32 },
            );
        }
        obs.note_queue_depth(3);
        let report = obs.into_report();
        assert_eq!(report.schema, TRACE_SCHEMA_VERSION);
        assert_eq!(report.recorded, 4);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.counter("runner.reserve_timeout"), 4);
        assert_eq!(report.event_count("reserve_timeout"), 4);
        assert_eq!(report.fingerprint, trace::fingerprint_events(report.events.iter()));
        let jsonl = report.render_jsonl("unit", 1);
        assert_eq!(jsonl.lines().count(), 5);
        assert!(jsonl.starts_with("{\"v\":1,\"stream\":\"clamshell-trace\""));
    }

    #[test]
    fn absorb_pool_folds_aggregates() {
        let mut obs = observer();
        let mut pool = PoolObs::new();
        pool.note_join(1);
        pool.note_join(2);
        pool.note_checkout();
        pool.note_checkin();
        obs.absorb_pool(&pool);
        assert_eq!(obs.registry.counter(names::POOL_CHECKIN), 1);
        assert_eq!(obs.registry.gauge(names::POOL_OCCUPANCY_HWM), 2);
        let hist = obs.registry.histogram(names::POOL_OCCUPANCY).expect("occupancy histogram");
        assert_eq!(hist.total(), 2);
    }

    #[test]
    fn dump_writes_header_plus_events() {
        let mut obs = observer();
        obs.record(SimTime::from_millis(5), TraceKind::OutageResume);
        let mut buf = Vec::new();
        obs.dump("panic-test", 9, &mut buf).expect("dump to vec");
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"scenario\":\"panic-test\""));
        assert!(lines[1].contains("\"ev\":\"outage_resume\""));
    }
}
