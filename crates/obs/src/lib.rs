//! Deterministic observability for the CLAMShell simulator.
//!
//! Everything in this crate is driven by *simulation* time and emits in
//! the deterministic order the runner produces events, so an enabled
//! trace is itself a reproducibility artifact: the same `(RunConfig,
//! seed)` pair renders byte-identical JSONL at any thread count, and the
//! FNV-1a fingerprint of that JSONL joins the golden conformance suite.
//!
//! Three layers:
//!
//! * [`MetricsRegistry`] — counters, gauges, and fixed-bucket histograms
//!   keyed by [`MetricName`] (`&'static str` newtypes declared once in
//!   [`name::names`]). Storage is ordered (`BTreeMap`), timestamps are
//!   sim-time only, and [`MetricsSnapshot::merge`] gives `sweep` a fold
//!   that works in job-index order exactly like `OnlineStats`.
//! * [`FlightRecorder`] — a bounded ring buffer of [`TraceEvent`]s that
//!   the runner dumps on panic and that `repro --trace` streams to JSONL
//!   with a stable versioned schema (see [`trace`]).
//! * [`ObsConfig`] — the switch on `RunConfig`. Off by default; when off
//!   the runner holds no observer at all, draws zero extra RNG values,
//!   and produces byte-identical reports to an un-instrumented build.

pub mod config;
pub mod name;
mod observer;
pub mod pool;
pub mod recorder;
pub mod registry;
pub mod trace;

pub use config::ObsConfig;
pub use name::{names, EventName, MetricName};
pub use observer::{ObsReport, RunObserver};
pub use pool::PoolObs;
pub use recorder::{FlightRecorder, TraceEvent, TraceKind};
pub use registry::{Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use trace::{fingerprint_hex, Fnv, TRACE_SCHEMA_VERSION};
