//! # clamshell-crowd
//!
//! A simulated microtask crowd platform — the Mechanical Turk substitute
//! for the CLAMShell reproduction.
//!
//! The paper's live experiments run on a "custom implementation of the
//! retainer model for MTurk" (§6.1): recruitment tasks are re-posted every
//! 3 minutes until the pool fills, workers are paid $0.05/minute to wait
//! and $0.02/record to work, and terminated assignments still pay for
//! partial work. This crate reproduces that platform as a deterministic
//! generative model:
//!
//! * [`platform::SimPlatform`] — the worker registry: recruits workers from
//!   a [`clamshell_trace::Population`], forks each worker an independent
//!   RNG stream, samples task durations / labels / patience, and owns the
//!   [`payment::CostLedger`].
//! * [`slots::RetainerPool`] — the slot set of Figure 1 (S1…S4): which
//!   workers currently hold a retainer slot, whether each is waiting or
//!   working, with deterministic iteration order and wait-time accounting.
//! * [`payment`] — the dollar ledger (wait pay, record pay, recruitment
//!   fees) used for every cost figure (4, 11, 12).
//!
//! The *policies* (who gets which task, when to evict, straggler
//! mitigation) live in `clamshell-core`; this crate only models mechanism
//! and stochastic behaviour, exactly the split the paper draws between
//! CLAMShell and the underlying crowd platform.

#![warn(missing_docs)]

pub mod faults;
pub mod payment;
pub mod platform;
pub mod slots;

pub use faults::{CrowdFaults, LatencyInflation};
pub use payment::CostLedger;
pub use platform::{PlatformConfig, SimPlatform, WorkerId};
pub use slots::{CheckoutStrategy, MemberState, PoolConfig, RetainerPool};
