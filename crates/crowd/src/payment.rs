//! Dollar accounting.
//!
//! Every cost result in the paper (Figures 4, 11, 12; the cost column of
//! Table 2) decomposes into the same three buckets this ledger tracks:
//! retainer waiting wages, per-record work wages, and recruitment costs.
//! Amounts are kept in integer micro-dollars so cost totals are exact and
//! deterministic across summation orders.

use clamshell_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Micro-dollars (1e-6 USD) as an integer, so ledgers add associatively.
pub type MicroUsd = u64;

/// Convert dollars to micro-dollars, rounding to nearest.
pub fn usd(d: f64) -> MicroUsd {
    assert!(d >= 0.0 && d.is_finite(), "payments must be non-negative");
    (d * 1e6).round() as MicroUsd
}

/// Cost ledger with the paper's three payment buckets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostLedger {
    /// Wages for waiting in the retainer pool ($0.05/min in §6.1).
    pub wait_micro: MicroUsd,
    /// Wages for completed or terminated labeling work ($0.02/record).
    pub work_micro: MicroUsd,
    /// Recruitment posting costs.
    pub recruit_micro: MicroUsd,
}

impl CostLedger {
    /// Fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge waiting wages for `dur` at `rate_per_min` dollars/minute.
    pub fn charge_wait(&mut self, dur: SimDuration, rate_per_min: f64) {
        self.wait_micro += usd(rate_per_min * dur.as_mins_f64());
    }

    /// Charge work wages for `records` at `rate_per_record` dollars each.
    pub fn charge_work(&mut self, records: u64, rate_per_record: f64) {
        self.work_micro += usd(rate_per_record).saturating_mul(records);
    }

    /// Charge one recruitment posting fee.
    pub fn charge_recruitment(&mut self, fee: f64) {
        self.recruit_micro += usd(fee);
    }

    /// Total cost in micro-dollars.
    pub fn total_micro(&self) -> MicroUsd {
        self.wait_micro + self.work_micro + self.recruit_micro
    }

    /// Total cost in dollars (reporting only).
    pub fn total_usd(&self) -> f64 {
        self.total_micro() as f64 / 1e6
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &CostLedger) {
        self.wait_micro += other.wait_micro;
        self.work_micro += other.work_micro;
        self.recruit_micro += other.recruit_micro;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usd_conversion_is_exact_for_paper_rates() {
        assert_eq!(usd(0.05), 50_000);
        assert_eq!(usd(0.02), 20_000);
        assert_eq!(usd(0.0), 0);
    }

    #[test]
    fn wait_pay_matches_paper_rate() {
        let mut l = CostLedger::new();
        // 10 minutes at $0.05/min = $0.50.
        l.charge_wait(SimDuration::from_mins(10), 0.05);
        assert_eq!(l.wait_micro, 500_000);
        assert!((l.total_usd() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn work_pay_per_record() {
        let mut l = CostLedger::new();
        l.charge_work(500, 0.02); // 500 records at $0.02 = $10
        assert_eq!(l.work_micro, 10_000_000);
    }

    #[test]
    fn totals_and_merge_are_additive() {
        let mut a = CostLedger::new();
        a.charge_wait(SimDuration::from_mins(2), 0.05);
        a.charge_work(10, 0.02);
        let mut b = CostLedger::new();
        b.charge_recruitment(0.10);
        b.charge_work(5, 0.02);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.total_micro(), a.total_micro() + b.total_micro());
    }

    #[test]
    fn sub_minute_waits_accrue() {
        let mut l = CostLedger::new();
        l.charge_wait(SimDuration::from_secs(30), 0.05);
        assert_eq!(l.wait_micro, 25_000); // $0.025
    }

    #[test]
    #[should_panic]
    fn negative_payment_rejected() {
        let _ = usd(-1.0);
    }
}
