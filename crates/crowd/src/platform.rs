//! The simulated crowd platform.
//!
//! [`SimPlatform`] is the stochastic half of the reproduction: it owns the
//! worker registry and every random draw — recruitment delays, task
//! durations, label correctness, retainer patience. Each worker gets an
//! independent forked RNG stream, so adding or removing one worker never
//! perturbs another worker's behaviour (critical for paired comparisons
//! like "same seed, maintenance on vs off").

use crate::payment::CostLedger;
use clamshell_sim::rng::Rng;
use clamshell_sim::time::SimDuration;
use clamshell_trace::{Population, WorkerProfile};
use serde::{Deserialize, Serialize};

/// Opaque identifier of a recruited worker. Ordered, so collections keyed
/// by `WorkerId` iterate deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Mechanism-level platform parameters (all from §6.1 of the paper unless
/// noted).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Dollars per minute paid to workers waiting in the retainer pool
    /// ($0.05).
    pub wait_pay_per_min: f64,
    /// Dollars per record labeled ($0.02).
    pub pay_per_record: f64,
    /// Cost of posting one recruitment task.
    pub recruitment_fee: f64,
    /// Qualification & training time once a worker accepts a retainer
    /// task, before they can receive real work (§2.1 phase 2).
    pub qualification: SimDuration,
    /// Overhead a worker pays when their in-flight assignment is
    /// terminated ("workers must click a dialog to finish the old task and
    /// be presented with a new one, which takes seconds", §6.3).
    pub termination_overhead: SimDuration,
    /// Whether terminated (partial) work is still paid — the paper always
    /// pays it ("it pays them for their partial work on the old task
    /// regardless", §4.1).
    pub pay_terminated_work: bool,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            wait_pay_per_min: clamshell_trace::calibration::pricing::WAIT_PER_MIN,
            pay_per_record: clamshell_trace::calibration::pricing::PER_RECORD,
            recruitment_fee: 0.05,
            qualification: SimDuration::from_secs(30),
            termination_overhead: SimDuration::from_secs(3),
            pay_terminated_work: true,
        }
    }
}

/// A registered worker: immutable profile plus a private RNG stream.
#[derive(Debug, Clone)]
struct RegisteredWorker {
    profile: WorkerProfile,
    rng: Rng,
}

/// The simulated crowd platform (see crate docs).
#[derive(Debug)]
pub struct SimPlatform {
    population: Population,
    config: PlatformConfig,
    workers: Vec<RegisteredWorker>,
    rng: Rng,
    ledger: CostLedger,
    /// Platform-level fault injection (archetype overlays, latency
    /// inflation). `None` on the benign path: a fault-free platform is
    /// bit-identical to one built before faults existed.
    faults: Option<crate::faults::FaultState>,
}

impl SimPlatform {
    /// Create a platform over `population` with deterministic `seed`.
    pub fn new(population: Population, config: PlatformConfig, seed: u64) -> Self {
        SimPlatform {
            population,
            config,
            workers: Vec::new(),
            rng: Rng::new(seed),
            ledger: CostLedger::new(),
            faults: None,
        }
    }

    /// Create a platform with platform-level fault injection layered on.
    /// Fault draws come from dedicated streams (see
    /// [`clamshell_sim::faults::fault_stream`]), so every benign draw —
    /// worker profiles, recruitment delays, per-worker behaviour — is
    /// identical to the fault-free platform under the same seed.
    pub fn with_faults(
        population: Population,
        config: PlatformConfig,
        seed: u64,
        faults: crate::faults::CrowdFaults,
    ) -> Self {
        let mut platform = Self::new(population, config, seed);
        if faults.is_active() {
            platform.faults = Some(crate::faults::FaultState::new(faults, seed));
        }
        platform
    }

    /// Platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// The population this platform draws from.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Immutable view of the cost ledger.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Number of workers ever recruited.
    pub fn workers_recruited(&self) -> usize {
        self.workers.len()
    }

    /// Post a recruitment task: charges the posting fee and returns the
    /// sampled delay until a (new) worker accepts, *including* the
    /// qualification/training phase, after which the caller should invoke
    /// [`SimPlatform::worker_arrives`].
    pub fn start_recruitment(&mut self) -> SimDuration {
        self.ledger.charge_recruitment(self.config.recruitment_fee);
        self.population.sample_recruitment(&mut self.rng) + self.config.qualification
    }

    /// A recruited worker arrives: samples their profile and registers
    /// them, returning the new [`WorkerId`]. With archetype faults
    /// active, the sampled profile may be rewritten into a spammer /
    /// adversarial / sleepy overlay — the base draw (and hence every
    /// *other* worker's profile) is untouched.
    pub fn worker_arrives(&mut self) -> WorkerId {
        let id = WorkerId(self.workers.len() as u32);
        let mut profile = self.population.sample_profile(&mut self.rng);
        if let Some(fs) = &mut self.faults {
            profile = fs.overlay_profile(profile);
        }
        // clamshell-lint: allow(D004) -- per-worker fork: WorkerIds are unique by construction and the label namespace is this platform's own stream
        let rng = self.rng.fork(id.0 as u64);
        self.workers.push(RegisteredWorker { profile, rng });
        id
    }

    /// Register a worker with an explicit profile (tests and controlled
    /// experiments).
    pub fn register_worker(&mut self, profile: WorkerProfile) -> WorkerId {
        let id = WorkerId(self.workers.len() as u32);
        // clamshell-lint: allow(D004) -- per-worker fork: WorkerIds are unique by construction and the label namespace is this platform's own stream
        let rng = self.rng.fork(id.0 as u64);
        self.workers.push(RegisteredWorker { profile, rng });
        id
    }

    /// The worker's generative profile.
    pub fn profile(&self, w: WorkerId) -> &WorkerProfile {
        &self.workers[w.0 as usize].profile
    }

    /// Sample how long worker `w` takes for a task grouping `ng` records.
    /// With latency-inflation faults active, the worker's own draw is
    /// multiplied by a heavy-tailed factor sampled from a dedicated fault
    /// stream (the worker's stream advances exactly as on the benign
    /// path).
    pub fn sample_task_duration(&mut self, w: WorkerId, ng: u32) -> SimDuration {
        let rw = &mut self.workers[w.0 as usize];
        let secs = rw.profile.sample_task_secs(ng, &mut rw.rng);
        let mult = match &mut self.faults {
            Some(fs) => fs.duration_multiplier(),
            None => 1.0,
        };
        SimDuration::from_secs_f64(secs * mult)
    }

    /// Sample worker `w`'s answers for a task whose records have ground
    /// truth `truths`, each out of `n_classes`.
    pub fn sample_labels(&mut self, w: WorkerId, truths: &[u32], n_classes: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(truths.len());
        self.sample_labels_into(w, truths, n_classes, &mut out);
        out
    }

    /// [`Self::sample_labels`], appending into a caller-owned buffer
    /// instead of allocating. The draw order is identical, so a run built
    /// from either entry point is bit-for-bit the same; the hot loop uses
    /// this with the runner's label arena to stay allocation-free.
    pub fn sample_labels_into(
        &mut self,
        w: WorkerId,
        truths: &[u32],
        n_classes: u32,
        out: &mut Vec<u32>,
    ) {
        let rw = &mut self.workers[w.0 as usize];
        out.extend(truths.iter().map(|&t| rw.profile.sample_label(t, n_classes, &mut rw.rng)));
    }

    /// Sample how long worker `w` will tolerate waiting idle before
    /// abandoning the retainer pool (exponential around their patience).
    pub fn sample_patience(&mut self, w: WorkerId) -> SimDuration {
        let rw = &mut self.workers[w.0 as usize];
        let mean = rw.profile.patience.as_secs_f64().max(1.0);
        SimDuration::from_secs_f64(
            clamshell_sim::dist::Exponential::from_mean(mean).sample_with(&mut rw.rng),
        )
    }

    /// Pay a worker for waiting `dur` in the retainer pool.
    pub fn pay_wait(&mut self, dur: SimDuration) {
        self.ledger.charge_wait(dur, self.config.wait_pay_per_min);
    }

    /// Pay for `records` labeled (completed work).
    pub fn pay_records(&mut self, records: u64) {
        self.ledger.charge_work(records, self.config.pay_per_record);
    }

    /// Pay for a terminated assignment's partial work (if configured).
    pub fn pay_terminated(&mut self, records: u64) {
        if self.config.pay_terminated_work {
            self.ledger.charge_work(records, self.config.pay_per_record);
        }
    }
}

/// Extension trait so distributions can sample from a caller-supplied RNG
/// without exposing `dist::Sample` everywhere.
trait SampleWith {
    fn sample_with(&self, rng: &mut Rng) -> f64;
}

impl<T: clamshell_sim::dist::Sample> SampleWith for T {
    fn sample_with(&self, rng: &mut Rng) -> f64 {
        T::sample(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform(seed: u64) -> SimPlatform {
        SimPlatform::new(Population::mturk_live(), PlatformConfig::default(), seed)
    }

    #[test]
    fn recruitment_charges_fee_and_returns_delay() {
        let mut p = platform(1);
        let d = p.start_recruitment();
        assert!(d >= p.config().qualification);
        assert_eq!(p.ledger().recruit_micro, 50_000);
        let w = p.worker_arrives();
        assert_eq!(w, WorkerId(0));
        assert_eq!(p.workers_recruited(), 1);
    }

    #[test]
    fn worker_ids_are_sequential() {
        let mut p = platform(2);
        for i in 0..5 {
            p.start_recruitment();
            assert_eq!(p.worker_arrives(), WorkerId(i));
        }
    }

    #[test]
    fn task_durations_track_worker_profile() {
        let mut p = platform(3);
        let fast = p.register_worker(WorkerProfile::fixed(2.0, 0.2, 0.9));
        let slow = p.register_worker(WorkerProfile::fixed(20.0, 0.2, 0.9));
        let n = 2000;
        let fmean: f64 =
            (0..n).map(|_| p.sample_task_duration(fast, 1).as_secs_f64()).sum::<f64>() / n as f64;
        let smean: f64 =
            (0..n).map(|_| p.sample_task_duration(slow, 1).as_secs_f64()).sum::<f64>() / n as f64;
        assert!((fmean - 2.0).abs() < 0.1, "fmean={fmean}");
        assert!((smean - 20.0).abs() < 0.5, "smean={smean}");
    }

    #[test]
    fn labels_respect_accuracy() {
        let mut p = platform(4);
        let w = p.register_worker(WorkerProfile::fixed(2.0, 0.2, 1.0));
        let truths = vec![0, 1, 2, 3];
        assert_eq!(p.sample_labels(w, &truths, 4), truths);
    }

    #[test]
    fn worker_streams_are_independent() {
        // Worker 0's draws must be identical whether or not worker 1 ever
        // samples anything.
        let mk = || {
            let mut p = platform(7);
            let a = p.register_worker(WorkerProfile::fixed(5.0, 1.0, 0.9));
            let b = p.register_worker(WorkerProfile::fixed(5.0, 1.0, 0.9));
            (p, a, b)
        };
        let (mut p1, a1, _) = mk();
        let seq1: Vec<u64> = (0..10).map(|_| p1.sample_task_duration(a1, 1).as_millis()).collect();
        let (mut p2, a2, b2) = mk();
        for _ in 0..500 {
            p2.sample_task_duration(b2, 1); // interleave other worker's draws
        }
        let seq2: Vec<u64> = (0..10).map(|_| p2.sample_task_duration(a2, 1).as_millis()).collect();
        assert_eq!(seq1, seq2);
    }

    #[test]
    fn payments_accumulate() {
        let mut p = platform(5);
        p.pay_wait(SimDuration::from_mins(1));
        p.pay_records(5);
        p.pay_terminated(5);
        // $0.05 + 5*$0.02 + 5*$0.02 = $0.25
        assert_eq!(p.ledger().total_micro(), 250_000);
    }

    #[test]
    fn terminated_pay_can_be_disabled() {
        let cfg = PlatformConfig { pay_terminated_work: false, ..Default::default() };
        let mut p = SimPlatform::new(Population::mturk_live(), cfg, 6);
        p.pay_terminated(5);
        assert_eq!(p.ledger().total_micro(), 0);
    }

    #[test]
    fn faults_never_perturb_benign_streams() {
        use crate::faults::{CrowdFaults, LatencyInflation};
        use clamshell_trace::ArchetypeMix;
        // A platform with a zero-rate archetype mix and zero-rate
        // inflation must replay the fault-free platform draw for draw:
        // fault decisions come from dedicated streams only.
        let run = |faults: Option<CrowdFaults>| {
            let pop = Population::mturk_live();
            let mut p = match faults {
                Some(f) => SimPlatform::with_faults(pop, PlatformConfig::default(), 21, f),
                None => SimPlatform::new(pop, PlatformConfig::default(), 21),
            };
            let mut out = Vec::new();
            for _ in 0..4 {
                out.push(p.start_recruitment().as_millis());
                let w = p.worker_arrives();
                out.extend((0..5).map(|_| p.sample_task_duration(w, 3).as_millis()));
                out.push(p.sample_patience(w).as_millis());
            }
            out
        };
        let benign = run(None);
        let zero_rate = run(Some(CrowdFaults {
            archetypes: Some(ArchetypeMix::NONE),
            inflation: Some(LatencyInflation { prob: 0.0, mult_median: 8.0, mult_sigma: 0.5 }),
        }));
        assert_eq!(benign, zero_rate);
    }

    #[test]
    fn archetype_overlay_changes_only_affected_workers() {
        use crate::faults::CrowdFaults;
        use clamshell_trace::ArchetypeMix;
        // Same seed, with and without a spammer overlay: workers the mix
        // leaves benign must keep bit-identical profiles.
        let mk = |mix: Option<ArchetypeMix>| {
            let mut p = SimPlatform::with_faults(
                Population::mturk_live(),
                PlatformConfig::default(),
                33,
                CrowdFaults { archetypes: mix, inflation: None },
            );
            (0..40)
                .map(|_| {
                    p.start_recruitment();
                    let w = p.worker_arrives();
                    *p.profile(w)
                })
                .collect::<Vec<_>>()
        };
        let benign = mk(None);
        let mixed = mk(Some(ArchetypeMix::spammers(0.4)));
        let spammers = mixed.iter().zip(&benign).filter(|(m, b)| m != b).count();
        assert!(spammers > 5 && spammers < 35, "spammers={spammers}");
        for (m, b) in mixed.iter().zip(&benign) {
            if m == b {
                continue; // benign worker: untouched, as required
            }
            assert!(m.accuracy < 0.6, "overlaid worker is chance-level");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut p = platform(42);
            p.start_recruitment();
            let w = p.worker_arrives();
            (0..20).map(|_| p.sample_task_duration(w, 5).as_millis()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
