//! Retainer-pool slots.
//!
//! Figure 1 of the paper shows the crowd platform holding "a set of slots
//! (S1…S4) in the current retainer pool. Each slot corresponds to a
//! persistent retainer task that a crowd worker has accepted, and may be
//! empty or contain a task." [`RetainerPool`] models exactly that: a
//! bounded set of members, each either *waiting* (idle, accruing wait pay)
//! or *working* (running an assignment). Iteration order is deterministic
//! (ordered by [`WorkerId`]) so the scheduler's choices are reproducible.

use crate::platform::WorkerId;
use clamshell_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The state of one pool member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemberState {
    /// Idle in the pool since the given time (accruing wait pay).
    Waiting {
        /// When the worker last became idle.
        since: SimTime,
    },
    /// Executing an assignment since the given time.
    Working {
        /// When the current assignment started.
        since: SimTime,
    },
}

/// Per-member bookkeeping.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Member {
    /// Current state.
    pub state: MemberState,
    /// When the worker joined the pool.
    pub joined: SimTime,
    /// Number of assignments this member has *started* in this pool.
    pub started: u32,
    /// Number of assignments completed (not terminated).
    pub completed: u32,
}

/// A bounded retainer pool.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RetainerPool {
    capacity: usize,
    members: BTreeMap<WorkerId, Member>,
}

impl RetainerPool {
    /// Create a pool with room for `capacity` workers (`Np` in Table 3).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pool capacity must be positive");
        RetainerPool { capacity, members: BTreeMap::new() }
    }

    /// Target size `Np`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the pool has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Open slots remaining.
    pub fn vacancies(&self) -> usize {
        self.capacity.saturating_sub(self.members.len())
    }

    /// Add a worker in the `Waiting` state. Returns `false` (and does not
    /// add) if the pool is full or the worker is already a member.
    pub fn join(&mut self, w: WorkerId, now: SimTime) -> bool {
        if self.vacancies() == 0 || self.members.contains_key(&w) {
            return false;
        }
        self.members.insert(
            w,
            Member {
                state: MemberState::Waiting { since: now },
                joined: now,
                started: 0,
                completed: 0,
            },
        );
        true
    }

    /// Remove a worker (eviction or abandonment). Returns the waiting
    /// duration to settle (wait pay owed since they last became idle), or
    /// `None` if the worker was not a member.
    pub fn leave(&mut self, w: WorkerId, now: SimTime) -> Option<SimDuration> {
        let m = self.members.remove(&w)?;
        Some(match m.state {
            MemberState::Waiting { since } => now.since(since),
            MemberState::Working { .. } => SimDuration::ZERO,
        })
    }

    /// Is this worker a member?
    pub fn contains(&self, w: WorkerId) -> bool {
        self.members.contains_key(&w)
    }

    /// Member record, if present.
    pub fn member(&self, w: WorkerId) -> Option<&Member> {
        self.members.get(&w)
    }

    /// Transition a waiting worker to working. Returns the waiting
    /// duration being ended (for wait-pay settlement). Panics if the
    /// worker is not a waiting member — that is a scheduler bug.
    pub fn start_work(&mut self, w: WorkerId, now: SimTime) -> SimDuration {
        let m = self.members.get_mut(&w).expect("start_work: not a member");
        match m.state {
            MemberState::Waiting { since } => {
                m.state = MemberState::Working { since: now };
                m.started += 1;
                now.since(since)
            }
            MemberState::Working { .. } => panic!("start_work: {w} already working"),
        }
    }

    /// Transition a working worker back to waiting. `completed` records
    /// whether the assignment finished (vs being terminated). Returns the
    /// work duration.
    pub fn finish_work(&mut self, w: WorkerId, now: SimTime, completed: bool) -> SimDuration {
        let m = self.members.get_mut(&w).expect("finish_work: not a member");
        match m.state {
            MemberState::Working { since } => {
                m.state = MemberState::Waiting { since: now };
                if completed {
                    m.completed += 1;
                }
                now.since(since)
            }
            MemberState::Waiting { .. } => panic!("finish_work: {w} not working"),
        }
    }

    /// Workers currently idle, in deterministic (id) order.
    pub fn waiting(&self) -> Vec<WorkerId> {
        self.members
            .iter()
            .filter(|(_, m)| matches!(m.state, MemberState::Waiting { .. }))
            .map(|(&w, _)| w)
            .collect()
    }

    /// Workers currently working, in deterministic (id) order.
    pub fn working(&self) -> Vec<WorkerId> {
        self.members
            .iter()
            .filter(|(_, m)| matches!(m.state, MemberState::Working { .. }))
            .map(|(&w, _)| w)
            .collect()
    }

    /// All members in deterministic order.
    pub fn members(&self) -> impl Iterator<Item = (WorkerId, &Member)> {
        self.members.iter().map(|(&w, m)| (w, m))
    }

    /// Number of assignments completed by `w` in this pool ("worker age"
    /// in Figure 5's sense).
    pub fn age(&self, w: WorkerId) -> u32 {
        self.members.get(&w).map(|m| m.completed).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn join_respects_capacity() {
        let mut p = RetainerPool::new(2);
        assert!(p.join(WorkerId(0), t(0)));
        assert!(p.join(WorkerId(1), t(0)));
        assert!(!p.join(WorkerId(2), t(0)), "pool full");
        assert_eq!(p.len(), 2);
        assert_eq!(p.vacancies(), 0);
    }

    #[test]
    fn double_join_rejected() {
        let mut p = RetainerPool::new(3);
        assert!(p.join(WorkerId(0), t(0)));
        assert!(!p.join(WorkerId(0), t(1)));
    }

    #[test]
    fn work_transitions_and_wait_settlement() {
        let mut p = RetainerPool::new(2);
        p.join(WorkerId(0), t(0));
        // Waited 10s before work started.
        let waited = p.start_work(WorkerId(0), t(10));
        assert_eq!(waited, SimDuration::from_secs(10));
        assert_eq!(p.waiting(), vec![]);
        assert_eq!(p.working(), vec![WorkerId(0)]);
        let worked = p.finish_work(WorkerId(0), t(25), true);
        assert_eq!(worked, SimDuration::from_secs(15));
        assert_eq!(p.age(WorkerId(0)), 1);
        assert_eq!(p.waiting(), vec![WorkerId(0)]);
    }

    #[test]
    fn terminated_work_does_not_increment_age() {
        let mut p = RetainerPool::new(1);
        p.join(WorkerId(3), t(0));
        p.start_work(WorkerId(3), t(1));
        p.finish_work(WorkerId(3), t(5), false);
        assert_eq!(p.age(WorkerId(3)), 0);
        assert_eq!(p.member(WorkerId(3)).unwrap().started, 1);
    }

    #[test]
    fn leave_returns_outstanding_wait() {
        let mut p = RetainerPool::new(2);
        p.join(WorkerId(0), t(0));
        assert_eq!(p.leave(WorkerId(0), t(30)), Some(SimDuration::from_secs(30)));
        assert_eq!(p.leave(WorkerId(0), t(31)), None, "already gone");
        // A working member owes no wait on departure.
        p.join(WorkerId(1), t(40));
        p.start_work(WorkerId(1), t(45));
        assert_eq!(p.leave(WorkerId(1), t(50)), Some(SimDuration::ZERO));
    }

    #[test]
    fn waiting_order_is_deterministic() {
        let mut p = RetainerPool::new(5);
        for id in [4u32, 1, 3, 0, 2] {
            p.join(WorkerId(id), t(0));
        }
        assert_eq!(
            p.waiting(),
            vec![WorkerId(0), WorkerId(1), WorkerId(2), WorkerId(3), WorkerId(4)]
        );
    }

    #[test]
    #[should_panic]
    fn start_work_on_nonmember_panics() {
        let mut p = RetainerPool::new(1);
        p.start_work(WorkerId(9), t(0));
    }

    #[test]
    #[should_panic]
    fn double_start_work_panics() {
        let mut p = RetainerPool::new(1);
        p.join(WorkerId(0), t(0));
        p.start_work(WorkerId(0), t(1));
        p.start_work(WorkerId(0), t(2));
    }
}
