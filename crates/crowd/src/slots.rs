//! Retainer-pool slots.
//!
//! Figure 1 of the paper shows the crowd platform holding "a set of slots
//! (S1…S4) in the current retainer pool. Each slot corresponds to a
//! persistent retainer task that a crowd worker has accepted, and may be
//! empty or contain a task." [`RetainerPool`] models exactly that: a
//! bounded set of members, each either *waiting* (idle, accruing wait pay)
//! or *working* (running an assignment). Iteration order is deterministic
//! (ordered by [`WorkerId`]) so the scheduler's choices are reproducible.
//!
//! Beyond the flat slot set, the pool carries production resource-pool
//! lifecycle semantics (in the mold of database connection pools):
//!
//! - a [`PoolConfig`] with a replenishment floor (`min_size`) below the
//!   hard `capacity` ceiling, an idle timeout for off-pool reserve
//!   workers, and a checkout strategy;
//! - [`CheckoutStrategy`]: FIFO hands work to the longest-idle member
//!   ("even wear" — every member keeps earning and stays warm), LIFO to
//!   the most-recently-idle ("hot working set" — a fast core serves
//!   bursts while the cold tail idles);
//! - **generations**: a monotone counter bumped on platform blackouts.
//!   Members joined under an older generation are *stale* and are retired
//!   lazily at their next checkout — an O(1) bump instead of an eager
//!   pool scan at outage time.
//!
//! At the default config (no floor, FIFO, no timeout, generations off)
//! every one of these mechanisms is inert and the pool behaves exactly
//! like the flat slot set it replaced — byte-identical runs.

use crate::platform::WorkerId;
use clamshell_obs::PoolObs;
use clamshell_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Order in which idle members are handed new work when a batch opens or
/// coverage is lost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckoutStrategy {
    /// "Even wear": longest-idle member first. Every member keeps cycling
    /// through work, so wait-pay accrual and practice effects spread
    /// evenly across the pool. This is the historical dispatch order.
    #[default]
    Fifo,
    /// "Hot working set": most-recently-idle member first. Under bursty
    /// arrivals a small fast core absorbs most of the work while the
    /// rest of the pool sits cold in reserve.
    Lifo,
}

/// Lifecycle knobs for [`RetainerPool`]. The default value makes every
/// mechanism inert: no floor (`min_size = None` ⇒ replenish to
/// capacity), FIFO checkout, no idle timeout, generations off — runs are
/// byte-identical to the pre-lifecycle pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct PoolConfig {
    /// Replenishment floor. Background recruitment keeps the pool at this
    /// size; demand surges may promote reserve workers up to `capacity`.
    /// `None` means "floor == capacity" (always run full).
    pub min_size: Option<usize>,
    /// Checkout order for idle members.
    pub strategy: CheckoutStrategy,
    /// How long a *reserve* (off-pool) worker may sit idle before being
    /// released. `None` disables the timeout. The runner jitters each
    /// deadline from a dedicated labeled RNG stream so enabling the
    /// timeout never perturbs benign draws.
    pub idle_timeout: Option<SimDuration>,
    /// Bump the pool generation on platform blackouts; members from older
    /// generations are lazily retired at their next checkout.
    pub generations: bool,
}

/// The state of one pool member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemberState {
    /// Idle in the pool since the given time (accruing wait pay).
    Waiting {
        /// When the worker last became idle.
        since: SimTime,
    },
    /// Executing an assignment since the given time.
    Working {
        /// When the current assignment started.
        since: SimTime,
    },
}

/// Per-member bookkeeping.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Member {
    /// Current state.
    pub state: MemberState,
    /// When the worker joined the pool.
    pub joined: SimTime,
    /// Pool generation at join time; members below the pool's current
    /// generation are stale.
    pub generation: u64,
    /// Number of assignments this member has *started* in this pool.
    pub started: u32,
    /// Number of assignments completed (not terminated).
    pub completed: u32,
}

/// A bounded retainer pool with lifecycle semantics (see module docs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RetainerPool {
    capacity: usize,
    config: PoolConfig,
    generation: u64,
    members: BTreeMap<WorkerId, Member>,
    /// Transition counters, present only when the run has observability
    /// enabled. `None` (the default) records nothing and keeps the pool
    /// byte-identical to a pre-obs build.
    obs: Option<PoolObs>,
}

impl RetainerPool {
    /// Create a pool with room for `capacity` workers (`Np` in Table 3)
    /// and the inert default [`PoolConfig`].
    pub fn new(capacity: usize) -> Self {
        Self::with_config(capacity, PoolConfig::default())
    }

    /// Create a pool with explicit lifecycle knobs.
    pub fn with_config(capacity: usize, config: PoolConfig) -> Self {
        assert!(capacity > 0, "pool capacity must be positive");
        if let Some(min) = config.min_size {
            assert!(
                (1..=capacity).contains(&min),
                "pool min_size must be in 1..=capacity ({min} vs {capacity})"
            );
        }
        RetainerPool { capacity, config, generation: 0, members: BTreeMap::new(), obs: None }
    }

    /// Start counting pool state transitions (called by the runner when
    /// `ObsConfig.enabled`). Idempotent; existing counts are kept.
    pub fn enable_obs(&mut self) {
        if self.obs.is_none() {
            self.obs = Some(PoolObs::new());
        }
    }

    /// The transition counters, if observability is enabled.
    pub fn obs(&self) -> Option<&PoolObs> {
        self.obs.as_ref()
    }

    /// Target size `Np`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The lifecycle configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// The size background replenishment aims for: `min_size` when set,
    /// otherwise the full capacity.
    pub fn fill_target(&self) -> usize {
        self.config.min_size.unwrap_or(self.capacity)
    }

    /// Current pool generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Advance the generation (called on a blackout). O(1): existing
    /// members are *not* scanned — they become stale and are retired
    /// lazily at their next checkout.
    pub fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// Whether `w` is a member from an older generation (due for lazy
    /// retirement at checkout). Non-members are not stale.
    pub fn is_stale(&self, w: WorkerId) -> bool {
        self.members.get(&w).is_some_and(|m| m.generation < self.generation)
    }

    /// Reorder a checkout candidate list according to the configured
    /// strategy. The input is expected in ascending [`WorkerId`] order
    /// (recruitment order — the historical FIFO dispatch order), so FIFO
    /// is a no-op; LIFO sorts most-recently-idle first, breaking ties
    /// toward the younger (higher-id) worker.
    pub fn order_checkouts(&self, candidates: &mut [WorkerId]) {
        match self.config.strategy {
            CheckoutStrategy::Fifo => {}
            CheckoutStrategy::Lifo => {
                candidates.sort_unstable_by(|&a, &b| {
                    let idle_since = |w: WorkerId| match self.members.get(&w).map(|m| m.state) {
                        Some(MemberState::Waiting { since }) => since,
                        _ => SimTime::ZERO,
                    };
                    // Descending (since, id): latest idler first.
                    (idle_since(b), b).cmp(&(idle_since(a), a))
                });
            }
        }
    }

    /// Current number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the pool has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Open slots remaining.
    pub fn vacancies(&self) -> usize {
        self.capacity.saturating_sub(self.members.len())
    }

    /// Add a worker in the `Waiting` state. Returns `false` (and does not
    /// add) if the pool is full or the worker is already a member.
    pub fn join(&mut self, w: WorkerId, now: SimTime) -> bool {
        if self.vacancies() == 0 || self.members.contains_key(&w) {
            return false;
        }
        self.members.insert(
            w,
            Member {
                state: MemberState::Waiting { since: now },
                joined: now,
                generation: self.generation,
                started: 0,
                completed: 0,
            },
        );
        if let Some(obs) = &mut self.obs {
            obs.note_join(self.members.len() as u64);
        }
        true
    }

    /// Remove a worker (eviction or abandonment). Returns the waiting
    /// duration to settle (wait pay owed since they last became idle), or
    /// `None` if the worker was not a member.
    pub fn leave(&mut self, w: WorkerId, now: SimTime) -> Option<SimDuration> {
        let m = self.members.remove(&w)?;
        if let Some(obs) = &mut self.obs {
            // A working member departing also vacates its checkout.
            if matches!(m.state, MemberState::Working { .. }) {
                obs.note_checkin();
            }
            obs.note_leave(self.members.len() as u64);
        }
        Some(match m.state {
            MemberState::Waiting { since } => now.since(since),
            MemberState::Working { .. } => SimDuration::ZERO,
        })
    }

    /// Is this worker a member?
    pub fn contains(&self, w: WorkerId) -> bool {
        self.members.contains_key(&w)
    }

    /// Member record, if present.
    pub fn member(&self, w: WorkerId) -> Option<&Member> {
        self.members.get(&w)
    }

    /// Transition a waiting worker to working. Returns the waiting
    /// duration being ended (for wait-pay settlement). Panics if the
    /// worker is not a waiting member — that is a scheduler bug.
    pub fn start_work(&mut self, w: WorkerId, now: SimTime) -> SimDuration {
        let m = self.members.get_mut(&w).expect("start_work: not a member");
        let waited = match m.state {
            MemberState::Waiting { since } => {
                m.state = MemberState::Working { since: now };
                m.started += 1;
                now.since(since)
            }
            MemberState::Working { .. } => panic!("start_work: {w} already working"),
        };
        if let Some(obs) = &mut self.obs {
            obs.note_checkout();
        }
        waited
    }

    /// Transition a working worker back to waiting. `completed` records
    /// whether the assignment finished (vs being terminated). Returns the
    /// work duration.
    pub fn finish_work(&mut self, w: WorkerId, now: SimTime, completed: bool) -> SimDuration {
        let m = self.members.get_mut(&w).expect("finish_work: not a member");
        let worked = match m.state {
            MemberState::Working { since } => {
                m.state = MemberState::Waiting { since: now };
                if completed {
                    m.completed += 1;
                }
                now.since(since)
            }
            MemberState::Waiting { .. } => panic!("finish_work: {w} not working"),
        };
        if let Some(obs) = &mut self.obs {
            obs.note_checkin();
        }
        worked
    }

    /// Workers currently idle, in deterministic (id) order.
    pub fn waiting(&self) -> Vec<WorkerId> {
        self.members
            .iter()
            .filter(|(_, m)| matches!(m.state, MemberState::Waiting { .. }))
            .map(|(&w, _)| w)
            .collect()
    }

    /// Workers currently working, in deterministic (id) order.
    pub fn working(&self) -> Vec<WorkerId> {
        self.members
            .iter()
            .filter(|(_, m)| matches!(m.state, MemberState::Working { .. }))
            .map(|(&w, _)| w)
            .collect()
    }

    /// All members in deterministic order.
    pub fn members(&self) -> impl Iterator<Item = (WorkerId, &Member)> {
        self.members.iter().map(|(&w, m)| (w, m))
    }

    /// Number of assignments completed by `w` in this pool ("worker age"
    /// in Figure 5's sense).
    pub fn age(&self, w: WorkerId) -> u32 {
        self.members.get(&w).map(|m| m.completed).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn join_respects_capacity() {
        let mut p = RetainerPool::new(2);
        assert!(p.join(WorkerId(0), t(0)));
        assert!(p.join(WorkerId(1), t(0)));
        assert!(!p.join(WorkerId(2), t(0)), "pool full");
        assert_eq!(p.len(), 2);
        assert_eq!(p.vacancies(), 0);
    }

    #[test]
    fn double_join_rejected() {
        let mut p = RetainerPool::new(3);
        assert!(p.join(WorkerId(0), t(0)));
        assert!(!p.join(WorkerId(0), t(1)));
    }

    #[test]
    fn work_transitions_and_wait_settlement() {
        let mut p = RetainerPool::new(2);
        p.join(WorkerId(0), t(0));
        // Waited 10s before work started.
        let waited = p.start_work(WorkerId(0), t(10));
        assert_eq!(waited, SimDuration::from_secs(10));
        assert_eq!(p.waiting(), vec![]);
        assert_eq!(p.working(), vec![WorkerId(0)]);
        let worked = p.finish_work(WorkerId(0), t(25), true);
        assert_eq!(worked, SimDuration::from_secs(15));
        assert_eq!(p.age(WorkerId(0)), 1);
        assert_eq!(p.waiting(), vec![WorkerId(0)]);
    }

    #[test]
    fn terminated_work_does_not_increment_age() {
        let mut p = RetainerPool::new(1);
        p.join(WorkerId(3), t(0));
        p.start_work(WorkerId(3), t(1));
        p.finish_work(WorkerId(3), t(5), false);
        assert_eq!(p.age(WorkerId(3)), 0);
        assert_eq!(p.member(WorkerId(3)).unwrap().started, 1);
    }

    #[test]
    fn leave_returns_outstanding_wait() {
        let mut p = RetainerPool::new(2);
        p.join(WorkerId(0), t(0));
        assert_eq!(p.leave(WorkerId(0), t(30)), Some(SimDuration::from_secs(30)));
        assert_eq!(p.leave(WorkerId(0), t(31)), None, "already gone");
        // A working member owes no wait on departure.
        p.join(WorkerId(1), t(40));
        p.start_work(WorkerId(1), t(45));
        assert_eq!(p.leave(WorkerId(1), t(50)), Some(SimDuration::ZERO));
    }

    #[test]
    fn waiting_order_is_deterministic() {
        let mut p = RetainerPool::new(5);
        for id in [4u32, 1, 3, 0, 2] {
            p.join(WorkerId(id), t(0));
        }
        assert_eq!(
            p.waiting(),
            vec![WorkerId(0), WorkerId(1), WorkerId(2), WorkerId(3), WorkerId(4)]
        );
    }

    #[test]
    #[should_panic]
    fn start_work_on_nonmember_panics() {
        let mut p = RetainerPool::new(1);
        p.start_work(WorkerId(9), t(0));
    }

    #[test]
    #[should_panic]
    fn double_start_work_panics() {
        let mut p = RetainerPool::new(1);
        p.join(WorkerId(0), t(0));
        p.start_work(WorkerId(0), t(1));
        p.start_work(WorkerId(0), t(2));
    }

    // ------------------------------------------------------------------
    // Lifecycle: config, generations, checkout strategies
    // ------------------------------------------------------------------

    #[test]
    fn default_config_is_inert() {
        let p = RetainerPool::new(4);
        assert_eq!(*p.config(), PoolConfig::default());
        assert_eq!(p.fill_target(), 4, "no floor means fill to capacity");
        assert_eq!(p.generation(), 0);
    }

    #[test]
    fn min_size_sets_the_fill_target() {
        let cfg = PoolConfig { min_size: Some(2), ..Default::default() };
        let p = RetainerPool::with_config(5, cfg);
        assert_eq!(p.fill_target(), 2);
        assert_eq!(p.capacity(), 5);
    }

    #[test]
    #[should_panic]
    fn min_size_above_capacity_rejected() {
        let cfg = PoolConfig { min_size: Some(6), ..Default::default() };
        let _ = RetainerPool::with_config(5, cfg);
    }

    #[test]
    #[should_panic]
    fn zero_min_size_rejected() {
        let cfg = PoolConfig { min_size: Some(0), ..Default::default() };
        let _ = RetainerPool::with_config(5, cfg);
    }

    #[test]
    fn generation_bump_marks_existing_members_stale() {
        let mut p = RetainerPool::new(3);
        p.join(WorkerId(0), t(0));
        p.join(WorkerId(1), t(1));
        assert!(!p.is_stale(WorkerId(0)));
        p.bump_generation();
        assert_eq!(p.generation(), 1);
        assert!(p.is_stale(WorkerId(0)), "pre-bump member is stale");
        assert!(p.is_stale(WorkerId(1)));
        // A fresh joiner carries the new generation.
        p.join(WorkerId(2), t(5));
        assert!(!p.is_stale(WorkerId(2)));
        assert_eq!(p.member(WorkerId(2)).unwrap().generation, 1);
        // Non-members are never stale.
        assert!(!p.is_stale(WorkerId(9)));
    }

    #[test]
    fn fifo_checkout_preserves_id_order() {
        let mut p = RetainerPool::new(3);
        p.join(WorkerId(0), t(0));
        p.join(WorkerId(1), t(10));
        p.join(WorkerId(2), t(20));
        let mut order = vec![WorkerId(0), WorkerId(1), WorkerId(2)];
        p.order_checkouts(&mut order);
        assert_eq!(order, vec![WorkerId(0), WorkerId(1), WorkerId(2)]);
    }

    #[test]
    fn obs_disabled_by_default_and_counts_when_enabled() {
        let mut p = RetainerPool::new(3);
        assert!(p.obs().is_none(), "obs must be opt-in");
        p.enable_obs();
        p.join(WorkerId(0), t(0));
        p.join(WorkerId(1), t(0));
        p.start_work(WorkerId(0), t(5));
        p.finish_work(WorkerId(0), t(10), true);
        p.leave(WorkerId(1), t(12));
        let obs = p.obs().expect("enabled");
        assert_eq!(obs.joins, 2);
        assert_eq!(obs.leaves, 1);
        assert_eq!(obs.checkouts, 1);
        assert_eq!(obs.checkins, 1);
        assert_eq!(obs.occupancy_hwm, 2);
    }

    #[test]
    fn obs_counts_working_departure_as_checkin() {
        let mut p = RetainerPool::new(2);
        p.enable_obs();
        p.join(WorkerId(0), t(0));
        p.start_work(WorkerId(0), t(1));
        // Walkout mid-assignment: the checkout must still be balanced.
        p.leave(WorkerId(0), t(2));
        let obs = p.obs().expect("enabled");
        assert_eq!(obs.checkouts, 1);
        assert_eq!(obs.checkins, 1);
        assert_eq!(obs.leaves, 1);
    }

    #[test]
    fn lifo_checkout_prefers_most_recently_idle() {
        let cfg = PoolConfig { strategy: CheckoutStrategy::Lifo, ..Default::default() };
        let mut p = RetainerPool::with_config(3, cfg);
        p.join(WorkerId(0), t(0));
        p.join(WorkerId(1), t(0));
        p.join(WorkerId(2), t(0));
        // Worker 0 works and comes back: now the most recently idle.
        p.start_work(WorkerId(0), t(5));
        p.finish_work(WorkerId(0), t(30), true);
        let mut order = vec![WorkerId(0), WorkerId(1), WorkerId(2)];
        p.order_checkouts(&mut order);
        assert_eq!(
            order,
            vec![WorkerId(0), WorkerId(2), WorkerId(1)],
            "latest idler first; equal-since ties break toward the higher id"
        );
    }
}
