//! Platform-level fault injection: archetype overlays and heavy-tailed
//! latency inflation.
//!
//! These are the [`SimPlatform`](crate::SimPlatform) half of the
//! adversity machinery: perturbations of *who gets recruited* and *how
//! long submissions take* that compose with the runner-level faults
//! (churn, outages, bursts) defined in `clamshell-core`.
//!
//! Determinism: each fault kind draws from its own stream derived via
//! [`clamshell_sim::faults::fault_stream`], so enabling one fault never
//! shifts the draws of another fault or of any benign stream — a run
//! with `CrowdFaults::default()` is bit-identical to a run constructed
//! without faults at all.

use clamshell_sim::dist::{LogNormal, Sample};
use clamshell_sim::rng::Rng;
use serde::{Deserialize, Serialize};

/// Heavy-tailed latency inflation: independently of the worker, each
/// sampled assignment duration is multiplied by a log-normal factor with
/// probability `prob`. Models platform-side slowdowns (page loads, task
/// queue hiccups) that fatten the latency tail beyond what any worker
/// profile produces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyInflation {
    /// Probability an assignment's duration is inflated.
    pub prob: f64,
    /// Median of the log-normal inflation multiplier.
    pub mult_median: f64,
    /// Log-space sigma of the multiplier.
    pub mult_sigma: f64,
}

impl LatencyInflation {
    /// Validate parameter ranges.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.prob), "inflation prob in [0,1]");
        assert!(self.mult_median >= 1.0, "inflation must not speed tasks up");
        assert!(self.mult_sigma >= 0.0, "sigma must be non-negative");
    }
}

/// The platform-level fault set handed to
/// [`SimPlatform::with_faults`](crate::SimPlatform::with_faults).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CrowdFaults {
    /// Archetype overlay applied per recruited worker.
    pub archetypes: Option<clamshell_trace::ArchetypeMix>,
    /// Heavy-tailed duration inflation applied per assignment.
    pub inflation: Option<LatencyInflation>,
}

impl CrowdFaults {
    /// No faults — behaves exactly like a fault-free platform.
    pub const NONE: CrowdFaults = CrowdFaults { archetypes: None, inflation: None };

    /// Whether any fault is active.
    pub fn is_active(&self) -> bool {
        self.archetypes.is_some() || self.inflation.is_some()
    }

    /// Validate all configured faults.
    pub fn validate(&self) {
        if let Some(m) = &self.archetypes {
            m.validate();
        }
        if let Some(i) = &self.inflation {
            i.validate();
        }
    }
}

/// Live fault state carried by the platform: one dedicated RNG stream
/// per fault kind.
#[derive(Debug)]
pub(crate) struct FaultState {
    pub(crate) faults: CrowdFaults,
    archetype_rng: Rng,
    inflation_rng: Rng,
}

/// Stream labels for [`clamshell_sim::faults::fault_stream`].
const STREAM_ARCHETYPE: u64 = 0xA2C4_0001;
const STREAM_INFLATION: u64 = 0xA2C4_0002;

impl FaultState {
    pub(crate) fn new(faults: CrowdFaults, seed: u64) -> Self {
        faults.validate();
        FaultState {
            faults,
            archetype_rng: clamshell_sim::faults::fault_stream(seed, STREAM_ARCHETYPE),
            inflation_rng: clamshell_sim::faults::fault_stream(seed, STREAM_INFLATION),
        }
    }

    /// Apply the archetype overlay to a freshly sampled profile.
    pub(crate) fn overlay_profile(
        &mut self,
        base: clamshell_trace::WorkerProfile,
    ) -> clamshell_trace::WorkerProfile {
        match &self.faults.archetypes {
            Some(mix) => match mix.pick(&mut self.archetype_rng) {
                Some(arch) => arch.profile(&base, &mut self.archetype_rng),
                None => base,
            },
            None => base,
        }
    }

    /// Inflation multiplier for one assignment (1.0 when the fault does
    /// not fire).
    pub(crate) fn duration_multiplier(&mut self) -> f64 {
        match &self.faults.inflation {
            Some(inf) if self.inflation_rng.bernoulli(inf.prob) => {
                LogNormal::new(inf.mult_median.ln(), inf.mult_sigma)
                    .sample(&mut self.inflation_rng)
                    .max(1.0)
            }
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_identity() {
        let mut fs = FaultState::new(CrowdFaults::NONE, 7);
        assert!(!fs.faults.is_active());
        assert_eq!(fs.duration_multiplier(), 1.0);
        let p = clamshell_trace::WorkerProfile::fixed(4.0, 1.0, 0.9);
        assert_eq!(fs.overlay_profile(p), p);
    }

    #[test]
    fn inflation_fires_at_configured_rate() {
        let inf = LatencyInflation { prob: 0.2, mult_median: 8.0, mult_sigma: 0.5 };
        let mut fs = FaultState::new(CrowdFaults { inflation: Some(inf), ..CrowdFaults::NONE }, 11);
        let n = 20_000;
        let hits = (0..n).filter(|_| fs.duration_multiplier() > 1.0).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.02, "hit rate={frac}");
    }

    #[test]
    #[should_panic]
    fn speedup_inflation_rejected() {
        LatencyInflation { prob: 0.5, mult_median: 0.5, mult_sigma: 0.1 }.validate();
    }
}
