//! The reproduction harness CLI.
//!
//! ```text
//! repro --list                 # show all experiments
//! repro fig9 fig10             # run specific experiments
//! repro --all                  # run everything (used to fill EXPERIMENTS.md)
//! repro --all --quick          # smaller workloads, single seed
//! repro fig9 --seeds 5         # average over 5 seeds
//! ```

use clamshell_bench::{registry, util::Opts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts::default();
    let mut run_all = false;
    let mut list = false;
    let mut picked: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => run_all = true,
            "--list" => list = true,
            "--quick" => {
                opts.scale = 0.25;
                opts.seeds = vec![1];
            }
            "--seeds" => {
                i += 1;
                let n: u64 =
                    args.get(i).and_then(|s| s.parse().ok()).expect("--seeds takes a count");
                opts.seeds = (1..=n).collect();
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
            exp => picked.push(exp.to_string()),
        }
        i += 1;
    }

    let all = registry();
    if list || (!run_all && picked.is_empty()) {
        println!("experiments ({} total):", all.len());
        for (name, desc, _) in &all {
            println!("  {name:<10} {desc}");
        }
        println!("\nusage: repro [--all|--quick|--seeds N|--list] [name...]");
        return;
    }

    println!("CLAMShell reproduction harness — seeds={:?} scale={}", opts.seeds, opts.scale);
    let mut ran = 0;
    for (name, _, f) in &all {
        if run_all || picked.iter().any(|p| p == name) {
            f(&opts);
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no experiment matched {picked:?}; try --list");
        std::process::exit(2);
    }
}
