//! The reproduction harness CLI.
//!
//! ```text
//! repro --list                 # show all experiments
//! repro fig9 fig10             # run specific experiments
//! repro --all                  # run everything (used to fill EXPERIMENTS.md)
//! repro --all --quick          # smaller workloads, single seed
//! repro fig9 --seeds 5         # average over 5 seeds
//! repro --all --threads 4      # sweep-engine worker threads
//! repro --scenario churn       # one adversity scenario vs benign
//! repro --scenario blackout --trace t.jsonl   # + flight-recorder JSONL
//! repro --scenario churn --format json        # machine-readable report
//! repro serve --rate 0.05 --tasks 96 --checkpoint-every 8  # streaming
//! repro serve --quick          # streaming service mode, smoke cell
//! repro megasweep --cells 512 --shard-size 32   # sharded mega-grid
//! repro megasweep --resume --manifest m.jsonl   # restart a killed sweep
//! repro --help                 # usage (also -h)
//! ```
//!
//! Flags compose order-independently: an explicit `--seeds N` always
//! wins over `--quick`'s single-seed default, whichever comes first.
//! `--threads N` (env fallback `CLAMSHELL_THREADS`, default: available
//! parallelism) only changes how fast sweeps run — the engine merges
//! results in job-index order, so stdout is byte-identical at any
//! thread count. `--trace` streams every scenario cell's flight
//! recorder to a JSONL file (versioned schema, see
//! `clamshell_obs::trace`); the recording draws no RNG values, so
//! traced tables match untraced ones byte for byte.

use clamshell_bench::{extra_registry, registry, util::json_str, util::Opts};

/// Usage text shared by `--help` and the no-argument listing.
const USAGE: &str = "\
usage: repro [--all] [--quick] [--seeds N] [--threads N] [--scenario NAME]
             [--trace PATH] [--format FMT] [--list] [name...]
       repro serve [--rate R] [--tasks N] [--checkpoint-every K]
                   [--scenario NAME] [--quick] [--seeds N] [--threads N]
       repro megasweep [--cells N] [--shard-size S] [--manifest PATH]
                       [--resume] [--quick] [--threads N]

  --all            run every experiment
  --quick          smaller workloads and a single seed (scale 0.25)
  --seeds N        average over seeds 1..=N; always wins over --quick's
                   single-seed default, in either flag order
  --threads N      sweep-engine worker threads (else CLAMSHELL_THREADS,
                   else available parallelism); never changes stdout —
                   results merge in job-index order at any thread count
  --scenario NAME  run one adversity scenario against the benign
                   baseline (see the scenario catalog in README);
                   repeatable; `--scenario list` lists names
  --trace PATH     (with --scenario) write every cell's flight-recorder
                   trace to PATH as JSONL: one header line plus one line
                   per event per (scenario, seed), in job order
  --format FMT     output format: text (default) or json; json applies
                   to --scenario and --list, and is rejected with --all
                   (its stdout is the recorded EXPERIMENTS.md transcript)
  --list           list experiments and exit
  --help, -h       this message

serve mode (open-loop streaming service; stdout is byte-identical at
any thread count and ends with the streamed/batched equivalence line):
  --rate R             mean task arrivals per simulated second (default 0.01)
  --tasks N            stream length before --quick scaling (default 96)
  --checkpoint-every K completed tasks per checkpoint (default 8)
  --scenario NAME      compose one adversity scenario with the stream

megasweep mode (sharded mega-grid with checkpoint/resume; the final
table on stdout is bit-identical sharded vs unsharded, killed-and-
resumed vs uninterrupted, at any thread count):
  --cells N        total grid cells before --quick scaling (default 256)
  --shard-size S   cells per shard: the memory bound and checkpoint
                   granularity (default 32)
  --manifest PATH  shard manifest, atomically rewritten per shard
                   (default megasweep.manifest.jsonl)
  --resume         restart from the manifest's last completed shard";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        serve_cli(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("megasweep") {
        megasweep_cli(&args[1..]);
        return;
    }
    let mut run_all = false;
    let mut list = false;
    let mut quick = false;
    let mut seeds: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut scenarios: Vec<String> = Vec::new();
    let mut trace: Option<std::path::PathBuf> = None;
    let mut json = false;
    let mut picked: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => run_all = true,
            "--list" => list = true,
            "--quick" => quick = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--seeds" => {
                i += 1;
                let n: u64 =
                    args.get(i).and_then(|s| s.parse().ok()).expect("--seeds takes a count");
                seeds = Some(n);
            }
            "--threads" => {
                i += 1;
                let n: usize =
                    args.get(i).and_then(|s| s.parse().ok()).expect("--threads takes a count");
                threads = Some(n);
            }
            "--scenario" => {
                i += 1;
                let name = args.get(i).expect("--scenario takes a name").clone();
                scenarios.push(name);
            }
            "--trace" => {
                i += 1;
                let path = args.get(i).expect("--trace takes a path").clone();
                trace = Some(std::path::PathBuf::from(path));
            }
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("text") => json = false,
                    Some("json") => json = true,
                    Some(other) => {
                        eprintln!("unknown format: {other} (text|json)");
                        std::process::exit(2);
                    }
                    None => {
                        eprintln!("--format takes a value (text|json)");
                        std::process::exit(2);
                    }
                }
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
            exp => picked.push(exp.to_string()),
        }
        i += 1;
    }

    // The --all transcript is the recorded EXPERIMENTS.md baseline;
    // machine formats and traces must not ride on it.
    if run_all && json {
        eprintln!("--format json is not supported with --all (use --scenario or --list)");
        std::process::exit(2);
    }
    if trace.is_some() && scenarios.is_empty() {
        eprintln!("--trace requires --scenario");
        std::process::exit(2);
    }

    // Compose flags after parsing so order never matters: `--quick`
    // provides defaults, explicit `--seeds` overrides them either way
    // around.
    let mut opts = Opts::default();
    if quick {
        opts.scale = 0.25;
        opts.seeds = vec![1];
    }
    if let Some(n) = seeds {
        opts.seeds = (1..=n).collect();
    }
    // Every experiment path resolves its thread count from `opts`
    // (falling back to CLAMSHELL_THREADS, then available parallelism),
    // so no process-global state is needed.
    opts.threads = threads;

    // Stderr line in the banner keeps stdout byte-identical across
    // thread counts.
    let banner = |opts: &Opts| {
        println!("CLAMShell reproduction harness — seeds={:?} scale={}", opts.seeds, opts.scale);
        eprintln!("sweep engine: {} worker thread(s)", opts.thread_count());
    };

    // Scenario mode: run the named adversity scenario(s) against the
    // benign baseline and exit. `--scenario list` prints the catalog.
    if !scenarios.is_empty() {
        if scenarios.iter().any(|s| s == "list") {
            println!("adversity scenarios:");
            for s in clamshell_bench::scenario_catalog() {
                println!("  {:<14} {}", s.name, s.summary);
            }
            return;
        }
        if !json {
            banner(&opts);
        }
        let mode = clamshell_bench::experiments::adversity::scenario_mode(
            &opts,
            &scenarios,
            json,
            trace.as_deref(),
        );
        if let Err(msg) = mode {
            eprintln!("{msg}; try --scenario list");
            std::process::exit(2);
        }
        return;
    }

    let all = registry();
    let extra = extra_registry();
    if list || (!run_all && picked.is_empty()) {
        if json {
            let render = |exps: &[clamshell_bench::Experiment]| {
                exps.iter()
                    .map(|(name, desc, _)| {
                        format!(
                            "\n    {{\"name\": {}, \"description\": {}}}",
                            json_str(name),
                            json_str(desc)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",")
            };
            print!(
                "{{\n  \"version\": 1,\n  \"report\": \"list\",\n  \"experiments\": [{}\n  ],\n  \
                 \"extra\": [{}\n  ]\n}}\n",
                render(&all),
                render(&extra)
            );
            return;
        }
        println!("experiments ({} total):", all.len());
        for (name, desc, _) in &all {
            println!("  {name:<10} {desc}");
        }
        println!("\nextra experiments (run by name; not part of --all):");
        for (name, desc, _) in &extra {
            println!("  {name:<10} {desc}");
        }
        println!("\n{USAGE}");
        return;
    }

    banner(&opts);
    let mut ran = 0;
    for (name, _, f) in &all {
        if run_all || picked.iter().any(|p| p == name) {
            f(&opts);
            ran += 1;
        }
    }
    // Extras never ride on --all (its stdout is the recorded
    // EXPERIMENTS.md transcript); they only run when named.
    for (name, _, f) in &extra {
        if picked.iter().any(|p| p == name) {
            f(&opts);
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no experiment matched {picked:?}; try --list");
        std::process::exit(2);
    }
}

/// `repro serve ...`: parse service-mode flags and run the streaming
/// walkthrough. Shares the harness flag conventions (`--quick` defaults,
/// explicit `--seeds` wins in either order, threads only touch stderr).
fn serve_cli(args: &[String]) {
    use clamshell_bench::experiments::serve::{serve, ServeArgs};

    let mut sa = ServeArgs::default();
    let mut quick = false;
    let mut seeds: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--quick" => quick = true,
            "--rate" => {
                i += 1;
                let r: f64 = args.get(i).and_then(|s| s.parse().ok()).expect("--rate takes a rate");
                assert!(r.is_finite() && r > 0.0, "--rate must be positive");
                sa.rate = r;
            }
            "--tasks" => {
                i += 1;
                let n: usize =
                    args.get(i).and_then(|s| s.parse().ok()).expect("--tasks takes a count");
                sa.tasks = n;
            }
            "--checkpoint-every" => {
                i += 1;
                let k: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--checkpoint-every takes a count");
                sa.checkpoint_every = k;
            }
            "--scenario" => {
                i += 1;
                sa.scenario = Some(args.get(i).expect("--scenario takes a name").clone());
            }
            "--seeds" => {
                i += 1;
                let n: u64 =
                    args.get(i).and_then(|s| s.parse().ok()).expect("--seeds takes a count");
                seeds = Some(n);
            }
            "--threads" => {
                i += 1;
                let n: usize =
                    args.get(i).and_then(|s| s.parse().ok()).expect("--threads takes a count");
                threads = Some(n);
            }
            other => {
                eprintln!("unknown serve argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let mut opts = Opts::default();
    if quick {
        opts.scale = 0.25;
        opts.seeds = vec![1];
    }
    if let Some(n) = seeds {
        opts.seeds = (1..=n).collect();
    }
    opts.threads = threads;
    println!("CLAMShell reproduction harness — seeds={:?} scale={}", opts.seeds, opts.scale);
    eprintln!("sweep engine: {} worker thread(s)", opts.thread_count());
    if let Err(msg) = serve(&opts, &sa) {
        eprintln!("{msg}; try --scenario list");
        std::process::exit(2);
    }
}

/// `repro megasweep ...`: parse sharded-sweep flags and run the
/// mega-grid walkthrough. Stdout (header + final table) is
/// bit-identical across thread counts, shard sizes, and kill/resume
/// splits; progress and resume diagnostics go to stderr.
fn megasweep_cli(args: &[String]) {
    use clamshell_bench::experiments::megasweep::{megasweep, MegasweepArgs};

    let mut ma = MegasweepArgs::default();
    let mut quick = false;
    let mut threads: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--quick" => quick = true,
            "--resume" => ma.resume = true,
            "--cells" => {
                i += 1;
                let n: usize =
                    args.get(i).and_then(|s| s.parse().ok()).expect("--cells takes a count");
                ma.cells = n;
            }
            "--shard-size" => {
                i += 1;
                let s: usize =
                    args.get(i).and_then(|s| s.parse().ok()).expect("--shard-size takes a count");
                ma.shard_size = s;
            }
            "--manifest" => {
                i += 1;
                let path = args.get(i).expect("--manifest takes a path").clone();
                ma.manifest = std::path::PathBuf::from(path);
            }
            "--threads" => {
                i += 1;
                let n: usize =
                    args.get(i).and_then(|s| s.parse().ok()).expect("--threads takes a count");
                threads = Some(n);
            }
            other => {
                eprintln!("unknown megasweep argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let mut opts = Opts::default();
    if quick {
        opts.scale = 0.25;
        opts.seeds = vec![1];
    }
    opts.threads = threads;
    println!("CLAMShell reproduction harness — seeds={:?} scale={}", opts.seeds, opts.scale);
    eprintln!("sweep engine: {} worker thread(s)", opts.thread_count());
    if let Err(msg) = megasweep(&opts, &ma) {
        eprintln!("{msg}");
        std::process::exit(2);
    }
}
