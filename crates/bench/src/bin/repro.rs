//! The reproduction harness CLI.
//!
//! ```text
//! repro --list                 # show all experiments
//! repro fig9 fig10             # run specific experiments
//! repro --all                  # run everything (used to fill EXPERIMENTS.md)
//! repro --all --quick          # smaller workloads, single seed
//! repro fig9 --seeds 5         # average over 5 seeds
//! repro --all --threads 4      # sweep-engine worker threads
//! repro --scenario churn       # one adversity scenario vs benign
//! repro --scenario blackout --trace t.jsonl   # + flight-recorder JSONL
//! repro --scenario churn --format json        # machine-readable report
//! repro --help                 # usage (also -h)
//! ```
//!
//! Flags compose order-independently: an explicit `--seeds N` always
//! wins over `--quick`'s single-seed default, whichever comes first.
//! `--threads N` (env fallback `CLAMSHELL_THREADS`, default: available
//! parallelism) only changes how fast sweeps run — the engine merges
//! results in job-index order, so stdout is byte-identical at any
//! thread count. `--trace` streams every scenario cell's flight
//! recorder to a JSONL file (versioned schema, see
//! `clamshell_obs::trace`); the recording draws no RNG values, so
//! traced tables match untraced ones byte for byte.

use clamshell_bench::{extra_registry, registry, util::json_str, util::Opts};

/// Usage text shared by `--help` and the no-argument listing.
const USAGE: &str = "\
usage: repro [--all] [--quick] [--seeds N] [--threads N] [--scenario NAME]
             [--trace PATH] [--format FMT] [--list] [name...]

  --all            run every experiment
  --quick          smaller workloads and a single seed (scale 0.25)
  --seeds N        average over seeds 1..=N; always wins over --quick's
                   single-seed default, in either flag order
  --threads N      sweep-engine worker threads (else CLAMSHELL_THREADS,
                   else available parallelism); never changes stdout —
                   results merge in job-index order at any thread count
  --scenario NAME  run one adversity scenario against the benign
                   baseline (see the scenario catalog in README);
                   repeatable; `--scenario list` lists names
  --trace PATH     (with --scenario) write every cell's flight-recorder
                   trace to PATH as JSONL: one header line plus one line
                   per event per (scenario, seed), in job order
  --format FMT     output format: text (default) or json; json applies
                   to --scenario and --list, and is rejected with --all
                   (its stdout is the recorded EXPERIMENTS.md transcript)
  --list           list experiments and exit
  --help, -h       this message";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut run_all = false;
    let mut list = false;
    let mut quick = false;
    let mut seeds: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut scenarios: Vec<String> = Vec::new();
    let mut trace: Option<std::path::PathBuf> = None;
    let mut json = false;
    let mut picked: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => run_all = true,
            "--list" => list = true,
            "--quick" => quick = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--seeds" => {
                i += 1;
                let n: u64 =
                    args.get(i).and_then(|s| s.parse().ok()).expect("--seeds takes a count");
                seeds = Some(n);
            }
            "--threads" => {
                i += 1;
                let n: usize =
                    args.get(i).and_then(|s| s.parse().ok()).expect("--threads takes a count");
                threads = Some(n);
            }
            "--scenario" => {
                i += 1;
                let name = args.get(i).expect("--scenario takes a name").clone();
                scenarios.push(name);
            }
            "--trace" => {
                i += 1;
                let path = args.get(i).expect("--trace takes a path").clone();
                trace = Some(std::path::PathBuf::from(path));
            }
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("text") => json = false,
                    Some("json") => json = true,
                    Some(other) => {
                        eprintln!("unknown format: {other} (text|json)");
                        std::process::exit(2);
                    }
                    None => {
                        eprintln!("--format takes a value (text|json)");
                        std::process::exit(2);
                    }
                }
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
            exp => picked.push(exp.to_string()),
        }
        i += 1;
    }

    // The --all transcript is the recorded EXPERIMENTS.md baseline;
    // machine formats and traces must not ride on it.
    if run_all && json {
        eprintln!("--format json is not supported with --all (use --scenario or --list)");
        std::process::exit(2);
    }
    if trace.is_some() && scenarios.is_empty() {
        eprintln!("--trace requires --scenario");
        std::process::exit(2);
    }

    // Compose flags after parsing so order never matters: `--quick`
    // provides defaults, explicit `--seeds` overrides them either way
    // around.
    let mut opts = Opts::default();
    if quick {
        opts.scale = 0.25;
        opts.seeds = vec![1];
    }
    if let Some(n) = seeds {
        opts.seeds = (1..=n).collect();
    }
    // Every experiment path resolves its thread count from `opts`
    // (falling back to CLAMSHELL_THREADS, then available parallelism),
    // so no process-global state is needed.
    opts.threads = threads;

    // Stderr line in the banner keeps stdout byte-identical across
    // thread counts.
    let banner = |opts: &Opts| {
        println!("CLAMShell reproduction harness — seeds={:?} scale={}", opts.seeds, opts.scale);
        eprintln!("sweep engine: {} worker thread(s)", opts.thread_count());
    };

    // Scenario mode: run the named adversity scenario(s) against the
    // benign baseline and exit. `--scenario list` prints the catalog.
    if !scenarios.is_empty() {
        if scenarios.iter().any(|s| s == "list") {
            println!("adversity scenarios:");
            for s in clamshell_bench::scenario_catalog() {
                println!("  {:<14} {}", s.name, s.summary);
            }
            return;
        }
        if !json {
            banner(&opts);
        }
        let mode = clamshell_bench::experiments::adversity::scenario_mode(
            &opts,
            &scenarios,
            json,
            trace.as_deref(),
        );
        if let Err(msg) = mode {
            eprintln!("{msg}; try --scenario list");
            std::process::exit(2);
        }
        return;
    }

    let all = registry();
    let extra = extra_registry();
    if list || (!run_all && picked.is_empty()) {
        if json {
            let render = |exps: &[clamshell_bench::Experiment]| {
                exps.iter()
                    .map(|(name, desc, _)| {
                        format!(
                            "\n    {{\"name\": {}, \"description\": {}}}",
                            json_str(name),
                            json_str(desc)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",")
            };
            print!(
                "{{\n  \"version\": 1,\n  \"report\": \"list\",\n  \"experiments\": [{}\n  ],\n  \
                 \"extra\": [{}\n  ]\n}}\n",
                render(&all),
                render(&extra)
            );
            return;
        }
        println!("experiments ({} total):", all.len());
        for (name, desc, _) in &all {
            println!("  {name:<10} {desc}");
        }
        println!("\nextra experiments (run by name; not part of --all):");
        for (name, desc, _) in &extra {
            println!("  {name:<10} {desc}");
        }
        println!("\n{USAGE}");
        return;
    }

    banner(&opts);
    let mut ran = 0;
    for (name, _, f) in &all {
        if run_all || picked.iter().any(|p| p == name) {
            f(&opts);
            ran += 1;
        }
    }
    // Extras never ride on --all (its stdout is the recorded
    // EXPERIMENTS.md transcript); they only run when named.
    for (name, _, f) in &extra {
        if picked.iter().any(|p| p == name) {
            f(&opts);
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no experiment matched {picked:?}; try --list");
        std::process::exit(2);
    }
}
