//! # clamshell-bench
//!
//! The reproduction harness: one experiment per table/figure of the
//! paper's evaluation (§6), each printing the paper's expectation next to
//! the measured result. Run via the `repro` binary:
//!
//! ```text
//! cargo run -p clamshell-bench --release --bin repro -- --list
//! cargo run -p clamshell-bench --release --bin repro -- fig9
//! cargo run -p clamshell-bench --release --bin repro -- --all
//! ```
//!
//! Shape, not absolute numbers: the paper measured live Mechanical Turk
//! workers; this harness drives the calibrated simulator. Each experiment
//! states the paper's qualitative/ratio claim and reports the measured
//! analogue (see EXPERIMENTS.md for the recorded outcomes).

#![warn(missing_docs)]

pub mod experiments;
pub mod util;

use experiments as exp;

/// One registered experiment: `(name, description, runner)`.
pub type Experiment = (&'static str, &'static str, fn(&util::Opts));

/// The adversity scenario catalog (re-exported for the `repro` CLI's
/// `--scenario list`).
pub fn scenario_catalog() -> &'static [clamshell_scenarios::ScenarioDef] {
    clamshell_scenarios::catalog()
}

/// All experiments, in paper order: `(name, description, runner)`.
pub fn registry() -> Vec<Experiment> {
    vec![
        (
            "table2",
            "Technique capability matrix (latency/variance/cost/generality)",
            exp::tables::table2 as fn(&util::Opts),
        ),
        ("table3", "Experimental parameter glossary", exp::tables::table3),
        ("fig2", "CDFs of per-worker latency mean/std (medical trace)", exp::trace::fig2),
        ("fig3", "Points labeled over time, PM8 vs PM-inf, Ng in {1,5,10}", exp::maintenance::fig3),
        ("fig4", "End-to-end latency & cost with/without pool maintenance", exp::maintenance::fig4),
        (
            "fig5",
            "Task latency vs worker age (maintenance purges slow workers)",
            exp::maintenance::fig5,
        ),
        ("fig6", "Mean pool latency per batch, PM8 vs PM-inf", exp::maintenance::fig6),
        ("fig7", "Workers replaced over time vs PM threshold", exp::maintenance::fig7),
        ("fig8", "Latency percentiles vs PM threshold by worker-age slice", exp::maintenance::fig8),
        ("fig9", "Straggler mitigation: per-batch latency std vs R", exp::straggler::fig9),
        ("fig10", "Points labeled over time with straggler mitigation", exp::straggler::fig10),
        (
            "fig11",
            "Straggler mitigation summary: cost/latency/variance ratios",
            exp::straggler::fig11,
        ),
        ("fig12", "Combining SM x PM: latency/variance/cost grid", exp::combine::fig12),
        ("fig13", "Per-assignment Gantt statistics per SM x PM config", exp::combine::fig13),
        ("fig14", "TermEst restores replacement rate under SM", exp::combine::fig14),
        ("fig15", "AL/PL/HL on generated datasets (hardness x AL fraction)", exp::learning::fig15),
        ("fig16", "AL/PL/HL on digits & objects with simulated workers", exp::learning::fig16),
        (
            "fig17",
            "Time to reach accuracy thresholds: CLAMShell vs baselines",
            exp::learning::fig17,
        ),
        ("fig18", "Wall-clock vs accuracy curves: CLAMShell vs baselines", exp::learning::fig18),
        (
            "headline",
            "Raw 500-label acquisition: 7.24x throughput, 151x variance",
            exp::combine::headline,
        ),
        ("poolmodel", "Pool-convergence closed form vs simulated MPL", exp::maintenance::poolmodel),
        ("routing", "Straggler routing policies: random ~= oracle", exp::straggler::routing),
        ("qcsm", "Decoupled SM + quality control vs naive duplication", exp::straggler::qcsm),
        (
            "adversity",
            "Scenario library: accuracy/latency deltas vs benign crowd",
            exp::adversity::adversity,
        ),
    ]
}

/// Experiments that postdate the recorded `--all` transcript in
/// EXPERIMENTS.md: runnable by name and shown by `--list`, but excluded
/// from `--all` so its stdout stays byte-stable.
pub fn extra_registry() -> Vec<Experiment> {
    vec![(
        "pool_lifecycle",
        "Pool checkout strategies, idle timeouts & generations per scenario",
        exp::pool_lifecycle::pool_lifecycle as fn(&util::Opts),
    )]
}
