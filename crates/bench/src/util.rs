//! Shared experiment plumbing: options, seed averaging, table printing.

use clamshell_core::metrics::RunReport;
use clamshell_core::task::TaskSpec;
use clamshell_core::RunConfig;
use clamshell_sweep::{threads, Grid};
use clamshell_trace::Population;

/// Global harness options.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// Scale factor in (0, 1] shrinking task counts / budgets for smoke
    /// runs (`--quick` sets 0.25).
    pub scale: f64,
    /// Worker threads for the sweep engine; `None` resolves via the
    /// `CLAMSHELL_THREADS` environment variable, else available
    /// parallelism. Thread count never changes experiment output — the
    /// engine merges results in job-index order.
    pub threads: Option<usize>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts { seeds: vec![1, 2, 3], scale: 1.0, threads: None }
    }
}

impl Opts {
    /// Scale an experiment size.
    pub fn n(&self, full: usize) -> usize {
        ((full as f64 * self.scale).round() as usize).max(1)
    }

    /// Resolved sweep-engine thread count.
    pub fn thread_count(&self) -> usize {
        threads::resolve(self.threads)
    }
}

/// Binary-classification task specs of `ng` records each.
pub fn binary_specs(n_tasks: usize, ng: usize) -> Vec<TaskSpec> {
    (0..n_tasks).map(|i| TaskSpec::new(vec![(i % 2) as u32; ng])).collect()
}

/// Ten-class task specs (the MNIST-like setting of Figure 3).
pub fn digit_specs(n_tasks: usize, ng: usize) -> Vec<TaskSpec> {
    (0..n_tasks).map(|i| TaskSpec::new((0..ng).map(|j| ((i + j) % 10) as u32).collect())).collect()
}

/// Run one configuration over all seeds and return the reports, seed
/// order preserved.
///
/// Serial-compat shim over the sweep engine: the signature predates
/// `clamshell-sweep` and is kept for callers that sweep a single
/// config, but the work now fans across the engine's work-stealing
/// pool (thread count from `CLAMSHELL_THREADS`, else available
/// parallelism). Reports are merged in seed order, so output is
/// byte-identical to the old serial loop at any thread count.
pub fn run_seeds(
    base: &RunConfig,
    population: &Population,
    specs: &[TaskSpec],
    batch_size: usize,
    seeds: &[u64],
) -> Vec<RunReport> {
    Grid::new(base.clone(), population.clone(), specs.to_vec(), batch_size)
        .seeds(seeds)
        .run_all(None)
}

/// [`run_seeds`] with the seed axis *and* thread count taken from
/// `opts` — what experiments should call, so a caller-supplied
/// `Opts::threads` is honored on every sweep path.
pub fn run_seeds_opts(
    opts: &Opts,
    base: &RunConfig,
    population: &Population,
    specs: &[TaskSpec],
    batch_size: usize,
) -> Vec<RunReport> {
    Grid::new(base.clone(), population.clone(), specs.to_vec(), batch_size)
        .seeds(&opts.seeds)
        .run_all(opts.threads)
}

/// A labeled config mutation, as accepted by [`run_scenarios`].
pub type ScenarioSpec = (String, Box<dyn Fn(&mut RunConfig) + Send + Sync>);

/// Run labeled scenario mutations of `base` × `opts.seeds` through the
/// sweep engine in one fan-out.
///
/// Returns reports grouped scenario-major (declaration order), seeds in
/// `opts.seeds` order within each group — the shape experiment tables
/// print from.
pub fn run_scenarios(
    opts: &Opts,
    base: &RunConfig,
    population: &Population,
    specs: &[TaskSpec],
    batch_size: usize,
    scenarios: Vec<ScenarioSpec>,
) -> Vec<Vec<RunReport>> {
    let mut grid =
        Grid::new(base.clone(), population.clone(), specs.to_vec(), batch_size).seeds(&opts.seeds);
    for (label, mutate) in scenarios {
        grid = grid.scenario(label, mutate);
    }
    grid.run_grouped(opts.threads)
}

/// Mean of a per-report metric.
pub fn mean_of(reports: &[RunReport], f: impl Fn(&RunReport) -> f64) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(f).sum::<f64>() / reports.len() as f64
}

/// Print the standard experiment header.
pub fn header(id: &str, title: &str, paper_claim: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {title}");
    println!("  paper: {paper_claim}");
    println!("================================================================");
}

/// Print one row of a simple aligned table.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>12}")).collect();
    println!("  {}", line.join(" "));
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a ratio as "N.NNx".
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "inf".into()
    } else {
        format!("{:.2}x", a / b)
    }
}

/// Quote and escape a string for JSON output (the `--format json`
/// paths; same escaping scheme as the lint binary's reports).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opts_scaling_floors_at_one() {
        let o = Opts { seeds: vec![1], scale: 0.001, ..Default::default() };
        assert_eq!(o.n(100), 1);
        let full = Opts::default();
        assert_eq!(full.n(100), 100);
    }

    #[test]
    fn specs_have_requested_shape() {
        let b = binary_specs(4, 5);
        assert_eq!(b.len(), 4);
        assert!(b.iter().all(|s| s.ng() == 5));
        let d = digit_specs(3, 10);
        assert!(d.iter().all(|s| s.truths.iter().all(|&t| t < 10)));
    }

    #[test]
    fn run_seeds_produces_one_report_per_seed() {
        let cfg = RunConfig { pool_size: 4, ..Default::default() };
        let reports = run_seeds(&cfg, &Population::mturk_live(), &binary_specs(4, 2), 4, &[1, 2]);
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.tasks.len() == 4));
    }

    #[test]
    fn run_scenarios_groups_scenario_major_seed_minor() {
        let opts = Opts { seeds: vec![1, 2], ..Default::default() };
        let cfg = RunConfig { pool_size: 4, ..Default::default() };
        let pop = Population::mturk_live();
        let specs = binary_specs(4, 2);
        let grouped = run_scenarios(
            &opts,
            &cfg,
            &pop,
            &specs,
            4,
            vec![
                ("sm".into(), Box::new(|c: &mut RunConfig| c.straggler = Some(Default::default()))),
                ("base".into(), Box::new(|_: &mut RunConfig| {})),
            ],
        );
        assert_eq!(grouped.len(), 2);
        assert!(grouped.iter().all(|row| row.len() == 2));
        // The identity scenario reproduces run_seeds exactly.
        let direct = run_seeds(&cfg, &pop, &specs, 4, &opts.seeds);
        for (a, b) in grouped[1].iter().zip(&direct) {
            assert_eq!(a.total_secs(), b.total_secs());
            assert_eq!(a.cost.total_micro(), b.cost.total_micro());
        }
    }
}
