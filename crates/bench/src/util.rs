//! Shared experiment plumbing: options, seed averaging, table printing.

use clamshell_core::metrics::RunReport;
use clamshell_core::runner::run_batched;
use clamshell_core::task::TaskSpec;
use clamshell_core::RunConfig;
use clamshell_trace::Population;

/// Global harness options.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// Scale factor in (0, 1] shrinking task counts / budgets for smoke
    /// runs (`--quick` sets 0.25).
    pub scale: f64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts { seeds: vec![1, 2, 3], scale: 1.0 }
    }
}

impl Opts {
    /// Scale an experiment size.
    pub fn n(&self, full: usize) -> usize {
        ((full as f64 * self.scale).round() as usize).max(1)
    }
}

/// Binary-classification task specs of `ng` records each.
pub fn binary_specs(n_tasks: usize, ng: usize) -> Vec<TaskSpec> {
    (0..n_tasks).map(|i| TaskSpec::new(vec![(i % 2) as u32; ng])).collect()
}

/// Ten-class task specs (the MNIST-like setting of Figure 3).
pub fn digit_specs(n_tasks: usize, ng: usize) -> Vec<TaskSpec> {
    (0..n_tasks).map(|i| TaskSpec::new((0..ng).map(|j| ((i + j) % 10) as u32).collect())).collect()
}

/// Run one configuration over all seeds and return the reports.
pub fn run_seeds(
    base: &RunConfig,
    population: &Population,
    specs: &[TaskSpec],
    batch_size: usize,
    seeds: &[u64],
) -> Vec<RunReport> {
    seeds
        .iter()
        .map(|&seed| {
            let cfg = RunConfig { seed, ..base.clone() };
            run_batched(cfg, population.clone(), specs.to_vec(), batch_size)
        })
        .collect()
}

/// Mean of a per-report metric.
pub fn mean_of(reports: &[RunReport], f: impl Fn(&RunReport) -> f64) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(f).sum::<f64>() / reports.len() as f64
}

/// Print the standard experiment header.
pub fn header(id: &str, title: &str, paper_claim: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {title}");
    println!("  paper: {paper_claim}");
    println!("================================================================");
}

/// Print one row of a simple aligned table.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>12}")).collect();
    println!("  {}", line.join(" "));
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a ratio as "N.NNx".
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "inf".into()
    } else {
        format!("{:.2}x", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opts_scaling_floors_at_one() {
        let o = Opts { seeds: vec![1], scale: 0.001 };
        assert_eq!(o.n(100), 1);
        let full = Opts::default();
        assert_eq!(full.n(100), 100);
    }

    #[test]
    fn specs_have_requested_shape() {
        let b = binary_specs(4, 5);
        assert_eq!(b.len(), 4);
        assert!(b.iter().all(|s| s.ng() == 5));
        let d = digit_specs(3, 10);
        assert!(d.iter().all(|s| s.truths.iter().all(|&t| t < 10)));
    }

    #[test]
    fn run_seeds_produces_one_report_per_seed() {
        let cfg = RunConfig { pool_size: 4, ..Default::default() };
        let reports = run_seeds(&cfg, &Population::mturk_live(), &binary_specs(4, 2), 4, &[1, 2]);
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.tasks.len() == 4));
    }
}
