//! `repro serve`: the streaming service-mode walkthrough.
//!
//! Runs the suite's service cell in open-loop streaming mode —
//! retirement on, periodic checkpoints — renders the checkpoint
//! dashboard, and then replays the same workload through
//! [`run_batched`] to print the bit-for-bit equivalence witness (the
//! three [`StreamDigest`] fingerprints must match exactly). Everything
//! on stdout is deterministic in `(seed, scenario, rate, tasks,
//! checkpoint interval)`: CI runs `repro serve --quick` at
//! `CLAMSHELL_THREADS=1` and `=4` and byte-compares the output.

use crate::util::Opts;
use clamshell_core::runner::run_batched;
use clamshell_obs::fingerprint_hex;
use clamshell_scenarios::{find, suite};
use clamshell_stream::{dashboard, run_stream, source, StreamConfig, StreamDigest};

/// Service-mode knobs parsed from the `repro serve` command line.
#[derive(Debug, Clone)]
pub struct ServeArgs {
    /// Mean open-loop arrival rate (tasks per simulated second).
    pub rate: f64,
    /// Stream length before `--quick` scaling.
    pub tasks: usize,
    /// Completed tasks per checkpoint.
    pub checkpoint_every: usize,
    /// Optional adversity scenario to compose with the stream.
    pub scenario: Option<String>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        // The default rate sits near the suite cell's service
        // throughput (~0.014 tasks per simulated second), so the
        // walkthrough shows a backlog that drains instead of an
        // overloaded queue. Rate is reporting-only either way.
        ServeArgs { rate: 0.01, tasks: 96, checkpoint_every: 8, scenario: None }
    }
}

/// Run the service walkthrough; `Err` carries the user-facing message
/// for an unknown scenario name.
pub fn serve(opts: &Opts, args: &ServeArgs) -> Result<(), String> {
    let scenario = args
        .scenario
        .as_deref()
        .map(|name| find(name).ok_or_else(|| format!("unknown scenario: {name}")))
        .transpose()?;
    let n_tasks = opts.n(args.tasks);
    let knobs = StreamConfig {
        rate_per_sec: args.rate,
        checkpoint_every: args.checkpoint_every,
        retire: true,
    };
    for &seed in &opts.seeds {
        let mut cfg = suite::base_config();
        cfg.seed = seed;
        if let Some(def) = scenario {
            def.apply(&mut cfg);
        }
        println!(
            "\n== serve: {} tasks at {} tasks/s, checkpoint every {}, scenario {}, seed {} ==",
            n_tasks,
            args.rate,
            args.checkpoint_every,
            scenario.map_or("benign", |d| d.name),
            seed
        );
        // The service run: unbounded source, bounded memory (completed
        // state retires at every batch boundary).
        let outcome = run_stream(
            cfg.clone(),
            suite::population(),
            source::alternating(suite::NG as u32),
            n_tasks,
            suite::BATCH,
            &knobs,
        );
        print!("{}", dashboard::render(&outcome.checkpoints));
        println!("{}", dashboard::summary(&outcome.checkpoints));

        // The equivalence witness: the batched run over the same spec
        // prefix must fold to the same three digests the stream
        // accumulated while retiring rows.
        let specs = source::alternating_specs(suite::NG as u32, n_tasks);
        let batched = run_batched(cfg, suite::population(), specs, suite::BATCH);
        let streamed = outcome.digest.values();
        let reference = StreamDigest::of(&batched).values();
        assert_eq!(
            streamed, reference,
            "streamed/batched equivalence broke: {streamed:?} != {reference:?}"
        );
        println!(
            "equivalence: streamed == batched bit-for-bit (tasks {}, assignments {}, batches {})",
            fingerprint_hex(streamed.0),
            fingerprint_hex(streamed.1),
            fingerprint_hex(streamed.2)
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_runs_the_quick_cell() {
        let opts = Opts { seeds: vec![1], scale: 0.25, threads: None };
        assert!(serve(&opts, &ServeArgs::default()).is_ok());
    }

    #[test]
    fn serve_composes_with_scenarios_and_rejects_unknown_names() {
        let opts = Opts { seeds: vec![1], scale: 0.25, threads: None };
        let churn = ServeArgs { scenario: Some("churn".into()), ..ServeArgs::default() };
        assert!(serve(&opts, &churn).is_ok());
        let bogus = ServeArgs { scenario: Some("nope".into()), ..ServeArgs::default() };
        assert_eq!(serve(&opts, &bogus), Err("unknown scenario: nope".into()));
    }
}
