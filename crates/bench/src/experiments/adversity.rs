//! Adversity: accuracy/latency/cost deltas vs the benign baseline for
//! every named scenario in the `clamshell-scenarios` catalog.
//!
//! This is the experiment the paper never ran: the same CLAMShell
//! configuration (SM on, PM8 on) driven through spammer/adversarial
//! populations, mid-assignment churn, platform blackouts, bursty
//! arrivals, and heavy-tailed inflation. Run all scenarios via
//! `repro adversity`, or a single one via `repro --scenario <name>`.

use crate::util::{f2, header, json_str, mean_of, ratio, row, Opts};
use clamshell_core::metrics::RunReport;
use clamshell_core::RunConfig;
use clamshell_obs::ObsConfig;
use clamshell_scenarios::{catalog, find, ScenarioDef};
use clamshell_sweep::Grid;
use clamshell_trace::Population;
use std::io::Write;
use std::path::Path;

fn base_config(seed: u64) -> RunConfig {
    RunConfig { pool_size: 8, ng: 5, seed, ..Default::default() }
        .with_straggler()
        .with_maintenance()
}

/// Ring capacity for `--trace` captures: lossless for scenario-mode
/// workloads, so the streamed JSONL is the complete event record.
const TRACE_RING: usize = 1 << 16;

fn run_defs_with(opts: &Opts, defs: &[&ScenarioDef], obs: ObsConfig) -> Vec<Vec<RunReport>> {
    let n_tasks = opts.n(48);
    let base = RunConfig { obs, ..base_config(opts.seeds[0]) };
    let mut grid =
        Grid::new(base, Population::mturk_live(), crate::util::binary_specs(n_tasks, 5), 8)
            .seeds(&opts.seeds);
    for def in defs {
        let def = **def;
        grid = grid.scenario(def.name, move |cfg| def.apply(cfg));
    }
    let flat = grid.try_run_all(opts.threads).expect("catalog scenario labels are unique");
    // Enumeration is scenario-major, seed-minor: rows are seed chunks.
    flat.chunks(opts.seeds.len()).map(<[RunReport]>::to_vec).collect()
}

fn run_defs(opts: &Opts, defs: &[&ScenarioDef]) -> Vec<Vec<RunReport>> {
    run_defs_with(opts, defs, ObsConfig::default())
}

fn print_table(defs: &[&ScenarioDef], grouped: &[Vec<RunReport>]) {
    row(&[
        "scenario".into(),
        "accuracy".into(),
        "d.acc".into(),
        "latency_s".into(),
        "d.lat".into(),
        "cost_usd".into(),
        "departed".into(),
    ]);
    let benign_idx = defs.iter().position(|d| d.name == "benign").unwrap_or(0);
    let benign_acc = mean_of(&grouped[benign_idx], |r| r.accuracy());
    let benign_lat = mean_of(&grouped[benign_idx], |r| r.total_secs());
    for (def, reports) in defs.iter().zip(grouped) {
        let acc = mean_of(reports, |r| r.accuracy());
        let lat = mean_of(reports, |r| r.total_secs());
        let cost = mean_of(reports, |r| r.cost.total_micro() as f64 / 1e6);
        let departed = mean_of(reports, |r| r.workers_departed as f64);
        row(&[
            def.name.into(),
            f2(acc),
            format!("{:+.2}", acc - benign_acc),
            f2(lat),
            ratio(lat, benign_lat),
            f2(cost),
            f2(departed),
        ]);
    }
}

/// The full catalog sweep (`repro adversity`).
pub fn adversity(opts: &Opts) {
    header(
        "adversity",
        "Scenario library: accuracy/latency deltas vs the benign baseline",
        "not in the paper; motivated by Krishna et al. (rapid-worker error) and \
         Muhammadi et al. (spammer/adversarial crowds)",
    );
    let defs: Vec<&ScenarioDef> = catalog().iter().collect();
    let grouped = run_defs(opts, &defs);
    print_table(&defs, &grouped);
    println!(
        "  expectation: adversarial/spammers cut accuracy; blackout/heavy-tail/sleepy \
         stretch latency; churn departs workers; benign deltas are zero by definition"
    );
}

/// One scenario (plus the benign baseline) — `repro --scenario <name>`.
/// Returns `false` if the name is unknown.
pub fn single_scenario(opts: &Opts, name: &str) -> bool {
    scenario_mode(opts, std::slice::from_ref(&name.to_string()), false, None).is_ok()
}

/// The baseline-plus-scenario def list `--scenario <name>` runs.
fn defs_for(def: &'static ScenarioDef) -> Vec<&'static ScenarioDef> {
    if def.name == "benign" {
        vec![def]
    } else {
        vec![find("benign").expect("catalog always has benign"), def]
    }
}

/// One scenario's structured comparison rows (the JSON analogue of
/// [`print_table`]). Fixed decimal formatting keeps the rendering
/// byte-stable at any thread count.
fn json_rows(defs: &[&ScenarioDef], grouped: &[Vec<RunReport>]) -> String {
    let mut out = String::new();
    for (i, (def, reports)) in defs.iter().zip(grouped).enumerate() {
        let acc = mean_of(reports, |r| r.accuracy());
        let lat = mean_of(reports, |r| r.total_secs());
        let cost = mean_of(reports, |r| r.cost.total_micro() as f64 / 1e6);
        let departed = mean_of(reports, |r| r.workers_departed as f64);
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "        {{\"scenario\": {}, \"accuracy\": {acc:.4}, \"latency_secs\": {lat:.3}, \
             \"cost_usd\": {cost:.4}, \"workers_departed\": {departed:.2}}}",
            json_str(def.name)
        ));
    }
    out
}

/// Full scenario mode: run each named scenario against the benign
/// baseline, printing text tables or (with `json`) one versioned JSON
/// document, and optionally streaming every cell's flight-recorder
/// trace to `trace` as JSONL (header line + one line per event, cells
/// in job order). Returns `Err` with a message on an unknown name.
pub fn scenario_mode(
    opts: &Opts,
    names: &[String],
    json: bool,
    trace: Option<&Path>,
) -> Result<(), String> {
    let mut picked: Vec<&'static ScenarioDef> = Vec::new();
    for name in names {
        picked.push(find(name).ok_or_else(|| format!("unknown scenario: {name}"))?);
    }
    // Tracing needs instrumented runs; plain table modes must stay
    // byte-identical to the uninstrumented harness, so obs is off there.
    let obs = match trace {
        Some(_) => ObsConfig::with_ring(TRACE_RING),
        None => ObsConfig::default(),
    };
    let mut trace_out: Option<std::io::BufWriter<std::fs::File>> = trace
        .map(|p| {
            std::fs::File::create(p)
                .map(std::io::BufWriter::new)
                .map_err(|e| format!("cannot create trace file {}: {e}", p.display()))
        })
        .transpose()?;
    let mut json_sections = String::new();
    for (k, def) in picked.iter().enumerate() {
        let defs = defs_for(def);
        let grouped = run_defs_with(opts, &defs, obs);
        if json {
            json_sections.push_str(if k == 0 { "\n" } else { ",\n" });
            json_sections.push_str(&format!(
                "    {{\"name\": {}, \"summary\": {}, \"rows\": [{}\n    ]}}",
                json_str(def.name),
                json_str(def.summary),
                json_rows(&defs, &grouped)
            ));
        } else {
            header(&format!("scenario:{}", def.name), def.summary, def.motivation);
            print_table(&defs, &grouped);
        }
        if let Some(out) = trace_out.as_mut() {
            for (d, reports) in defs.iter().zip(&grouped) {
                for (report, &seed) in reports.iter().zip(&opts.seeds) {
                    let obs_report =
                        report.obs.as_ref().expect("traced scenario runs are instrumented");
                    out.write_all(obs_report.render_jsonl(d.name, seed).as_bytes())
                        .map_err(|e| format!("cannot write trace: {e}"))?;
                }
            }
        }
    }
    if let Some(mut out) = trace_out {
        out.flush().map_err(|e| format!("cannot flush trace: {e}"))?;
    }
    if json {
        let seeds: Vec<String> = opts.seeds.iter().map(u64::to_string).collect();
        print!(
            "{{\n  \"version\": 1,\n  \"report\": \"scenario\",\n  \"seeds\": [{}],\n  \
             \"scenarios\": [{}\n  ]\n}}\n",
            seeds.join(", "),
            json_sections
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_scenario_rejects_unknown_names() {
        let opts = Opts { seeds: vec![1], scale: 0.05, ..Default::default() };
        assert!(!single_scenario(&opts, "definitely-not-a-scenario"));
        assert!(single_scenario(&opts, "churn"));
    }

    #[test]
    fn catalog_sweep_runs_at_tiny_scale() {
        let opts = Opts { seeds: vec![1], scale: 0.05, ..Default::default() };
        adversity(&opts);
    }

    #[test]
    fn scenario_mode_rejects_unknown_names_before_running() {
        let opts = Opts { seeds: vec![1], scale: 0.05, ..Default::default() };
        let err = scenario_mode(&opts, &["churn".into(), "nope".into()], false, None).unwrap_err();
        assert!(err.contains("unknown scenario: nope"), "{err}");
    }

    #[test]
    fn scenario_trace_is_complete_and_thread_invariant() {
        let dir = std::env::temp_dir();
        let p1 = dir.join("clamshell_scenario_trace_t1.jsonl");
        let p4 = dir.join("clamshell_scenario_trace_t4.jsonl");
        let mk = |threads: usize| Opts { seeds: vec![1, 2], scale: 0.05, threads: Some(threads) };
        scenario_mode(&mk(1), &["churn".into()], false, Some(&p1)).unwrap();
        scenario_mode(&mk(4), &["churn".into()], false, Some(&p4)).unwrap();
        let a = std::fs::read_to_string(&p1).unwrap();
        let b = std::fs::read_to_string(&p4).unwrap();
        assert_eq!(a, b, "trace JSONL must be byte-identical across thread counts");
        // 2 defs (benign + churn) x 2 seeds = 4 cells, each opening with
        // a schema-versioned header line.
        let headers: Vec<&str> =
            a.lines().filter(|l| l.contains("\"stream\":\"clamshell-trace\"")).collect();
        assert_eq!(headers.len(), 4);
        assert!(headers[0].starts_with("{\"v\":1,"));
        assert!(a.lines().all(|l| l.starts_with("{\"v\":1,") && l.ends_with('}')));
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p4);
    }

    #[test]
    fn tracing_does_not_perturb_the_table() {
        // The text table printed with --trace must match the untraced
        // one: instrumentation draws no RNG values. print_table writes
        // to stdout, so compare the underlying reports instead.
        let opts = Opts { seeds: vec![1], scale: 0.05, ..Default::default() };
        let defs = defs_for(find("churn").unwrap());
        let plain = run_defs(&opts, &defs);
        let traced = run_defs_with(&opts, &defs, clamshell_obs::ObsConfig::with_ring(TRACE_RING));
        for (a, b) in plain.iter().flatten().zip(traced.iter().flatten()) {
            assert!(b.obs.is_some() && a.obs.is_none());
            let mut stripped = b.clone();
            stripped.obs = None;
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(&stripped).unwrap()
            );
        }
    }
}
