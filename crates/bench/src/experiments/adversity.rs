//! Adversity: accuracy/latency/cost deltas vs the benign baseline for
//! every named scenario in the `clamshell-scenarios` catalog.
//!
//! This is the experiment the paper never ran: the same CLAMShell
//! configuration (SM on, PM8 on) driven through spammer/adversarial
//! populations, mid-assignment churn, platform blackouts, bursty
//! arrivals, and heavy-tailed inflation. Run all scenarios via
//! `repro adversity`, or a single one via `repro --scenario <name>`.

use crate::util::{f2, header, mean_of, ratio, row, Opts};
use clamshell_core::metrics::RunReport;
use clamshell_core::RunConfig;
use clamshell_scenarios::{catalog, find, ScenarioDef};
use clamshell_sweep::Grid;
use clamshell_trace::Population;

fn base_config(seed: u64) -> RunConfig {
    RunConfig { pool_size: 8, ng: 5, seed, ..Default::default() }
        .with_straggler()
        .with_maintenance()
}

fn run_defs(opts: &Opts, defs: &[&ScenarioDef]) -> Vec<Vec<RunReport>> {
    let n_tasks = opts.n(48);
    let mut grid = Grid::new(
        base_config(opts.seeds[0]),
        Population::mturk_live(),
        crate::util::binary_specs(n_tasks, 5),
        8,
    )
    .seeds(&opts.seeds);
    for def in defs {
        let def = **def;
        grid = grid.scenario(def.name, move |cfg| def.apply(cfg));
    }
    let flat = grid.try_run_all(opts.threads).expect("catalog scenario labels are unique");
    // Enumeration is scenario-major, seed-minor: rows are seed chunks.
    flat.chunks(opts.seeds.len()).map(<[RunReport]>::to_vec).collect()
}

fn print_table(defs: &[&ScenarioDef], grouped: &[Vec<RunReport>]) {
    row(&[
        "scenario".into(),
        "accuracy".into(),
        "d.acc".into(),
        "latency_s".into(),
        "d.lat".into(),
        "cost_usd".into(),
        "departed".into(),
    ]);
    let benign_idx = defs.iter().position(|d| d.name == "benign").unwrap_or(0);
    let benign_acc = mean_of(&grouped[benign_idx], |r| r.accuracy());
    let benign_lat = mean_of(&grouped[benign_idx], |r| r.total_secs());
    for (def, reports) in defs.iter().zip(grouped) {
        let acc = mean_of(reports, |r| r.accuracy());
        let lat = mean_of(reports, |r| r.total_secs());
        let cost = mean_of(reports, |r| r.cost.total_micro() as f64 / 1e6);
        let departed = mean_of(reports, |r| r.workers_departed as f64);
        row(&[
            def.name.into(),
            f2(acc),
            format!("{:+.2}", acc - benign_acc),
            f2(lat),
            ratio(lat, benign_lat),
            f2(cost),
            f2(departed),
        ]);
    }
}

/// The full catalog sweep (`repro adversity`).
pub fn adversity(opts: &Opts) {
    header(
        "adversity",
        "Scenario library: accuracy/latency deltas vs the benign baseline",
        "not in the paper; motivated by Krishna et al. (rapid-worker error) and \
         Muhammadi et al. (spammer/adversarial crowds)",
    );
    let defs: Vec<&ScenarioDef> = catalog().iter().collect();
    let grouped = run_defs(opts, &defs);
    print_table(&defs, &grouped);
    println!(
        "  expectation: adversarial/spammers cut accuracy; blackout/heavy-tail/sleepy \
         stretch latency; churn departs workers; benign deltas are zero by definition"
    );
}

/// One scenario (plus the benign baseline) — `repro --scenario <name>`.
/// Returns `false` if the name is unknown.
pub fn single_scenario(opts: &Opts, name: &str) -> bool {
    let Some(def) = find(name) else {
        return false;
    };
    header(&format!("scenario:{name}"), def.summary, def.motivation);
    let defs: Vec<&ScenarioDef> = if name == "benign" {
        vec![def]
    } else {
        vec![find("benign").expect("catalog always has benign"), def]
    };
    let grouped = run_defs(opts, &defs);
    print_table(&defs, &grouped);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_scenario_rejects_unknown_names() {
        let opts = Opts { seeds: vec![1], scale: 0.05, ..Default::default() };
        assert!(!single_scenario(&opts, "definitely-not-a-scenario"));
        assert!(single_scenario(&opts, "churn"));
    }

    #[test]
    fn catalog_sweep_runs_at_tiny_scale() {
        let opts = Opts { seeds: vec![1], scale: 0.05, ..Default::default() };
        adversity(&opts);
    }
}
