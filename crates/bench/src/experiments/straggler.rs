//! §6.3 — straggler-mitigation experiments (Figures 9–11), the routing
//! policy comparison (§4.1), and the SM × quality-control decoupling.

use crate::util::{binary_specs, header, mean_of, ratio, run_scenarios, run_seeds_opts, Opts};
use clamshell_core::config::{QcMode, StragglerConfig};
use clamshell_core::lifeguard::RoutingPolicy;
use clamshell_core::metrics::RunReport;
use clamshell_core::RunConfig;
use clamshell_sweep::Grid;
use clamshell_trace::Population;

/// CIFAR-like setting of §6.3: Ng = 5, Np = 15.
fn cifar_cfg(straggler: Option<StragglerConfig>) -> RunConfig {
    RunConfig { pool_size: 15, ng: 5, straggler, ..Default::default() }
}

/// The paper's pool-to-batch ratios.
const RATIOS: [f64; 5] = [0.5, 0.75, 1.0, 2.0, 3.0];

/// The SM/NoSM × R grid of Figures 9–10. Each R reshapes the workload
/// (batch size and task count), so scenarios carry spec overrides.
/// Returns reports grouped as `[(sm_reports, nosm_reports); RATIOS]`
/// alongside each ratio's batch size, in `RATIOS` order.
fn sm_ratio_sweep(
    opts: &Opts,
    n_tasks_for: impl Fn(usize) -> usize,
) -> Vec<(f64, usize, Vec<RunReport>, Vec<RunReport>)> {
    let base = cifar_cfg(None);
    let mut grid = Grid::new(base.clone(), Population::mturk_live(), binary_specs(1, 5), 15)
        .seeds(&opts.seeds);
    let mut batches = Vec::new();
    for r in RATIOS {
        let batch = base.batch_size_for_ratio(r);
        let specs = binary_specs(n_tasks_for(batch), 5);
        batches.push(batch);
        grid = grid.scenario_with(
            format!("R{r}/SM"),
            |c| c.straggler = Some(StragglerConfig::default()),
            specs.clone(),
            batch,
        );
        grid = grid.scenario_with(format!("R{r}/NoSM"), |c| c.straggler = None, specs, batch);
    }
    let mut grouped = grid.run_grouped(opts.threads).into_iter();
    RATIOS
        .iter()
        .zip(batches)
        .map(|(&r, batch)| {
            let sm = grouped.next().expect("SM row");
            let no = grouped.next().expect("NoSM row");
            (r, batch, sm, no)
        })
        .collect()
}

/// Figure 9: per-batch latency standard deviation, SM vs NoSM, across R.
pub fn fig9(opts: &Opts) {
    header(
        "Figure 9",
        "Std of per-task latency across batches, SM vs NoSM",
        "straggler mitigation decreases per-batch latency std by 5-10x",
    );
    println!("  R       batch   std-SM    std-NoSM   reduction");
    for (r, batch, sm, no) in
        sm_ratio_sweep(opts, |batch| (opts.n(150) / batch * batch.max(1)).max(batch))
    {
        let (s_sm, s_no) =
            (mean_of(&sm, |x| x.mean_batch_std()), mean_of(&no, |x| x.mean_batch_std()));
        println!("  {r:<7} {batch:<7} {s_sm:>7.2}s  {s_no:>8.2}s  {:>9}", ratio(s_no, s_sm));
    }
}

/// Figure 10: labeling progress with straggler mitigation.
pub fn fig10(opts: &Opts) {
    header(
        "Figure 10",
        "Points labeled over time with straggler mitigation",
        "batches finish without waiting for stragglers: up to 5x latency reduction; \
         R in [0.75, 1] is the sweet spot",
    );
    println!("  R       total-SM    total-NoSM   speedup   throughput-SM (labels/s)");
    for (r, _batch, sm, no) in
        sm_ratio_sweep(opts, |batch| (opts.n(150) / batch.max(1)).max(1) * batch)
    {
        let (t_sm, t_no) = (mean_of(&sm, |x| x.total_secs()), mean_of(&no, |x| x.total_secs()));
        println!(
            "  {r:<7} {t_sm:>8.1}s  {t_no:>10.1}s  {:>8}  {:>10.2}",
            ratio(t_no, t_sm),
            mean_of(&sm, |x| x.throughput()),
        );
    }
}

/// Figure 11: the cost / latency / variance summary of straggler
/// mitigation.
pub fn fig11(opts: &Opts) {
    header(
        "Figure 11",
        "Straggler mitigation summary",
        "increases costs 1-2x, improves latency 2.5-5x, improves variance 4-14x",
    );
    let pop = Population::mturk_live();
    let base = cifar_cfg(None);
    let batch = 15; // R = 1
    let n_tasks = opts.n(150);
    let specs = binary_specs(n_tasks, 5);
    let sm =
        run_seeds_opts(opts, &cifar_cfg(Some(StragglerConfig::default())), &pop, &specs, batch);
    let no = run_seeds_opts(opts, &base, &pop, &specs, batch);
    println!(
        "  cost:     SM=${:.2}  NoSM=${:.2}  ratio={}  (paper: 1-2x increase)",
        mean_of(&sm, |x| x.cost.total_usd()),
        mean_of(&no, |x| x.cost.total_usd()),
        ratio(mean_of(&sm, |x| x.cost.total_usd()), mean_of(&no, |x| x.cost.total_usd())),
    );
    println!(
        "  latency:  SM={:.1}s  NoSM={:.1}s  improvement={}  (paper: 2.5-5x)",
        mean_of(&sm, |x| x.total_secs()),
        mean_of(&no, |x| x.total_secs()),
        ratio(mean_of(&no, |x| x.total_secs()), mean_of(&sm, |x| x.total_secs())),
    );
    println!(
        "  variance: SM-std={:.2}s  NoSM-std={:.2}s  improvement={}  (paper: 4-14x)",
        mean_of(&sm, |x| x.mean_batch_std()),
        mean_of(&no, |x| x.mean_batch_std()),
        ratio(mean_of(&no, |x| x.mean_batch_std()), mean_of(&sm, |x| x.mean_batch_std())),
    );
    println!(
        "  termination rate under SM: {:.1}% of assignments",
        mean_of(&sm, |x| x.termination_rate()) * 100.0
    );
}

/// §4.1 routing-policy simulation: "the selection algorithm didn't affect
/// end-to-end latency, and random performed as fast as the oracle".
pub fn routing(opts: &Opts) {
    header(
        "Routing",
        "Straggler routing policies",
        "random ~= longest-running ~= fewest-workers ~= oracle",
    );
    let pop = Population::mturk_live();
    // R = 1.5: mitigation has headroom, the regime of the paper's claim
    // ("fast workers complete almost all of the tasks in the batch
    // anyways"). At R <= 1 the oracle gains a real edge because idle
    // workers are scarce.
    let batch = 10;
    let specs = binary_specs(opts.n(150), 5);
    let policies = [
        (RoutingPolicy::Random, "Random"),
        (RoutingPolicy::LongestRunning, "LongestRunning"),
        (RoutingPolicy::FewestWorkers, "FewestWorkers"),
        (RoutingPolicy::Oracle, "Oracle"),
    ];
    let grouped = run_scenarios(
        opts,
        &cifar_cfg(None),
        &pop,
        &specs,
        batch,
        policies
            .iter()
            .map(|&(policy, name)| {
                let mutate: Box<dyn Fn(&mut RunConfig) + Send + Sync> = Box::new(move |c| {
                    c.straggler = Some(StragglerConfig { routing: policy, ..Default::default() })
                });
                (name.to_string(), mutate)
            })
            .collect(),
    );
    println!("  policy           mean-batch-latency   total");
    let mut results = Vec::new();
    for ((_, name), reports) in policies.iter().zip(&grouped) {
        let mean_batch = mean_of(reports, |r| r.batch_makespan_summary().mean);
        let total = mean_of(reports, |r| r.total_secs());
        println!("  {name:<16} {mean_batch:>16.2}s   {total:>7.1}s");
        results.push((name, total));
    }
    let best = results.iter().map(|(_, t)| *t).fold(f64::INFINITY, f64::min);
    let worst = results.iter().map(|(_, t)| *t).fold(0.0, f64::max);
    println!("  spread worst/best = {} (paper: no significant difference)", ratio(worst, best));
}

/// §4.1 "Working with Quality Control": decoupled SM + voting vs naive
/// duplication of every vote.
pub fn qcsm(opts: &Opts) {
    header(
        "QC + SM",
        "Straggler mitigation with 3-vote quality control",
        "naive duplication creates ~2v assignments; decoupling needs ~v+1 and saves \
         up to 30% per-batch latency in straggler-heavy pools",
    );
    let pop = Population::mturk_live();
    let batch = 5; // quorum 3 on 15 workers -> R = 1 in assignment terms
    let specs = binary_specs(opts.n(60), 5);
    let scenario = |mode: Option<QcMode>| -> Box<dyn Fn(&mut RunConfig) + Send + Sync> {
        Box::new(move |c| {
            c.quorum = 3;
            c.straggler = mode.map(|m| StragglerConfig { qc_mode: m, ..Default::default() });
        })
    };
    let grouped = run_scenarios(
        opts,
        &cifar_cfg(None),
        &pop,
        &specs,
        batch,
        vec![
            ("decoupled".to_string(), scenario(Some(QcMode::Decoupled))),
            ("naive".to_string(), scenario(Some(QcMode::Naive))),
            ("no-SM".to_string(), scenario(None)),
        ],
    );
    println!("  mode        assignments/task   batch-latency   cost");
    for (name, reports) in ["decoupled", "naive"].iter().zip(&grouped) {
        let per_task = mean_of(reports, |r| r.assignments.len() as f64 / r.tasks.len() as f64);
        println!(
            "  {name:<11} {per_task:>16.2}   {:>12.2}s   ${:.2}",
            mean_of(reports, |r| r.batch_makespan_summary().mean),
            mean_of(reports, |r| r.cost.total_usd()),
        );
    }
    // No-SM quorum baseline for reference.
    let reports = &grouped[2];
    println!(
        "  no-SM       {:>16.2}   {:>12.2}s   ${:.2}",
        mean_of(reports, |r| r.assignments.len() as f64 / r.tasks.len() as f64),
        mean_of(reports, |r| r.batch_makespan_summary().mean),
        mean_of(reports, |r| r.cost.total_usd()),
    );
}
