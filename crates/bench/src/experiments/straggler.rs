//! §6.3 — straggler-mitigation experiments (Figures 9–11), the routing
//! policy comparison (§4.1), and the SM × quality-control decoupling.

use crate::util::{binary_specs, header, mean_of, ratio, run_seeds, Opts};
use clamshell_core::config::{QcMode, StragglerConfig};
use clamshell_core::lifeguard::RoutingPolicy;
use clamshell_core::RunConfig;
use clamshell_trace::Population;

/// CIFAR-like setting of §6.3: Ng = 5, Np = 15.
fn cifar_cfg(straggler: Option<StragglerConfig>) -> RunConfig {
    RunConfig { pool_size: 15, ng: 5, straggler, ..Default::default() }
}

/// The paper's pool-to-batch ratios.
const RATIOS: [f64; 5] = [0.5, 0.75, 1.0, 2.0, 3.0];

/// Figure 9: per-batch latency standard deviation, SM vs NoSM, across R.
pub fn fig9(opts: &Opts) {
    header(
        "Figure 9",
        "Std of per-task latency across batches, SM vs NoSM",
        "straggler mitigation decreases per-batch latency std by 5-10x",
    );
    let pop = Population::mturk_live();
    println!("  R       batch   std-SM    std-NoSM   reduction");
    for r in RATIOS {
        let base = cifar_cfg(None);
        let batch = base.batch_size_for_ratio(r);
        let n_tasks = opts.n(150) / batch * batch.max(1);
        let specs = binary_specs(n_tasks.max(batch), 5);
        let sm = run_seeds(
            &cifar_cfg(Some(StragglerConfig::default())),
            &pop,
            &specs,
            batch,
            &opts.seeds,
        );
        let no = run_seeds(&base, &pop, &specs, batch, &opts.seeds);
        let (s_sm, s_no) =
            (mean_of(&sm, |x| x.mean_batch_std()), mean_of(&no, |x| x.mean_batch_std()));
        println!("  {r:<7} {batch:<7} {s_sm:>7.2}s  {s_no:>8.2}s  {:>9}", ratio(s_no, s_sm));
    }
}

/// Figure 10: labeling progress with straggler mitigation.
pub fn fig10(opts: &Opts) {
    header(
        "Figure 10",
        "Points labeled over time with straggler mitigation",
        "batches finish without waiting for stragglers: up to 5x latency reduction; \
         R in [0.75, 1] is the sweet spot",
    );
    let pop = Population::mturk_live();
    println!("  R       total-SM    total-NoSM   speedup   throughput-SM (labels/s)");
    for r in RATIOS {
        let base = cifar_cfg(None);
        let batch = base.batch_size_for_ratio(r);
        let n_tasks = (opts.n(150) / batch.max(1)).max(1) * batch;
        let specs = binary_specs(n_tasks, 5);
        let sm = run_seeds(
            &cifar_cfg(Some(StragglerConfig::default())),
            &pop,
            &specs,
            batch,
            &opts.seeds,
        );
        let no = run_seeds(&base, &pop, &specs, batch, &opts.seeds);
        let (t_sm, t_no) = (mean_of(&sm, |x| x.total_secs()), mean_of(&no, |x| x.total_secs()));
        println!(
            "  {r:<7} {t_sm:>8.1}s  {t_no:>10.1}s  {:>8}  {:>10.2}",
            ratio(t_no, t_sm),
            mean_of(&sm, |x| x.throughput()),
        );
    }
}

/// Figure 11: the cost / latency / variance summary of straggler
/// mitigation.
pub fn fig11(opts: &Opts) {
    header(
        "Figure 11",
        "Straggler mitigation summary",
        "increases costs 1-2x, improves latency 2.5-5x, improves variance 4-14x",
    );
    let pop = Population::mturk_live();
    let base = cifar_cfg(None);
    let batch = 15; // R = 1
    let n_tasks = opts.n(150);
    let specs = binary_specs(n_tasks, 5);
    let sm =
        run_seeds(&cifar_cfg(Some(StragglerConfig::default())), &pop, &specs, batch, &opts.seeds);
    let no = run_seeds(&base, &pop, &specs, batch, &opts.seeds);
    println!(
        "  cost:     SM=${:.2}  NoSM=${:.2}  ratio={}  (paper: 1-2x increase)",
        mean_of(&sm, |x| x.cost.total_usd()),
        mean_of(&no, |x| x.cost.total_usd()),
        ratio(mean_of(&sm, |x| x.cost.total_usd()), mean_of(&no, |x| x.cost.total_usd())),
    );
    println!(
        "  latency:  SM={:.1}s  NoSM={:.1}s  improvement={}  (paper: 2.5-5x)",
        mean_of(&sm, |x| x.total_secs()),
        mean_of(&no, |x| x.total_secs()),
        ratio(mean_of(&no, |x| x.total_secs()), mean_of(&sm, |x| x.total_secs())),
    );
    println!(
        "  variance: SM-std={:.2}s  NoSM-std={:.2}s  improvement={}  (paper: 4-14x)",
        mean_of(&sm, |x| x.mean_batch_std()),
        mean_of(&no, |x| x.mean_batch_std()),
        ratio(mean_of(&no, |x| x.mean_batch_std()), mean_of(&sm, |x| x.mean_batch_std())),
    );
    println!(
        "  termination rate under SM: {:.1}% of assignments",
        mean_of(&sm, |x| x.termination_rate()) * 100.0
    );
}

/// §4.1 routing-policy simulation: "the selection algorithm didn't affect
/// end-to-end latency, and random performed as fast as the oracle".
pub fn routing(opts: &Opts) {
    header(
        "Routing",
        "Straggler routing policies",
        "random ~= longest-running ~= fewest-workers ~= oracle",
    );
    let pop = Population::mturk_live();
    // R = 1.5: mitigation has headroom, the regime of the paper's claim
    // ("fast workers complete almost all of the tasks in the batch
    // anyways"). At R <= 1 the oracle gains a real edge because idle
    // workers are scarce.
    let batch = 10;
    let specs = binary_specs(opts.n(150), 5);
    println!("  policy           mean-batch-latency   total");
    let mut results = Vec::new();
    for (policy, name) in [
        (RoutingPolicy::Random, "Random"),
        (RoutingPolicy::LongestRunning, "LongestRunning"),
        (RoutingPolicy::FewestWorkers, "FewestWorkers"),
        (RoutingPolicy::Oracle, "Oracle"),
    ] {
        let cfg = cifar_cfg(Some(StragglerConfig { routing: policy, ..Default::default() }));
        let reports = run_seeds(&cfg, &pop, &specs, batch, &opts.seeds);
        let mean_batch = mean_of(&reports, |r| r.batch_makespan_summary().mean);
        let total = mean_of(&reports, |r| r.total_secs());
        println!("  {name:<16} {mean_batch:>16.2}s   {total:>7.1}s");
        results.push((name, total));
    }
    let best = results.iter().map(|(_, t)| *t).fold(f64::INFINITY, f64::min);
    let worst = results.iter().map(|(_, t)| *t).fold(0.0, f64::max);
    println!("  spread worst/best = {} (paper: no significant difference)", ratio(worst, best));
}

/// §4.1 "Working with Quality Control": decoupled SM + voting vs naive
/// duplication of every vote.
pub fn qcsm(opts: &Opts) {
    header(
        "QC + SM",
        "Straggler mitigation with 3-vote quality control",
        "naive duplication creates ~2v assignments; decoupling needs ~v+1 and saves \
         up to 30% per-batch latency in straggler-heavy pools",
    );
    let pop = Population::mturk_live();
    let batch = 5; // quorum 3 on 15 workers -> R = 1 in assignment terms
    let specs = binary_specs(opts.n(60), 5);
    println!("  mode        assignments/task   batch-latency   cost");
    for (mode, name) in [(QcMode::Decoupled, "decoupled"), (QcMode::Naive, "naive")] {
        let cfg = RunConfig {
            quorum: 3,
            straggler: Some(StragglerConfig { qc_mode: mode, ..Default::default() }),
            ..cifar_cfg(None)
        };
        let reports = run_seeds(&cfg, &pop, &specs, batch, &opts.seeds);
        let per_task = mean_of(&reports, |r| r.assignments.len() as f64 / r.tasks.len() as f64);
        println!(
            "  {name:<11} {per_task:>16.2}   {:>12.2}s   ${:.2}",
            mean_of(&reports, |r| r.batch_makespan_summary().mean),
            mean_of(&reports, |r| r.cost.total_usd()),
        );
    }
    // No-SM quorum baseline for reference.
    let cfg = RunConfig { quorum: 3, ..cifar_cfg(None) };
    let reports = run_seeds(&cfg, &pop, &specs, batch, &opts.seeds);
    println!(
        "  no-SM       {:>16.2}   {:>12.2}s   ${:.2}",
        mean_of(&reports, |r| r.assignments.len() as f64 / r.tasks.len() as f64),
        mean_of(&reports, |r| r.batch_makespan_summary().mean),
        mean_of(&reports, |r| r.cost.total_usd()),
    );
}
