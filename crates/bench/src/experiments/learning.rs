//! §6.5–§6.6 — learning experiments (Figures 15–18).

use crate::util::{header, Opts};
use clamshell_core::baselines::{run_base_nr, run_base_r, run_clamshell, OpenMarketConfig};
use clamshell_core::learning::{LearningConfig, LearningRunner, Strategy};
use clamshell_core::RunConfig;
use clamshell_learn::datasets::digits::{digits, DigitsConfig};
use clamshell_learn::datasets::generate::{make_classification, GenConfig};
use clamshell_learn::datasets::objects::{objects, ObjectsConfig};
use clamshell_learn::model::SgdConfig;
use clamshell_learn::Dataset;
use clamshell_sweep::pool;
use clamshell_trace::Population;

fn sgd() -> SgdConfig {
    SgdConfig { epochs: 15, ..Default::default() }
}

fn run_strategy(ds: &Dataset, strategy: Strategy, budget: usize, seed: u64) -> f64 {
    let run_cfg =
        RunConfig { pool_size: 10, ng: 1, n_classes: ds.n_classes, seed, ..Default::default() }
            .with_straggler();
    let learn_cfg =
        LearningConfig { strategy, label_budget: budget, sgd: sgd(), seed, ..Default::default() };
    LearningRunner::new(ds, run_cfg, learn_cfg, Population::mturk_live()).run().final_accuracy
}

/// Figure 15: AL / PL / HL across problem hardness × AL pool fraction on
/// generated datasets.
pub fn fig15(opts: &Opts) {
    header(
        "Figure 15",
        "Active/Passive/Hybrid on generated datasets (hardness x AL fraction)",
        "AL wins easy problems; PL wins hard ones when given equal resources; \
         HL matches or beats both everywhere",
    );
    let budget = opts.n(200);
    // Fan the full hardness × r × strategy × seed cross product through
    // the sweep engine's generic pool: each cell is an independent
    // learning run, and index-ordered results keep the fold (and the
    // printed table) byte-identical at any thread count.
    let datasets: Vec<Dataset> = [0u32, 1, 2]
        .iter()
        .map(|&h| make_classification(&GenConfig::with_hardness(h), 40 + h as u64))
        .collect();
    let rs = [0.25f64, 0.5, 0.75];
    let mut cells: Vec<(usize, f64, usize, u64)> = Vec::new();
    for h in 0..datasets.len() {
        for &r in &rs {
            for strat in 0..3 {
                for &seed in &opts.seeds {
                    cells.push((h, r, strat, seed));
                }
            }
        }
    }
    let accs = pool::map(cells, opts.thread_count(), |_, _, (h, r, strat, seed)| {
        let strategy = match strat {
            0 => Strategy::Active { k: ((10.0 * r).round() as usize).max(1) },
            1 => Strategy::Passive,
            _ => Strategy::Hybrid { active_frac: r },
        };
        run_strategy(&datasets[h], strategy, budget, seed)
    });
    println!("  hardness  r      AL       PL       HL      winner");
    let n_seeds = opts.seeds.len();
    let mut acc_iter = accs.into_iter();
    let mut strategy_mean = || acc_iter.by_ref().take(n_seeds).sum::<f64>() / n_seeds as f64;
    for hardness in [0u32, 1, 2] {
        for r in rs {
            let al = strategy_mean();
            let pl = strategy_mean();
            let hl = strategy_mean();
            let winner = if hl >= al && hl >= pl {
                "HL"
            } else if al >= pl {
                "AL"
            } else {
                "PL"
            };
            println!("  {hardness:<9} {r:<5.2}  {al:.3}    {pl:.3}    {hl:.3}   {winner}");
        }
    }
}

/// Figure 16: AL / PL / HL on the digits (MNIST-like) and objects
/// (CIFAR-like) datasets with simulated crowd workers.
pub fn fig16(opts: &Opts) {
    header(
        "Figure 16",
        "Active/Passive/Hybrid on digits & objects",
        "HL is always the preferred solution; reaches 85% on CIFAR 1.2x faster than \
         AL / 1.6x than PL, and 70% on MNIST 1.7x faster than AL / 1.2x than PL",
    );
    let budget = opts.n(400);
    let n_items = opts.n(1200);
    let sets: Vec<(Dataset, f64)> = vec![
        (objects(&ObjectsConfig { n_samples: n_items, ..Default::default() }, 21), 0.80),
        (digits(&DigitsConfig { n_samples: n_items, ..Default::default() }, 22), 0.60),
    ];
    println!("  dataset   target   AL-time     PL-time     HL-time    final AL/PL/HL");
    let strategies =
        [Strategy::Active { k: 5 }, Strategy::Passive, Strategy::Hybrid { active_frac: 0.5 }];
    for (ds, target) in &sets {
        // Dataset × strategy cells are independent: fan them out.
        let outcomes = pool::map(strategies.to_vec(), opts.thread_count(), |_, _, strat| {
            let seed = opts.seeds[0];
            let run_cfg = RunConfig {
                pool_size: 10,
                ng: 1,
                n_classes: ds.n_classes,
                seed,
                ..Default::default()
            }
            .with_straggler();
            let learn_cfg = LearningConfig {
                strategy: strat,
                label_budget: budget,
                sgd: sgd(),
                // Classic AL blocks on retrain; PL/HL pipeline.
                async_retrain: !matches!(strat, Strategy::Active { .. }),
                seed,
                ..Default::default()
            };
            let out = LearningRunner::new(ds, run_cfg, learn_cfg, Population::mturk_live()).run();
            (out.curve.time_to_accuracy(*target).unwrap_or(f64::INFINITY), out.final_accuracy)
        });
        let mut times = [f64::INFINITY; 3];
        let mut finals = [0.0f64; 3];
        for (i, (t, f)) in outcomes.into_iter().enumerate() {
            times[i] = t;
            finals[i] = f;
        }
        let fmt_t = |t: f64| {
            if t.is_finite() {
                format!("{t:>8.1}s")
            } else {
                "   never".to_string()
            }
        };
        println!(
            "  {:<9} {target:<8} {}  {}  {}   {:.3}/{:.3}/{:.3}",
            ds.name,
            fmt_t(times[0]),
            fmt_t(times[1]),
            fmt_t(times[2]),
            finals[0],
            finals[1],
            finals[2],
        );
    }
}

fn end_to_end_systems(
    ds: &Dataset,
    budget: usize,
    seed: u64,
    threads: usize,
) -> Vec<(&'static str, clamshell_learn::eval::LearningCurve)> {
    // The three systems are independent end-to-end runs: one pool job
    // each.
    let names = ["Base-NR", "Base-R", "CLAMShell"];
    let curves = pool::map(vec![0usize, 1, 2], threads, |_, _, system| {
        let pop = Population::mturk_live();
        match system {
            0 => run_base_nr(ds, pop, budget, 10, OpenMarketConfig::default(), sgd(), seed).curve,
            1 => run_base_r(ds, pop, budget, 10, sgd(), seed).curve,
            _ => run_clamshell(ds, pop, budget, 10, sgd(), seed).curve,
        }
    });
    names.into_iter().zip(curves).collect()
}

/// Figure 17: time to reach model-accuracy thresholds.
pub fn fig17(opts: &Opts) {
    header(
        "Figure 17",
        "Wall-clock time to reach accuracy thresholds",
        "CLAMShell needs 4-5x less time than Base-NR to reach 75%; baselines never \
         reach the top thresholds within 500 labels",
    );
    let budget = opts.n(400);
    let ds = objects(&ObjectsConfig { n_samples: opts.n(1200), ..Default::default() }, 31);
    let systems = end_to_end_systems(&ds, budget, opts.seeds[0], opts.thread_count());
    println!("  threshold   Base-NR      Base-R       CLAMShell");
    for threshold in [0.65, 0.70, 0.75, 0.80] {
        let cells: Vec<String> = systems
            .iter()
            .map(|(_, curve)| match curve.time_to_accuracy(threshold) {
                Some(t) => format!("{t:>8.1}s"),
                None => "   never".into(),
            })
            .collect();
        println!("  {threshold:<11} {}  {}  {}", cells[0], cells[1], cells[2]);
    }
}

/// Figure 18: the full wall-clock vs accuracy curves.
pub fn fig18(opts: &Opts) {
    header(
        "Figure 18",
        "Wall-clock time vs model accuracy",
        "CLAMShell dominates both baselines across the whole curve",
    );
    let budget = opts.n(400);
    let ds = objects(&ObjectsConfig { n_samples: opts.n(1200), ..Default::default() }, 32);
    let systems = end_to_end_systems(&ds, budget, opts.seeds[0], opts.thread_count());
    // Print accuracy at shared checkpoints.
    let horizon = systems
        .iter()
        .filter_map(|(_, c)| c.points.last().map(|p| p.time_secs))
        .fold(0.0f64, f64::max);
    println!("  time        Base-NR   Base-R   CLAMShell");
    for frac in [0.05, 0.1, 0.2, 0.4, 0.7, 1.0] {
        let t = horizon * frac;
        let cells: Vec<String> =
            systems.iter().map(|(_, c)| format!("{:.3}", c.accuracy_at_time(t))).collect();
        println!("  {t:>8.1}s   {}     {}    {}", cells[0], cells[1], cells[2]);
    }
    for (name, c) in &systems {
        println!(
            "  {name:<10} final={:.3} after {:.1}s",
            c.final_accuracy(),
            c.points.last().map(|p| p.time_secs).unwrap_or(0.0)
        );
    }
}
