//! Figure 2: the worker-latency CDFs of the medical deployment.

use crate::util::{header, Opts};
use clamshell_sweep::pool;
use clamshell_trace::calibration::medical_work;
use clamshell_trace::cdf::WorkerLatencyCdfs;
use clamshell_trace::Population;

/// Figure 2: "Distribution of worker latencies" — CDFs of per-worker
/// latency means and standard deviations, sampled once per seed on the
/// sweep engine's pool and quantile-averaged across seeds.
pub fn fig2(opts: &Opts) {
    header(
        "Figure 2",
        "Distribution of worker latencies (CDFs)",
        "per-worker means spread from tens of seconds to hours; median mean ~4 min, \
         p90 mean ~1.1 h; median std ~2 min, p90 std ~3 h",
    );
    let n = opts.n(20_000);
    let cdfs = pool::map(opts.seeds.clone(), opts.thread_count(), |_, _, seed| {
        WorkerLatencyCdfs::from_population(&Population::medical(), n, seed)
    });
    let mean_q = |p: f64| cdfs.iter().map(|c| c.mean_quantile(p)).sum::<f64>() / cdfs.len() as f64;
    let std_q = |p: f64| cdfs.iter().map(|c| c.std_quantile(p)).sum::<f64>() / cdfs.len() as f64;
    println!("  per-worker MEAN latency CDF (seconds):");
    println!("    p      measured     paper-anchor");
    for (p, anchor) in [
        (0.05, None),
        (0.25, None),
        (0.50, Some(medical_work::MEAN_MEDIAN_SECS)),
        (0.75, None),
        (0.90, Some(medical_work::MEAN_P90_SECS)),
        (0.99, None),
    ] {
        let v = mean_q(p);
        match anchor {
            Some(a) => println!("    p{:<4} {v:>10.1}s  {a:>10.1}s", (p * 100.0) as u32),
            None => println!("    p{:<4} {v:>10.1}s", (p * 100.0) as u32),
        }
    }
    println!("  per-worker STD latency CDF (seconds):");
    for (p, anchor) in
        [(0.50, Some(medical_work::STD_MEDIAN_SECS)), (0.90, Some(medical_work::STD_P90_SECS))]
    {
        let v = std_q(p);
        println!("    p{:<4} {v:>10.1}s  {:>10.1}s", (p * 100.0) as u32, anchor.unwrap());
    }
    let span = mean_q(0.99) / mean_q(0.05).max(1e-9);
    println!("  mean-latency spread p99/p5 = {span:.0}x (paper: 'tens of seconds to hours')");
}
