//! `repro megasweep`: the sharded mega-grid scale-out walkthrough.
//!
//! Runs a seed × scenario grid through the sharded executor
//! ([`run_sharded`]): cells are materialized one bounded shard at a
//! time, every shard checkpoints the cumulative streaming aggregate to
//! an FNV-chained manifest, and a killed run restarts at the last
//! completed shard (`--resume`). The final table on stdout is
//! **bit-identical** whether the sweep ran unsharded, sharded, or was
//! killed and resumed, at any thread count — CI SIGKILLs a run
//! mid-sweep, resumes it, and byte-compares stdout against an
//! uninterrupted run at `CLAMSHELL_THREADS=1` and `=4`.
//!
//! Progress and resume diagnostics go to stderr so stdout stays the
//! comparable artifact.

use crate::util::{binary_specs, Opts};
use clamshell_core::RunConfig;
use clamshell_sweep::shard::{run_sharded, ShardOptions};
use clamshell_sweep::{CancelToken, Grid, Metric, MetricsAggregator};
use clamshell_trace::Population;
use std::path::PathBuf;

/// Mega-sweep knobs parsed from the `repro megasweep` command line.
#[derive(Debug, Clone)]
pub struct MegasweepArgs {
    /// Total grid cells before `--quick` scaling (split across the
    /// scenario axis; floored so every scenario keeps one seed).
    pub cells: usize,
    /// Cells per shard — the memory bound and checkpoint granularity.
    pub shard_size: usize,
    /// Shard-manifest path (atomically rewritten after every shard).
    pub manifest: PathBuf,
    /// Resume from the manifest if it exists.
    pub resume: bool,
}

impl Default for MegasweepArgs {
    fn default() -> Self {
        MegasweepArgs {
            cells: 256,
            shard_size: 32,
            manifest: PathBuf::from("megasweep.manifest.jsonl"),
            resume: false,
        }
    }
}

/// The mega-grid: the standard two-scenario cell (straggler mitigation
/// on/off) crossed with `n_seeds` seeds. Cells are deliberately small —
/// the point of the walkthrough is shard mechanics, not cell cost.
fn mega_grid(n_seeds: usize) -> Grid {
    let seeds: Vec<u64> = (1..=n_seeds as u64).collect();
    Grid::new(
        RunConfig { pool_size: 4, ng: 2, ..Default::default() },
        Population::mturk_live(),
        binary_specs(4, 2),
        4,
    )
    .seeds(&seeds)
    .scenario("SM", |c| c.straggler = Some(Default::default()))
    .scenario("NoSM", |c| c.straggler = None)
}

/// Run the sharded walkthrough; `Err` carries the user-facing message.
pub fn megasweep(opts: &Opts, args: &MegasweepArgs) -> Result<(), String> {
    if args.shard_size == 0 {
        return Err("--shard-size must be at least 1".into());
    }
    let cells = opts.n(args.cells);
    let n_seeds = (cells / 2).max(1);
    let grid = mega_grid(n_seeds);
    let mut agg = MetricsAggregator::new(grid.n_scenarios(), Metric::standard());
    println!(
        "\n== megasweep: {} cells ({} scenarios x {} seeds), shard size {} ==",
        grid.n_jobs(),
        grid.n_scenarios(),
        n_seeds,
        args.shard_size
    );

    let shard_opts = ShardOptions {
        shard_size: args.shard_size,
        manifest: args.manifest.clone(),
        resume: args.resume,
        threads: opts.threads,
    };
    let shard_size = args.shard_size;
    let total_cells = grid.n_jobs();
    let outcome = run_sharded(
        &grid,
        &mut agg,
        &shard_opts,
        &CancelToken::new(),
        Some(&mut |done, _| {
            // One stderr tick per shard boundary; stdout stays clean.
            if done % shard_size == 0 || done == total_cells {
                eprintln!("megasweep: {done}/{total_cells} cells");
            }
        }),
    )
    .map_err(|e| format!("megasweep failed: {e}"))?;
    eprintln!(
        "megasweep: {} shards ({} resumed from {}), {} of {} cells",
        outcome.n_shards,
        outcome.resumed_shards,
        args.manifest.display(),
        outcome.completed,
        outcome.total
    );

    // The deterministic artifact: one row per scenario, mean ± std per
    // metric over the scenario's seeds.
    let mut head = vec![format!("{:<8}", "scenario")];
    head.extend(agg.metrics().iter().map(|m| format!("{:>24}", m.name)));
    println!("  {}", head.join(" "));
    for s in 0..grid.n_scenarios() {
        let label = grid.meta(s * grid.n_variants() * grid.n_seeds()).label;
        let mut cells = vec![format!("{label:<8}")];
        for m in agg.metrics().to_vec() {
            cells.push(format!(
                "{:>24}",
                format!("{:.4} ± {:.4}", agg.mean(s, m.name), agg.std(s, m.name))
            ));
        }
        println!("  {}", cells.join(" "));
    }
    println!(
        "  ({} seeds per scenario; sharded fold is bit-identical to the unsharded sweep)",
        grid.n_seeds()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_manifest(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("clamshell_megasweep_{tag}.jsonl"))
    }

    #[test]
    fn megasweep_runs_the_quick_cell() {
        let opts = Opts { seeds: vec![1], scale: 0.05, threads: Some(2) };
        let manifest = tmp_manifest("quick");
        let args = MegasweepArgs { manifest: manifest.clone(), ..Default::default() };
        assert!(megasweep(&opts, &args).is_ok());
        assert!(manifest.exists(), "manifest written");
        let _ = std::fs::remove_file(&manifest);
    }

    #[test]
    fn megasweep_resume_over_a_finished_manifest_is_ok() {
        let opts = Opts { seeds: vec![1], scale: 0.05, threads: Some(1) };
        let manifest = tmp_manifest("resume");
        let args = MegasweepArgs { manifest: manifest.clone(), ..Default::default() };
        assert!(megasweep(&opts, &args).is_ok());
        let resume = MegasweepArgs { resume: true, ..args };
        assert!(megasweep(&opts, &resume).is_ok());
        let _ = std::fs::remove_file(&manifest);
    }

    #[test]
    fn megasweep_rejects_zero_shard_size() {
        let opts = Opts { seeds: vec![1], scale: 0.05, threads: Some(1) };
        let args =
            MegasweepArgs { shard_size: 0, manifest: tmp_manifest("zero"), ..Default::default() };
        let err = megasweep(&opts, &args).unwrap_err();
        assert!(err.contains("--shard-size"), "{err}");
    }
}
