//! §6.4 — combining per-batch techniques (Figures 12–14) and the §6.6
//! headline numbers.

use crate::util::{binary_specs, header, mean_of, ratio, Opts};
use clamshell_core::baselines::headline_raw_labeling;
use clamshell_core::config::{MaintenanceConfig, StragglerConfig};
use clamshell_core::task::TaskSpec;
use clamshell_core::RunConfig;
use clamshell_sweep::{pool, Grid};
use clamshell_trace::calibration::headline as paper;
use clamshell_trace::Population;

/// The four SM × PM cells as one sweep grid over `seeds`.
fn sm_pm_grid(pop: &Population, specs: Vec<TaskSpec>, seeds: &[u64]) -> (Grid, Vec<&'static str>) {
    let mut grid = Grid::new(RunConfig::default(), pop.clone(), specs, 15).seeds(seeds);
    let mut names = Vec::new();
    for (sm, pm) in [(false, false), (false, true), (true, false), (true, true)] {
        let (cfg, name) = grid_cfg(sm, pm);
        names.push(name);
        grid = grid.scenario(name, move |c| *c = cfg.clone());
    }
    (grid, names)
}

fn grid_cfg(sm: bool, pm: bool) -> (RunConfig, &'static str) {
    let cfg = RunConfig {
        pool_size: 15,
        ng: 5,
        straggler: sm.then(StragglerConfig::default),
        maintenance: pm.then(MaintenanceConfig::pm8),
        ..Default::default()
    };
    let name = match (sm, pm) {
        (false, false) => "NoSM+PMinf",
        (false, true) => "NoSM+PM8",
        (true, false) => "SM+PMinf",
        (true, true) => "SM+PM8",
    };
    (cfg, name)
}

/// Figure 12: the 2×2 grid of straggler mitigation × pool maintenance.
pub fn fig12(opts: &Opts) {
    header(
        "Figure 12",
        "End-to-end latency / variance / cost per SM x PM configuration",
        "combining techniques still beats neither-technique by up to 6x latency and \
         15x std; occasional destructive interference between SM and PM",
    );
    let pop = Population::mturk_live();
    let specs = binary_specs(opts.n(300), 5);
    let (grid, names) = sm_pm_grid(&pop, specs, &opts.seeds);
    let grouped = grid.run_grouped(opts.threads);
    println!("  config       total-lat   batch-std    cost      vs-baseline");
    let mut baseline = None;
    for (name, reports) in names.iter().zip(&grouped) {
        let lat = mean_of(reports, |r| r.total_secs());
        let std = mean_of(reports, |r| r.mean_batch_std());
        let cost = mean_of(reports, |r| r.cost.total_usd());
        if baseline.is_none() {
            baseline = Some((lat, std));
        }
        let (bl, bs) = baseline.unwrap();
        println!(
            "  {name:<12} {lat:>8.1}s  {std:>8.2}s  ${cost:>7.2}   lat {} / std {}",
            ratio(bl, lat),
            ratio(bs, std)
        );
    }
}

/// Figure 13: per-assignment Gantt statistics (we summarize instead of
/// plotting: straggler counts, termination counts, assignment spans).
pub fn fig13(opts: &Opts) {
    header(
        "Figure 13",
        "Per-assignment view per SM x PM configuration",
        "maintenance leaves fewer/smaller stragglers; SM terminates them; combined \
         has the fewest stragglers to mitigate",
    );
    let pop = Population::mturk_live();
    let specs = binary_specs(opts.n(150), 5);
    let (grid, names) = sm_pm_grid(&pop, specs, &[opts.seeds[0]]);
    let grouped = grid.run_grouped(opts.threads);
    println!("  config       assignments  terminated  stragglers(>2x median)  max-span");
    for (name, reports) in names.iter().zip(&grouped) {
        let r = &reports[0];
        let spans: Vec<f64> =
            r.assignments.iter().map(|a| a.end.since(a.start).as_secs_f64()).collect();
        let median = clamshell_sim::stats::percentile(&spans, 0.5);
        let stragglers = spans.iter().filter(|&&s| s > 2.0 * median).count();
        let max = spans.iter().copied().fold(0.0, f64::max);
        let terminated = r.assignments.iter().filter(|a| a.terminated).count();
        println!(
            "  {name:<12} {:>11}  {terminated:>10}  {stragglers:>22}  {max:>7.1}s",
            r.assignments.len(),
        );
    }
}

/// Figure 14: TermEst keeps the replacement rate alive under straggler
/// mitigation.
pub fn fig14(opts: &Opts) {
    header(
        "Figure 14",
        "Replacement rate with/without TermEst (alpha = 1)",
        "without TermEst, SM masks slow workers and replacement collapses; with it, \
         replacement happens as frequently as with no straggler mitigation",
    );
    let pop = Population::mturk_live();
    let specs = binary_specs(opts.n(300), 5);
    let cells = [
        (true, true, "SM + TermEst"),
        (true, false, "SM + NoTermEst"),
        (false, true, "NoSM (reference)"),
    ];
    let mut grid = Grid::new(RunConfig::default(), pop, specs, 15).seeds(&opts.seeds);
    for (sm, termest, name) in cells {
        grid = grid.scenario(name, move |c| {
            *c = RunConfig {
                pool_size: 15,
                ng: 5,
                straggler: sm.then(StragglerConfig::default),
                maintenance: Some(MaintenanceConfig {
                    use_termest: termest,
                    ..MaintenanceConfig::pm8()
                }),
                ..Default::default()
            };
        });
    }
    println!("  config               replaced-per-batch");
    let mut rates = Vec::new();
    for ((_, _, name), reports) in cells.iter().zip(grid.run_grouped(opts.threads)) {
        let rate = mean_of(&reports, |r| r.workers_evicted as f64 / r.batches.len().max(1) as f64);
        println!("  {name:<20} {rate:>17.2}");
        rates.push(rate);
    }
    println!(
        "  TermEst restores {} of the NoSM replacement rate (NoTermEst: {})",
        ratio(rates[0], rates[2]),
        ratio(rates[1], rates[2]),
    );
}

/// §6.6 headline: raw acquisition of 500 labels.
pub fn headline(opts: &Opts) {
    header(
        "Headline (§6.6)",
        "Raw time to acquire 500 labels: CLAMShell vs Base-NR",
        "7.24x labeling throughput; 151x variance reduction (3.1s vs 475s std)",
    );
    let n = opts.n(500);
    // Not a `run_batched` sweep, so the generic pool layer fans the
    // per-seed baseline comparisons directly.
    let runs = pool::map(opts.seeds.clone(), opts.thread_count(), |_, _, seed| {
        headline_raw_labeling(Population::mturk_live(), n, 15, seed)
    });
    let mut thr = Vec::new();
    let mut stds = Vec::new();
    for (clam, nr) in &runs {
        thr.push((clam.throughput(), nr.throughput()));
        stds.push((clam.mean_batch_std(), nr.batches[0].task_latency_std));
    }
    let m = |xs: &[(f64, f64)], i: usize| {
        xs.iter().map(|p| if i == 0 { p.0 } else { p.1 }).sum::<f64>() / xs.len() as f64
    };
    let (tc, tn) = (m(&thr, 0), m(&thr, 1));
    let (sc, sn) = (m(&stds, 0), m(&stds, 1));
    println!(
        "  throughput: CLAMShell={tc:.2} labels/s  Base-NR={tn:.2} labels/s  speedup={} (paper {:.2}x)",
        ratio(tc, tn),
        paper::THROUGHPUT_SPEEDUP
    );
    println!(
        "  batch std:  CLAMShell={sc:.1}s  Base-NR={sn:.1}s  reduction={} (paper {:.0}x: {:.1}s vs {:.0}s)",
        ratio(sn, sc),
        paper::VARIANCE_REDUCTION,
        paper::CLAMSHELL_STD_SECS,
        paper::BASE_NR_STD_SECS
    );
}
