//! Experiment implementations, grouped by the paper's sections.

pub mod adversity;
pub mod combine;
pub mod learning;
pub mod maintenance;
pub mod megasweep;
pub mod pool_lifecycle;
pub mod serve;
pub mod straggler;
pub mod tables;
pub mod trace;
