//! Tables 2 and 3: the technique matrix and the parameter glossary.

use crate::util::{header, Opts};

/// Table 2: "CLAMShell techniques" capability matrix. The latency /
/// variance / cost entries are verified empirically by fig4, fig9, fig11
/// and the integration tests; this prints the matrix itself.
pub fn table2(_opts: &Opts) {
    header(
        "Table 2",
        "CLAMShell techniques",
        "straggler: latency+variance at extra cost; pool: latency+variance at no \
         extra cost; hybrid: latency, AL-specific",
    );
    println!("  technique   mean-latency  variance   cost        general");
    println!("  straggler   Yes           Yes        Increase    Yes");
    println!("  pool        Yes           Yes        No Change   Yes");
    println!("  hybrid      Yes           No         Increase    AL");
    println!();
    println!("  (verified by: fig4 [pool cost/latency], fig9/fig11 [straggler]");
    println!("   and fig15/fig16 [hybrid]; see EXPERIMENTS.md)");
}

/// Table 3: experimental parameters and where this reproduction exposes
/// them.
pub fn table3(_opts: &Opts) {
    header("Table 3", "Experimental parameters", "PMl, SM, Np, Ng, R, Alg");
    let rows = [
        (
            "PMl",
            "Latency threshold for pool maintenance",
            "MaintenanceConfig::threshold_per_label_secs",
        ),
        ("SM", "Straggler mitigation on/off", "RunConfig::straggler (Option)"),
        ("Np", "Number of workers in the retainer pool", "RunConfig::pool_size"),
        ("Ng", "Task complexity: records grouped per HIT", "RunConfig::ng / TaskSpec::ng()"),
        ("R", "Pool-to-batch ratio", "RunConfig::batch_size_for_ratio(r)"),
        ("Alg", "AL / PL / HL / NL", "learning::Strategy"),
    ];
    for (p, desc, api) in rows {
        println!("  {p:<5} {desc:<48} {api}");
    }
}
