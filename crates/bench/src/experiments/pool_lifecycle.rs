//! Pool lifecycle: checkout strategies, idle timeouts, and generations
//! measured across the adversity scenario catalog.
//!
//! The paper treats the retainer pool as a fixed-size set (§4.1); this
//! experiment drives the production-pool knobs ([`PoolConfig`]) through
//! every scenario and reports cost, latency, and — for scenarios with
//! platform outages — the recovery time from the last blackout to run
//! completion. Expectations: LIFO's hot working set pays off under
//! `bursty` arrivals (recently idle workers are re-dispatched first),
//! and generation-based lazy retirement bounds `blackout` recovery
//! without an eager pool scan.
//!
//! Not part of `repro --all`: the experiment postdates the recorded
//! EXPERIMENTS.md transcript, so it runs by name (`repro
//! pool_lifecycle`) to keep the `--all` stdout stable.

use crate::util::{f2, header, mean_of, ratio, row, Opts};
use clamshell_core::adversity::OutageFault;
use clamshell_core::metrics::RunReport;
use clamshell_core::{CheckoutStrategy, PoolConfig, RunConfig};
use clamshell_scenarios::catalog;
use clamshell_sim::faults::OutageSchedule;
use clamshell_sim::time::SimDuration;
use clamshell_sweep::Grid;
use clamshell_trace::Population;

fn base_config(seed: u64) -> RunConfig {
    RunConfig { pool_size: 8, ng: 5, seed, ..Default::default() }
        .with_straggler()
        .with_maintenance()
}

/// The pool-variant axis: both checkout strategies, each with and
/// without a reserve idle timeout, plus generation-based retirement.
fn variants() -> Vec<(&'static str, PoolConfig)> {
    let fifo = PoolConfig::default();
    let lifo = PoolConfig { strategy: CheckoutStrategy::Lifo, ..PoolConfig::default() };
    let idle = Some(SimDuration::from_secs(180));
    vec![
        ("fifo", fifo),
        ("lifo", lifo),
        ("fifo+idle", PoolConfig { idle_timeout: idle, ..fifo }),
        ("lifo+idle", PoolConfig { idle_timeout: idle, ..lifo }),
        ("fifo+gen", PoolConfig { generations: true, ..fifo }),
    ]
}

/// Seconds from the end of the last completed outage window to run
/// completion — how long the run needed to drain after the final
/// blackout. `None` when the scenario has no outage fault or no window
/// completed within the run.
fn recovery_secs(report: &RunReport, seed: u64, outage: OutageFault) -> Option<f64> {
    // The runner's schedule is fully determined by (seed, means), so the
    // exact outage windows of the measured run can be reconstructed.
    let mut sched = OutageSchedule::new(
        seed,
        SimDuration::from_secs_f64(outage.mean_uptime_secs),
        SimDuration::from_secs_f64(outage.mean_outage_secs),
    );
    sched.defer(report.finished);
    let last_end = sched
        .generated()
        .iter()
        .map(|&(_, end)| end)
        .rfind(|&end| end <= report.finished && end >= report.started)?;
    Some(report.finished.since(last_end).as_secs_f64())
}

/// Cost / latency / recovery per (scenario, pool variant) — `repro
/// pool_lifecycle`.
pub fn pool_lifecycle(opts: &Opts) {
    header(
        "pool_lifecycle",
        "Checkout strategies, idle timeouts & generations across the scenario catalog",
        "not in the paper; the retainer pool of \u{a7}4.1 rebuilt as a production \
         resource pool",
    );
    let n_tasks = opts.n(48);
    let mut grid = Grid::new(
        base_config(opts.seeds[0]),
        Population::mturk_live(),
        crate::util::binary_specs(n_tasks, 5),
        8,
    )
    .seeds(&opts.seeds);
    for def in catalog() {
        grid = grid.scenario(def.name, |cfg| def.apply(cfg));
    }
    for (label, pool) in variants() {
        grid = grid.pool_variant(label, pool);
    }
    // Rows are (scenario, variant) cells: scenario-major, variant-mid,
    // seeds within each cell.
    let grouped = grid.run_grouped(opts.threads);

    row(&[
        "scenario".into(),
        "pool".into(),
        "cost_usd".into(),
        "latency_s".into(),
        "d.lat".into(),
        "recovery_s".into(),
        "expired".into(),
        "stale".into(),
    ]);
    let n_variants = variants().len();
    for (s_idx, def) in catalog().iter().enumerate() {
        let outage = def.config_from(&base_config(opts.seeds[0])).adversity.and_then(|a| a.outage);
        // The FIFO variant is the historical pool: the latency baseline
        // for the other variants of the same scenario.
        let fifo_lat = mean_of(&grouped[s_idx * n_variants], |r| r.total_secs());
        for (v_idx, (label, _)) in variants().iter().enumerate() {
            let reports = &grouped[s_idx * n_variants + v_idx];
            let lat = mean_of(reports, |r| r.total_secs());
            let recovery = outage.map(|o| {
                let per_seed: Vec<f64> = reports
                    .iter()
                    .zip(&opts.seeds)
                    .filter_map(|(r, &seed)| recovery_secs(r, seed, o))
                    .collect();
                per_seed.iter().sum::<f64>() / per_seed.len().max(1) as f64
            });
            row(&[
                def.name.into(),
                (*label).into(),
                f2(mean_of(reports, |r| r.cost.total_micro() as f64 / 1e6)),
                f2(lat),
                ratio(lat, fifo_lat),
                recovery.map_or_else(|| "-".into(), f2),
                f2(mean_of(reports, |r| r.reserve_expired as f64)),
                f2(mean_of(reports, |r| r.stale_retired as f64)),
            ]);
        }
    }
    println!(
        "  expectation: LIFO keeps a hot working set (watch bursty); generations \
         retire stale members lazily after blackouts (stale > 0, no eager scan); \
         idle timeouts trade reserve wait cost for slower surge response"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use clamshell_core::runner::run_batched;

    #[test]
    fn variant_labels_are_unique() {
        let mut labels: Vec<&str> = variants().iter().map(|(l, _)| *l).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), variants().len());
    }

    #[test]
    fn recovery_is_reconstructed_from_the_seed() {
        let outage = OutageFault { mean_uptime_secs: 120.0, mean_outage_secs: 45.0 };
        let def = clamshell_scenarios::find("blackout").unwrap();
        let cfg = def.config_from(&base_config(11));
        let report =
            run_batched(cfg, Population::mturk_live(), crate::util::binary_specs(16, 5), 8);
        if let Some(r) = recovery_secs(&report, 11, outage) {
            assert!(r >= 0.0);
            assert!(r <= report.total_secs());
        }
    }

    #[test]
    fn lifecycle_sweep_runs_at_tiny_scale() {
        let opts = Opts { seeds: vec![1], scale: 0.05, ..Default::default() };
        pool_lifecycle(&opts);
    }
}
