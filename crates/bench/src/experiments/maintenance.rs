//! §6.2 — pool maintenance experiments (Figures 3–8) and the §4.2
//! convergence model check.

use crate::util::{
    binary_specs, digit_specs, f2, header, mean_of, ratio, run_scenarios, run_seeds_opts, Opts,
};
use clamshell_core::config::MaintenanceConfig;
use clamshell_core::metrics::RunReport;
use clamshell_core::poolmodel::PoolModel;
use clamshell_core::runner::Runner;
use clamshell_core::RunConfig;
use clamshell_sim::stats::{percentile, Summary};
use clamshell_sweep::Grid;
use clamshell_trace::Population;

fn digit_cfg(ng: u32, maint: Option<MaintenanceConfig>) -> RunConfig {
    RunConfig { pool_size: 15, ng, n_classes: 10, maintenance: maint, ..Default::default() }
}

/// The three task complexities of Table 3.
const COMPLEXITIES: [(u32, &str); 3] = [(1, "Simple"), (5, "Medium"), (10, "Complex")];

/// The complexity × {PM8, PM∞} grid of Figures 3–4: each Ng reshapes
/// the task specs, so scenarios carry spec overrides. Returns
/// `[(complexity name, pm8_reports, pminf_reports); 3]` in Table-3
/// order.
fn complexity_sweep(
    opts: &Opts,
    n_tasks: usize,
) -> Vec<(&'static str, Vec<RunReport>, Vec<RunReport>)> {
    let mut grid = Grid::new(digit_cfg(5, None), Population::mturk_live(), binary_specs(1, 5), 15)
        .seeds(&opts.seeds);
    for (ng, name) in COMPLEXITIES {
        let specs = digit_specs(n_tasks, ng as usize);
        grid = grid.scenario_with(
            format!("{name}/PM8"),
            move |c| *c = digit_cfg(ng, Some(MaintenanceConfig::pm8())),
            specs.clone(),
            15,
        );
        grid = grid.scenario_with(
            format!("{name}/PMinf"),
            move |c| *c = digit_cfg(ng, None),
            specs,
            15,
        );
    }
    let mut grouped = grid.run_grouped(opts.threads).into_iter();
    COMPLEXITIES
        .iter()
        .map(|&(_, name)| {
            let pm = grouped.next().expect("PM8 row");
            let inf = grouped.next().expect("PMinf row");
            (name, pm, inf)
        })
        .collect()
}

/// Figure 3: points labeled over time for PM8 vs PM∞ across task
/// complexity.
pub fn fig3(opts: &Opts) {
    header(
        "Figure 3",
        "# points labeled over time (PM8 vs PM-inf)",
        "simple tasks uniformly fast (little PM benefit); medium/complex suffer \
         stragglers that maintenance culls",
    );
    let n_tasks = opts.n(500);
    println!("  Ng       config   25%-done   50%-done   75%-done   100%-done  (secs)");
    for (name, pm, inf) in complexity_sweep(opts, n_tasks) {
        for (reports, label) in [(pm, "PM8"), (inf, "PMinf")] {
            let quartile = |r: &RunReport, f: f64| {
                let series = r.labels_over_time();
                let target = (r.labels_produced() as f64 * f) as u64;
                series.iter().find(|(_, c)| *c >= target).map(|(t, _)| *t).unwrap_or(0.0)
            };
            println!(
                "  {name:<8} {label:<8} {:>8.1}   {:>8.1}   {:>8.1}   {:>9.1}",
                mean_of(&reports, |r| quartile(r, 0.25)),
                mean_of(&reports, |r| quartile(r, 0.50)),
                mean_of(&reports, |r| quartile(r, 0.75)),
                mean_of(&reports, |r| r.total_secs()),
            );
        }
    }
}

/// Figure 4: end-to-end latency & cost with and without maintenance.
pub fn fig4(opts: &Opts) {
    header(
        "Figure 4",
        "End-to-end latency & cost, PM8 vs PM-inf",
        "speedup ~1.0x simple / ~1.3x medium / ~1.8x complex; cost REDUCED 7-16% \
         for medium/complex despite recruitment",
    );
    let n_tasks = opts.n(500);
    println!("  Ng       latency-PM8  latency-inf  speedup   cost-PM8   cost-inf   cost-delta");
    for (name, pm, no) in complexity_sweep(opts, n_tasks) {
        let (lat_pm, lat_no) = (mean_of(&pm, |r| r.total_secs()), mean_of(&no, |r| r.total_secs()));
        let (cost_pm, cost_no) =
            (mean_of(&pm, |r| r.cost.total_usd()), mean_of(&no, |r| r.cost.total_usd()));
        println!(
            "  {name:<8} {lat_pm:>10.1}s {lat_no:>11.1}s {:>8}  ${cost_pm:>8.2}  ${cost_no:>8.2}  {:>+9.1}%",
            ratio(lat_no, lat_pm),
            (cost_pm - cost_no) / cost_no * 100.0,
        );
    }
}

/// Figure 5: per-label latency vs worker age, with and without
/// maintenance.
pub fn fig5(opts: &Opts) {
    header(
        "Figure 5",
        "Task latency vs worker age",
        "with PM8, slow (>=8s/label) tasks disappear once workers age past the \
         probation window; without maintenance they persist forever",
    );
    let n_tasks = opts.n(500);
    let pop = Population::mturk_live();
    let bins = [(0u32, 3u32), (3, 8), (8, 20), (20, u32::MAX)];
    println!("  config   age-bin      tasks   %slow(>=8s/label)   p95 s/label");
    for (mcfg, label) in [(Some(MaintenanceConfig::pm8()), "PM8"), (None, "PMinf")] {
        let reports = run_seeds_opts(opts, &digit_cfg(5, mcfg), &pop, &digit_specs(n_tasks, 5), 15);
        for (lo, hi) in bins {
            let mut lat: Vec<f64> = Vec::new();
            for r in &reports {
                for t in &r.tasks {
                    if t.winner_age >= lo && t.winner_age < hi {
                        lat.push(t.latency_per_label_secs());
                    }
                }
            }
            if lat.is_empty() {
                continue;
            }
            let slow = lat.iter().filter(|&&x| x >= 8.0).count() as f64 / lat.len() as f64;
            let hi_str = if hi == u32::MAX { "+".into() } else { format!("-{hi}") };
            println!(
                "  {label:<8} {:<12} {:>5}   {:>16.1}%   {:>10.2}",
                format!("{lo}{hi_str}"),
                lat.len(),
                slow * 100.0,
                percentile(&lat, 0.95),
            );
        }
    }
}

/// Figure 6: mean pool latency per batch.
pub fn fig6(opts: &Opts) {
    header(
        "Figure 6",
        "Mean pool latency (MPL) over batches",
        "similar average but maintenance removes the long tail: MPL variance across \
         batches drops",
    );
    let n_tasks = opts.n(500);
    let pop = Population::mturk_live();
    for (mcfg, label) in [(Some(MaintenanceConfig::pm8()), "PM8"), (None, "PMinf")] {
        let reports = run_seeds_opts(opts, &digit_cfg(5, mcfg), &pop, &digit_specs(n_tasks, 5), 15);
        let mut all_mpl: Vec<f64> = Vec::new();
        for r in &reports {
            all_mpl.extend(r.batches.iter().map(|b| b.mpl));
        }
        let s = Summary::of(&all_mpl);
        let early: Vec<f64> =
            reports.iter().flat_map(|r| r.batches.iter().take(3).map(|b| b.mpl)).collect();
        let late: Vec<f64> = reports
            .iter()
            .flat_map(|r| {
                let n = r.batches.len();
                r.batches.iter().skip(n.saturating_sub(3)).map(|b| b.mpl)
            })
            .collect();
        println!(
            "  {label:<8} MPL mean={:.2}s std={:.2}s max={:.2}s | first-3-batches={:.2}s last-3={:.2}s",
            s.mean,
            s.std,
            s.max,
            Summary::of(&early).mean,
            Summary::of(&late).mean,
        );
    }
}

/// The PMℓ axis of Figures 7–8.
const THRESHOLDS: [f64; 5] = [32.0, 16.0, 8.0, 4.0, 2.0];

/// One sweep over the PMℓ axis × seeds, reserve-boosted as Figures 7–8
/// require. Returns reports grouped per threshold, in `THRESHOLDS`
/// order.
fn threshold_sweep(opts: &Opts, n_tasks: usize) -> Vec<Vec<RunReport>> {
    run_scenarios(
        opts,
        &digit_cfg(5, None),
        &Population::mturk_live(),
        &digit_specs(n_tasks, 5),
        15,
        THRESHOLDS
            .iter()
            .map(|&threshold| {
                let mutate: Box<dyn Fn(&mut RunConfig) + Send + Sync> = Box::new(move |c| {
                    c.maintenance = Some(MaintenanceConfig {
                        reserve_target: 5,
                        ..MaintenanceConfig::with_threshold(threshold)
                    })
                });
                (format!("PM{threshold}"), mutate)
            })
            .collect(),
    )
}

/// Figure 7: workers replaced over time vs threshold.
pub fn fig7(opts: &Opts) {
    header(
        "Figure 7",
        "Workers replaced vs maintenance threshold",
        "decreasing the threshold causes more workers to be replaced during a run",
    );
    let n_tasks = opts.n(400);
    println!("  PMl     replaced(total)  replaced/batch");
    let mut last = 0.0f64;
    let grouped = threshold_sweep(opts, n_tasks);
    for (threshold, reports) in THRESHOLDS.iter().zip(&grouped) {
        let evicted = mean_of(reports, |r| r.workers_evicted as f64);
        let per_batch =
            mean_of(reports, |r| r.workers_evicted as f64 / r.batches.len().max(1) as f64);
        println!("  PM{threshold:<5} {evicted:>12.1}  {per_batch:>13.2}");
        // Qualitative check: replacement grows as the threshold falls.
        if evicted + 0.5 < last {
            println!("    (note: replacement dropped vs previous threshold)");
        }
        last = evicted;
    }
}

/// Figure 8: latency percentiles vs threshold by worker-age slice.
pub fn fig8(opts: &Opts) {
    header(
        "Figure 8",
        "p50/p95/p99 per-label latency vs PM threshold, by worker age",
        "optimal threshold ~PM8 cuts straggler latencies ~2x; PM4/PM2 are below \
         what even fast workers can do and thrash",
    );
    let n_tasks = opts.n(400);
    println!("  PMl     age-slice   p50     p95     p99   (s/label)");
    for (threshold, reports) in THRESHOLDS.iter().zip(threshold_sweep(opts, n_tasks)) {
        for (lo, hi, label) in [(0u32, 5u32, "<5"), (5, 15, "5-15"), (15, u32::MAX, "15+")] {
            let lat: Vec<f64> = reports
                .iter()
                .flat_map(|r| r.tasks.iter())
                .filter(|t| t.winner_age >= lo && t.winner_age < hi)
                .map(|t| t.latency_per_label_secs())
                .collect();
            if lat.is_empty() {
                continue;
            }
            println!(
                "  PM{threshold:<5} {label:<9} {:>6.2}  {:>6.2}  {:>6.2}",
                percentile(&lat, 0.5),
                percentile(&lat, 0.95),
                percentile(&lat, 0.99),
            );
        }
    }
}

/// §4.2 convergence model: simulated MPL trajectory vs the closed form
/// `E[μ_n] = (1 − q^{n+1}) μ_f + q^{n+1} μ_s`.
pub fn poolmodel(opts: &Opts) {
    header(
        "Pool model",
        "Maintained-pool convergence vs closed form",
        "with maintenance the pool MPL converges to mu_f, following \
         E[mu_n] = (1 - q^(n+1)) mu_f + q^(n+1) mu_s",
    );
    // A bimodal population makes (q, mu_f, mu_s) exact. The closed form
    // assumes replacements are instantaneous, so recruitment is made fast
    // for this check (otherwise eviction is reserve-throttled).
    let (frac_fast, fast, slow) = (0.6, 3.0, 12.0);
    let mut pop = Population::bimodal(frac_fast, fast, slow);
    pop.recruitment = clamshell_sim::dist::LogNormal::from_median_quantile(5.0, 0.9, 12.0);
    pop.recruitment_floor = 1.0;
    let threshold = 7.5;
    let q = 1.0 - pop.frac_below(threshold);
    let mut rng = clamshell_sim::rng::Rng::new(7);
    let (mu_f, mu_s) = pop.conditional_means(threshold, 20_000, &mut rng);
    let model = PoolModel::new(q, mu_f, mu_s);

    let n_batches = opts.n(25);
    let mcfg = MaintenanceConfig {
        threshold_per_label_secs: threshold,
        min_tasks: 1,
        alpha: 0.2,
        reserve_target: 8,
        ..MaintenanceConfig::pm8()
    };
    let cfg = RunConfig {
        pool_size: 15,
        ng: 1,
        maintenance: Some(mcfg),
        churn: false,
        seed: opts.seeds[0],
        ..Default::default()
    };
    let mut runner = Runner::new(cfg, pop);
    runner.warm_up();
    println!("  batch   simulated-MPL   model-E[mu_n]");
    let mut sim_final = 0.0;
    for n in 0..n_batches {
        runner.run_batch(binary_specs(15, 1));
        sim_final = runner.pool_true_mpl();
        if n < 5 || n % 5 == 4 {
            println!("  {n:>5}   {:>12.2}s   {:>12.2}s", sim_final, model.expected_mpl(n as u32));
        }
    }
    println!(
        "  initial E[mu_0]={:.2}s, asymptote mu_f={:.2}s, simulated final={:.2}s",
        model.expected_mpl(0),
        model.limit(),
        sim_final
    );
    println!(
        "  convergence gap |sim - mu_f| = {} of initial gap",
        f2((sim_final - model.limit()).abs() / (model.expected_mpl(0) - model.limit()).abs()),
    );
}
