//! Microbenchmarks of the simulation kernel: event queue, RNG,
//! distributions, and streaming statistics. These bound the cost of one
//! simulated event, which in turn bounds how many Monte-Carlo repetitions
//! the figure harness can afford.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use clamshell_sim::dist::{Beta, LogNormal, Normal, Sample, TruncNormal};
use clamshell_sim::events::EventQueue;
use clamshell_sim::rng::Rng;
use clamshell_sim::stats::{OnlineStats, Summary};
use clamshell_sim::time::SimTime;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for &n in &[100usize, 10_000] {
        g.bench_with_input(BenchmarkId::new("schedule_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.schedule(SimTime::from_millis((i * 7 % 1000) as u64), i);
                }
                let mut sum = 0usize;
                while let Some((_, e)) = q.pop() {
                    sum += e;
                }
                black_box(sum)
            })
        });
    }
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.bench_function("next_u64", |b| {
        let mut rng = Rng::new(1);
        b.iter(|| black_box(rng.next_u64()))
    });
    g.bench_function("next_gaussian", |b| {
        let mut rng = Rng::new(2);
        b.iter(|| black_box(rng.next_gaussian()))
    });
    g.bench_function("sample_indices_1000_of_100000", |b| {
        let mut rng = Rng::new(3);
        b.iter(|| black_box(rng.sample_indices(100_000, 1000)))
    });
    g.finish();
}

fn bench_distributions(c: &mut Criterion) {
    let mut g = c.benchmark_group("distributions");
    let mut rng = Rng::new(4);
    let normal = Normal::new(5.0, 2.0);
    let lognormal = LogNormal::new(1.5, 0.6);
    let trunc = TruncNormal::new(5.0, 2.0, 1.0);
    let beta = Beta::new(14.0, 2.0);
    g.bench_function("normal", |b| b.iter(|| black_box(normal.sample(&mut rng))));
    g.bench_function("lognormal", |b| b.iter(|| black_box(lognormal.sample(&mut rng))));
    g.bench_function("trunc_normal", |b| b.iter(|| black_box(trunc.sample(&mut rng))));
    g.bench_function("beta", |b| b.iter(|| black_box(beta.sample(&mut rng))));
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats");
    let xs: Vec<f64> = (0..10_000).map(|i| (i as f64).sin() * 40.0 + 50.0).collect();
    g.bench_function("welford_10k", |b| {
        b.iter(|| {
            let mut acc = OnlineStats::new();
            for &x in &xs {
                acc.push(x);
            }
            black_box(acc.std())
        })
    });
    g.bench_function("summary_10k", |b| b.iter(|| black_box(Summary::of(&xs))));
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_rng, bench_distributions, bench_stats);
criterion_main!(benches);
