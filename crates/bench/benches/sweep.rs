//! Sweep-engine throughput: the serial per-seed loop vs the
//! work-stealing engine at increasing thread counts, over a
//! representative Monte-Carlo seed sweep (one full CLAMShell batch run
//! per seed). On a 4-core runner the 4-thread row should show ≥ 2× the
//! serial throughput; the `threads1` row measures the engine's own
//! overhead (it should track `serial` closely).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use clamshell_core::runner::run_batched;
use clamshell_core::task::TaskSpec;
use clamshell_core::RunConfig;
use clamshell_sweep::Grid;
use clamshell_trace::Population;

fn specs(n: usize, ng: usize) -> Vec<TaskSpec> {
    (0..n).map(|i| TaskSpec::new(vec![(i % 2) as u32; ng])).collect()
}

fn base_cfg() -> RunConfig {
    RunConfig { pool_size: 15, ng: 5, ..Default::default() }.with_straggler().with_maintenance()
}

const SEEDS: [u64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
const N_TASKS: usize = 300;

/// The pre-engine path: one `run_batched` per seed, in a plain loop.
fn bench_serial(c: &mut Criterion) {
    let mut g = c.benchmark_group("seed_sweep_8");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| {
            let reports: Vec<_> = SEEDS
                .iter()
                .map(|&seed| {
                    let cfg = RunConfig { seed, ..base_cfg() };
                    run_batched(cfg, Population::mturk_live(), specs(N_TASKS, 5), 15)
                })
                .collect();
            black_box(reports)
        })
    });
    g.finish();
}

/// The same sweep through the engine at 1, 2, and 4 worker threads.
fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("seed_sweep_8");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        g.bench_function(format!("threads{threads}"), |b| {
            b.iter(|| {
                let grid = Grid::new(base_cfg(), Population::mturk_live(), specs(N_TASKS, 5), 15)
                    .seeds(&SEEDS);
                black_box(grid.run_all(Some(threads)))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_serial, bench_engine);
criterion_main!(benches);
