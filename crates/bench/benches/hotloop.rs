//! Hot-loop microbenchmarks: the discrete-event core's event queue and
//! the per-assignment allocation profile of `core::runner`.
//!
//! Two queue implementations run the same *hold pattern* — the classic
//! priority-queue workload that matches the simulator (pop the earliest
//! event, schedule a replacement at `now + delta`, with a steady number
//! of pending events):
//!
//! * the shipping `clamshell_sim::EventQueue` (the adaptive two-list
//!   near/far event list — see `sim::events` module docs), and
//! * a reference `BinaryHeap<Scheduled>` queue — a faithful copy of the
//!   pre-overhaul implementation, kept here as the comparison model.
//!
//! Both deliver identical pop order (FIFO within a timestamp); only the
//! wall-clock differs. Running this bench in measure mode (`cargo bench
//! -p clamshell-bench --bench hotloop`) rewrites `BENCH_hotloop.json` at
//! the repository root with events/sec for both queues, the runner's
//! allocation counts, the streaming service mode's bounded-memory
//! profile (peak live heap of a retire-mode stream at 1k vs 100k tasks),
//! and the sharded executor's bounded-memory profile (peak live heap of
//! a checkpointed sweep at 10k vs 100k cells, fixed shard size), so the
//! perf trajectory is recorded in-tree. See README §
//! "Benchmarking & perf methodology" for how to read it.

use criterion::{black_box, criterion_group, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use clamshell_core::runner::run_batched;
use clamshell_core::task::TaskSpec;
use clamshell_core::RunConfig;
use clamshell_sim::{EventQueue, SimDuration, SimTime};
use clamshell_trace::Population;

// ---------------------------------------------------------------------
// Counting allocator: measures the runner's per-run allocation profile.
// ---------------------------------------------------------------------

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
/// Live bytes right now (allocations minus deallocations) and the high
/// watermark — the streaming bounded-memory row measures peak growth.
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn note_live(size: u64) {
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

// SAFETY: a thin pass-through to the System allocator — every method
// forwards its arguments unchanged, so System's layout/provenance
// contract is upheld verbatim; the counters are side-effect-only.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to System.alloc with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        note_live(layout.size() as u64);
        System.alloc(layout)
    }

    // SAFETY: delegates to System.dealloc with the caller's ptr/layout.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    // SAFETY: delegates to System.realloc with the caller's arguments.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        note_live(new_size as u64);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Run `f` and return `(result, alloc_calls, alloc_bytes)` attributable
/// to it (single-threaded workloads only — the counters are global).
fn count_allocs<T>(f: impl FnOnce() -> T) -> (T, u64, u64) {
    let calls0 = ALLOC_CALLS.load(Ordering::Relaxed);
    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let out = f();
    (
        out,
        ALLOC_CALLS.load(Ordering::Relaxed) - calls0,
        ALLOC_BYTES.load(Ordering::Relaxed) - bytes0,
    )
}

/// Run `f` and return `(result, peak_live_growth_bytes)`: how far the
/// live-byte high watermark rose above the live set at entry
/// (single-threaded workloads only — the counters are global).
fn peak_live_growth<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let base = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(base, Ordering::Relaxed);
    let out = f();
    (out, PEAK_BYTES.load(Ordering::Relaxed).saturating_sub(base))
}

// ---------------------------------------------------------------------
// Reference model: the pre-overhaul BinaryHeap event queue.
// ---------------------------------------------------------------------

mod reference {
    //! Faithful copy of the `BinaryHeap<Scheduled>` queue this bench
    //! compares against; same FIFO-tie contract, std binary heap.

    use clamshell_sim::SimTime;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(Debug)]
    struct Scheduled<E> {
        at: SimTime,
        seq: u64,
        event: E,
    }

    impl<E> PartialEq for Scheduled<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<E> Eq for Scheduled<E> {}

    impl<E> Ord for Scheduled<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
        }
    }
    impl<E> PartialOrd for Scheduled<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    /// The pre-overhaul deterministic future-event list.
    #[derive(Debug)]
    pub struct BinaryHeapQueue<E> {
        heap: BinaryHeap<Scheduled<E>>,
        next_seq: u64,
        now: SimTime,
    }

    impl<E> BinaryHeapQueue<E> {
        pub fn new() -> Self {
            BinaryHeapQueue { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO }
        }

        pub fn now(&self) -> SimTime {
            self.now
        }

        pub fn schedule(&mut self, at: SimTime, event: E) {
            let at = at.max(self.now);
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Scheduled { at, seq, event });
        }

        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            let s = self.heap.pop()?;
            self.now = s.at;
            Some((s.at, s.event))
        }
    }
}

// ---------------------------------------------------------------------
// The hold-pattern workload, generic over the queue via two closures.
// ---------------------------------------------------------------------

/// Payload matching the runner's `Event` in size (a small Copy enum).
type Payload = u64;

/// Pseudo-random schedule deltas, identical for every queue under test.
fn deltas(n: usize) -> Vec<u64> {
    let mut state = 0x243F_6A88_85A3_08D3u64; // deterministic: pi digits
    (0..n)
        .map(|_| {
            // xorshift64*; delta in [1, 4096] ms keeps the heap churning.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 52) + 1
        })
        .collect()
}

/// Drive `pending` held events through `transactions` pop+schedule
/// pairs on the shipping two-list queue; returns a checksum so the work
/// can't be optimized away.
fn hold_twolist(pending: usize, transactions: usize, deltas: &[u64]) -> u64 {
    let mut q: EventQueue<Payload> = EventQueue::with_capacity(pending);
    for (i, &d) in deltas.iter().take(pending).enumerate() {
        q.schedule(SimTime::from_millis(d), i as Payload);
    }
    let mut sum = 0u64;
    for t in 0..transactions {
        let (at, e) = q.pop().expect("hold pattern never drains");
        sum = sum.wrapping_add(e).wrapping_add(at.as_millis());
        let d = deltas[(t + e as usize) & (deltas.len() - 1)];
        q.schedule(q.now() + SimDuration::from_millis(d), e);
    }
    sum
}

/// The same workload on the reference `BinaryHeap` queue.
fn hold_binaryheap(pending: usize, transactions: usize, deltas: &[u64]) -> u64 {
    let mut q: reference::BinaryHeapQueue<Payload> = reference::BinaryHeapQueue::new();
    for (i, &d) in deltas.iter().take(pending).enumerate() {
        q.schedule(SimTime::from_millis(d), i as Payload);
    }
    let mut sum = 0u64;
    for t in 0..transactions {
        let (at, e) = q.pop().expect("hold pattern never drains");
        sum = sum.wrapping_add(e).wrapping_add(at.as_millis());
        let d = deltas[(t + e as usize) & (deltas.len() - 1)];
        q.schedule(q.now() + SimDuration::from_millis(d), e);
    }
    sum
}

/// Pending-event counts under test: pool-sized (what the runner really
/// holds) and two sweep-scale stress sizes (where the far list's O(1)
/// appends leave heap sift traffic further and further behind).
const HOLD_SIZES: [usize; 3] = [64, 4096, 16384];
const DELTA_POOL: usize = 1 << 14; // power of two: cheap masking

fn bench_queues(c: &mut Criterion) {
    let ds = deltas(DELTA_POOL);
    let mut g = c.benchmark_group("hotloop");
    for pending in HOLD_SIZES {
        let txns = 10_000usize;
        g.bench_function(format!("queue_twolist_hold/{pending}"), |b| {
            b.iter(|| black_box(hold_twolist(pending, txns, &ds)))
        });
        g.bench_function(format!("queue_binaryheap_hold/{pending}"), |b| {
            b.iter(|| black_box(hold_binaryheap(pending, txns, &ds)))
        });
    }
    g.finish();
}

/// End-to-end hot loop: one full 300-task SM+PM batch run (the `sweep`
/// bench's cell workload), plus its allocation profile — and the same
/// cell with observability on, so the instrumentation's overhead is
/// measured where it matters.
fn bench_runner(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotloop");
    g.bench_function("run_batched_300", |b| {
        b.iter(|| {
            let cfg = RunConfig { pool_size: 15, ng: 5, seed: 1, ..Default::default() }
                .with_straggler()
                .with_maintenance();
            black_box(run_batched(cfg, Population::mturk_live(), specs(300, 5), 15))
        })
    });
    g.bench_function("run_batched_300_obs", |b| {
        b.iter(|| {
            let cfg = RunConfig { pool_size: 15, ng: 5, seed: 1, ..Default::default() }
                .with_straggler()
                .with_maintenance()
                .with_obs();
            black_box(run_batched(cfg, Population::mturk_live(), specs(300, 5), 15))
        })
    });
    g.finish();
}

fn specs(n: usize, ng: usize) -> Vec<TaskSpec> {
    (0..n).map(|i| TaskSpec::new(vec![(i % 2) as u32; ng])).collect()
}

// ---------------------------------------------------------------------
// Baseline emission: BENCH_hotloop.json at the repository root.
// ---------------------------------------------------------------------

/// Measure `f` for roughly `budget_ms`, returning events/sec (one
/// pop+schedule transaction = one event delivered).
fn measure_events_per_sec(txns_per_call: usize, budget_ms: u64, mut f: impl FnMut() -> u64) -> f64 {
    // Warm-up.
    black_box(f());
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed().as_millis() < budget_ms as u128 {
        black_box(f());
        calls += 1;
    }
    (calls * txns_per_call as u64) as f64 / start.elapsed().as_secs_f64()
}

fn emit_baseline() {
    let ds = deltas(DELTA_POOL);
    let txns = 10_000usize;
    let mut rows = String::new();
    let mut improvements: Vec<f64> = Vec::new();
    for (i, pending) in HOLD_SIZES.iter().copied().enumerate() {
        let ours = measure_events_per_sec(txns, 400, || hold_twolist(pending, txns, &ds));
        let bin = measure_events_per_sec(txns, 400, || hold_binaryheap(pending, txns, &ds));
        let speedup = ours / bin;
        improvements.push(speedup);
        eprintln!(
            "  baseline hold/{pending}: two-list {ours:.0} ev/s vs BinaryHeap {bin:.0} ev/s \
             ({speedup:.2}x)"
        );
        rows.push_str(&format!(
            "    {{\"pending\": {pending}, \"two_list_events_per_sec\": {ours:.0}, \
             \"binary_heap_events_per_sec\": {bin:.0}, \"speedup\": {speedup:.3}}}{}\n",
            if i + 1 < HOLD_SIZES.len() { "," } else { "" }
        ));
    }

    // Allocation profile + wall time of one 300-task SM+PM run.
    let cfg = || {
        RunConfig { pool_size: 15, ng: 5, seed: 1, ..Default::default() }
            .with_straggler()
            .with_maintenance()
    };
    // Warm-up, then measured run.
    let _ = run_batched(cfg(), Population::mturk_live(), specs(300, 5), 15);
    let t0 = Instant::now();
    let (report, allocs, bytes) =
        count_allocs(|| run_batched(cfg(), Population::mturk_live(), specs(300, 5), 15));
    let run_secs = t0.elapsed().as_secs_f64();
    let labels = report.labels_produced();
    eprintln!(
        "  baseline run_batched_300: {run_secs:.4}s, {allocs} allocs ({bytes} B), \
         {labels} labels"
    );

    // Observability overhead: the same cell with the metrics registry +
    // flight recorder on, averaged over a few runs (the cell is fast
    // enough that a single measurement is noise-dominated). The
    // disabled path is re-measured the same way so the ratio compares
    // like with like.
    const OBS_REPS: u32 = 5;
    let measure_cell = |mk: &dyn Fn() -> RunConfig| {
        let _ = run_batched(mk(), Population::mturk_live(), specs(300, 5), 15);
        let t0 = Instant::now();
        for _ in 0..OBS_REPS {
            black_box(run_batched(mk(), Population::mturk_live(), specs(300, 5), 15));
        }
        t0.elapsed().as_secs_f64() / OBS_REPS as f64
    };
    let disabled_secs = measure_cell(&|| cfg());
    let enabled_secs = measure_cell(&|| cfg().with_obs());
    let obs_ratio = enabled_secs / disabled_secs;
    let obs_events = run_batched(cfg().with_obs(), Population::mturk_live(), specs(300, 5), 15)
        .obs
        .expect("instrumented run carries a report")
        .recorded;
    eprintln!(
        "  baseline obs_overhead: disabled {disabled_secs:.4}s vs enabled {enabled_secs:.4}s \
         ({obs_ratio:.3}x, {obs_events} events recorded)"
    );

    // Streaming bounded-memory profile: peak live heap of a retire-mode
    // service run must not scale with stream length (the service-mode
    // contract; `crates/stream/tests/bounded_memory.rs` enforces the
    // same bound in CI). Measured on the per-task work floor — single
    // records, quorum 1 — so stream-length scaling dominates.
    let stream_peak = |n_tasks: usize| {
        let cfg = clamshell_core::RunConfig {
            pool_size: 4,
            ng: 1,
            n_classes: 2,
            quorum: 1,
            seed: 1,
            ..Default::default()
        };
        let knobs = clamshell_stream::StreamConfig {
            rate_per_sec: 5.0,
            checkpoint_every: 10_000,
            retire: true,
        };
        let (outcome, peak) = peak_live_growth(|| {
            clamshell_stream::run_stream(
                cfg,
                Population::mturk_live(),
                clamshell_stream::source::alternating(1),
                n_tasks,
                50,
                &knobs,
            )
        });
        assert_eq!(outcome.checkpoints.last().map(|c| c.completed), Some(n_tasks as u64));
        peak
    };
    let _ = stream_peak(200); // warm-up: fault lazy tables out of the measurement
    let stream_peak_1k = stream_peak(1_000);
    let stream_peak_100k = stream_peak(100_000);
    let stream_growth = stream_peak_100k as f64 / stream_peak_1k as f64;
    eprintln!(
        "  baseline stream_memory: peak live {stream_peak_1k} B at 1k tasks vs \
         {stream_peak_100k} B at 100k tasks ({stream_growth:.2}x for 100x the stream)"
    );

    // Sharded mega-sweep bounded-memory profile: peak live heap of a
    // sharded sweep must track the *shard*, not the grid — 10x the
    // cells at a fixed shard size may grow the peak only by allocator
    // noise plus the (grid/shard-bounded) manifest line vector. The
    // pool threads allocate through the same global counters, so the
    // peak is a true whole-process high watermark.
    let shard_peak = |n_cells: usize, shard_size: usize| {
        let seeds: Vec<u64> = (1..=(n_cells / 2) as u64).collect();
        let grid = clamshell_sweep::Grid::new(
            RunConfig { pool_size: 4, ng: 2, ..Default::default() },
            Population::mturk_live(),
            specs(4, 2),
            4,
        )
        .seeds(&seeds)
        .scenario("sm", |c| c.straggler = Some(Default::default()))
        .scenario("nosm", |c| c.straggler = None);
        let mut agg = clamshell_sweep::MetricsAggregator::new(
            grid.n_scenarios(),
            clamshell_sweep::Metric::standard(),
        );
        let manifest = std::env::temp_dir().join(format!("clamshell_bench_shard_{n_cells}.jsonl"));
        let _ = std::fs::remove_file(&manifest);
        let opts = clamshell_sweep::ShardOptions {
            shard_size,
            manifest: manifest.clone(),
            resume: false,
            threads: Some(4),
        };
        let (out, peak) = peak_live_growth(|| {
            clamshell_sweep::run_sharded(
                &grid,
                &mut agg,
                &opts,
                &clamshell_sweep::CancelToken::new(),
                None,
            )
            .expect("sharded bench sweep")
        });
        assert!(out.is_complete(), "sharded bench sweep ran to completion");
        let _ = std::fs::remove_file(&manifest);
        peak
    };
    const SHARD: usize = 1024;
    let _ = shard_peak(200, SHARD); // warm-up: spawn the pool outside the measurement
    let shard_peak_10k = shard_peak(10_000, SHARD);
    let shard_peak_100k = shard_peak(100_000, SHARD);
    let shard_growth = shard_peak_100k as f64 / shard_peak_10k as f64;
    eprintln!(
        "  baseline sharded_sweep: peak live {shard_peak_10k} B at 10k cells vs \
         {shard_peak_100k} B at 100k cells, shard {SHARD} ({shard_growth:.2}x for 10x the grid)"
    );

    let json = format!(
        "{{\n  \"bench\": \"hotloop\",\n  \"workload\": \"hold pattern: pop earliest event + \
         schedule replacement at now+delta, fixed pending count; runner row is one 300-task \
         SM+PM run_batched cell\",\n  \"queue_hold\": [\n{rows}  ],\n  \"runner\": {{\n    \
         \"tasks\": 300, \"wall_secs\": {run_secs:.4}, \"alloc_calls\": {allocs}, \
         \"alloc_bytes\": {bytes}, \"labels\": {labels}\n  }},\n  \"obs_overhead\": {{\n    \
         \"disabled_secs\": {disabled_secs:.4}, \"enabled_secs\": {enabled_secs:.4}, \
         \"ratio\": {obs_ratio:.3}, \"events_recorded\": {obs_events}\n  }},\n  \
         \"stream_memory\": {{\n    \"peak_live_bytes_1k_tasks\": {stream_peak_1k}, \
         \"peak_live_bytes_100k_tasks\": {stream_peak_100k}, \"growth\": {stream_growth:.3}\n  \
         }},\n  \"sharded_sweep\": {{\n    \"shard_size\": {SHARD}, \
         \"peak_live_bytes_10k_cells\": {shard_peak_10k}, \
         \"peak_live_bytes_100k_cells\": {shard_peak_100k}, \"growth\": {shard_growth:.3}\n  \
         }},\n  \"hardware\": \
         \"{threads}-core container (std::thread::available_parallelism); wall-clock \
         measurement via the vendored criterion shim — absolute numbers are indicative, \
         ratios are the signal\",\n  \"generated_by\": \"cargo bench -p clamshell-bench \
         --bench hotloop\"\n}}\n",
        threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    );
    // Regression guards run BEFORE the write, so a regressed (or
    // noise-glitched) run aborts without clobbering the committed
    // baseline. The pool-sized row rides closer to the heap (both
    // structures are L1-resident there), so it gets a parity guard; the
    // sweep-scale rows carry the >= 20% acceptance bar.
    for (&pending, &speedup) in HOLD_SIZES.iter().zip(&improvements) {
        let floor = if pending >= 4096 { 1.2 } else { 0.95 };
        assert!(
            speedup >= floor,
            "two-list queue vs BinaryHeap at pending={pending}: {speedup:.2}x < {floor}x \
             (committed BENCH_hotloop.json left untouched)"
        );
    }
    // Instrumentation must stay cheap: an enabled run may cost at most
    // 50% over disabled (generous for container noise; the steady-state
    // overhead is a branch per instrumentation point plus ring pushes).
    assert!(
        obs_ratio <= 1.5,
        "observability overhead {obs_ratio:.3}x exceeds 1.5x \
         (committed BENCH_hotloop.json left untouched)"
    );
    // Service-mode memory must be stream-length invariant: 100x the
    // tasks may grow the peak live set only by allocator noise and the
    // (interval-bounded) checkpoint vector.
    assert!(
        stream_growth <= 4.0,
        "retire-mode stream peak grew {stream_growth:.2}x from 1k to 100k tasks \
         (committed BENCH_hotloop.json left untouched)"
    );
    // Sharded sweeps must stay shard-bounded: 10x the grid at a fixed
    // shard size may not grow the peak live set materially (the only
    // O(grid/shard) term is the manifest line vector).
    assert!(
        shard_growth <= 4.0,
        "sharded sweep peak grew {shard_growth:.2}x from 10k to 100k cells \
         (committed BENCH_hotloop.json left untouched)"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotloop.json");
    std::fs::write(path, json).expect("write BENCH_hotloop.json");
    eprintln!("  baseline written to {path}");
}

criterion_group!(benches, bench_queues, bench_runner);

fn main() {
    benches();
    // Only rewrite the committed baseline in measure mode; `cargo test`
    // smoke runs must not touch the tree.
    if std::env::args().any(|a| a == "--bench") {
        emit_baseline();
    }
}
