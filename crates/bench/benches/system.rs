//! End-to-end system benchmarks: full simulated labeling runs per
//! configuration. One bench per headline table/figure family, so
//! `cargo bench` regenerates the cost of every experiment row.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use clamshell_core::baselines::{run_open_market, OpenMarketConfig};
use clamshell_core::config::{MaintenanceConfig, StragglerConfig};
use clamshell_core::runner::run_batched;
use clamshell_core::task::TaskSpec;
use clamshell_core::RunConfig;
use clamshell_quality::{DawidSkene, EmConfig};
use clamshell_trace::Population;

fn specs(n: usize, ng: usize) -> Vec<TaskSpec> {
    (0..n).map(|i| TaskSpec::new(vec![(i % 2) as u32; ng])).collect()
}

/// Figures 9–12 cost: one full batch run per SM × PM configuration.
fn bench_batch_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_run_150_tasks");
    g.sample_size(10);
    for (sm, pm, name) in [
        (false, false, "baseline"),
        (true, false, "straggler"),
        (false, true, "maintenance"),
        (true, true, "combined"),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = RunConfig {
                    pool_size: 15,
                    ng: 5,
                    straggler: sm.then(StragglerConfig::default),
                    maintenance: pm.then(MaintenanceConfig::pm8),
                    seed: 1,
                    ..Default::default()
                };
                black_box(run_batched(cfg, Population::mturk_live(), specs(150, 5), 15))
            })
        });
    }
    g.finish();
}

/// §6.6 Base-NR cost: the open-market simulation.
fn bench_open_market(c: &mut Criterion) {
    let mut g = c.benchmark_group("open_market");
    g.sample_size(10);
    for &n in &[100usize, 500] {
        g.bench_with_input(BenchmarkId::new("tasks", n), &n, |b, &n| {
            b.iter(|| {
                black_box(run_open_market(
                    Population::mturk_live(),
                    clamshell_crowd::PlatformConfig::default(),
                    specs(n, 1),
                    OpenMarketConfig::default(),
                    1,
                ))
            })
        });
    }
    g.finish();
}

/// Quality-control cost: Dawid–Skene EM on a realistic vote matrix.
fn bench_quality(c: &mut Criterion) {
    let mut g = c.benchmark_group("quality");
    let mut ds = DawidSkene::new(2);
    let mut rng = clamshell_sim::rng::Rng::new(9);
    for item in 0..500u32 {
        for w in 0..5u32 {
            let truth = item % 2;
            let label = if rng.bernoulli(0.85) { truth } else { 1 - truth };
            ds.observe(w, item, label);
        }
    }
    g.bench_function("dawid_skene_500x5", |b| b.iter(|| black_box(ds.run(&EmConfig::default()))));
    g.finish();
}

criterion_group!(benches, bench_batch_runs, bench_open_market, bench_quality);
criterion_main!(benches);
