//! Benchmarks of the ML substrate: model training (the decision-latency
//! cost the paper pipelines away), uncertainty selection (§5.3's
//! subsample trick), and dataset generation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use clamshell_learn::datasets::digits::{digits, DigitsConfig};
use clamshell_learn::datasets::generate::{make_classification, GenConfig};
use clamshell_learn::model::{Classifier, Example, SgdConfig};
use clamshell_learn::sampling::{select_uncertain, Uncertainty};
use clamshell_learn::{LogisticRegression, SoftmaxRegression};
use clamshell_sim::rng::Rng;

fn bench_training(c: &mut Criterion) {
    let mut g = c.benchmark_group("training");
    g.sample_size(10);
    let ds = make_classification(
        &GenConfig { n_samples: 500, n_features: 50, n_informative: 10, ..Default::default() },
        1,
    );
    let examples: Vec<Example> = (0..ds.len()).map(|r| Example::new(r, ds.labels[r])).collect();
    for &n in &[100usize, 500] {
        g.bench_with_input(BenchmarkId::new("logistic_fit", n), &n, |b, &n| {
            b.iter(|| {
                let mut m = LogisticRegression::new(SgdConfig { epochs: 15, ..Default::default() });
                m.fit(&ds.features, &examples[..n]);
                black_box(m.bias())
            })
        });
    }
    let dg = digits(&DigitsConfig { n_samples: 300, ..Default::default() }, 2);
    let dg_examples: Vec<Example> = (0..dg.len()).map(|r| Example::new(r, dg.labels[r])).collect();
    g.bench_function("softmax_fit_digits_300x784", |b| {
        b.iter(|| {
            let mut m = SoftmaxRegression::new(10, SgdConfig { epochs: 5, ..Default::default() });
            m.fit(&dg.features, &dg_examples);
            black_box(m.is_fit())
        })
    });
    g.finish();
}

fn bench_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("selection");
    let ds = make_classification(
        &GenConfig { n_samples: 5000, n_features: 50, n_informative: 10, ..Default::default() },
        3,
    );
    let examples: Vec<Example> = (0..500).map(|r| Example::new(r, ds.labels[r])).collect();
    let mut model = LogisticRegression::new(SgdConfig::default());
    model.fit(&ds.features, &examples);
    let unlabeled: Vec<usize> = (500..5000).collect();
    // The paper's point: selection cost is linear in the subsample size,
    // not the unlabeled-set size.
    for &sample in &[200usize, 1000, 4500] {
        g.bench_with_input(
            BenchmarkId::new("uncertainty_subsample", sample),
            &sample,
            |b, &sample| {
                let mut rng = Rng::new(4);
                b.iter(|| {
                    black_box(select_uncertain(
                        &model,
                        &ds.features,
                        &unlabeled,
                        10,
                        sample,
                        Uncertainty::LeastConfidence,
                        &mut rng,
                    ))
                })
            },
        );
    }
    g.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("datasets");
    g.sample_size(10);
    g.bench_function("make_classification_1000x20", |b| {
        b.iter(|| black_box(make_classification(&GenConfig::default(), 5)))
    });
    g.bench_function("digits_100", |b| {
        b.iter(|| black_box(digits(&DigitsConfig { n_samples: 100, ..Default::default() }, 6)))
    });
    g.finish();
}

criterion_group!(benches, bench_training, bench_selection, bench_generation);
criterion_main!(benches);
