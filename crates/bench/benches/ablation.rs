//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! straggler routing policy, TermEst on/off, QC decoupling, and the
//! hybrid active-fraction. These measure *simulated outcome* differences
//! via criterion's throughput of full runs — i.e., they keep the ablated
//! code paths hot and comparable.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use clamshell_core::config::{MaintenanceConfig, QcMode, StragglerConfig};
use clamshell_core::lifeguard::RoutingPolicy;
use clamshell_core::runner::run_batched;
use clamshell_core::task::TaskSpec;
use clamshell_core::RunConfig;
use clamshell_trace::Population;

fn specs(n: usize, ng: usize) -> Vec<TaskSpec> {
    (0..n).map(|i| TaskSpec::new(vec![(i % 2) as u32; ng])).collect()
}

/// §4.1: the four straggler routing policies.
fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_routing");
    g.sample_size(10);
    for (policy, name) in [
        (RoutingPolicy::Random, "random"),
        (RoutingPolicy::LongestRunning, "longest_running"),
        (RoutingPolicy::FewestWorkers, "fewest_workers"),
        (RoutingPolicy::Oracle, "oracle"),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = RunConfig {
                    pool_size: 15,
                    ng: 5,
                    straggler: Some(StragglerConfig { routing: policy, ..Default::default() }),
                    seed: 2,
                    ..Default::default()
                };
                black_box(run_batched(cfg, Population::mturk_live(), specs(90, 5), 15))
            })
        });
    }
    g.finish();
}

/// §4.3: TermEst on/off under SM + maintenance.
fn bench_termest(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_termest");
    g.sample_size(10);
    for (termest, name) in [(true, "with_termest"), (false, "without_termest")] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = RunConfig {
                    pool_size: 15,
                    ng: 5,
                    straggler: Some(StragglerConfig::default()),
                    maintenance: Some(MaintenanceConfig {
                        use_termest: termest,
                        ..MaintenanceConfig::pm8()
                    }),
                    seed: 3,
                    ..Default::default()
                };
                black_box(run_batched(cfg, Population::mturk_live(), specs(90, 5), 15))
            })
        });
    }
    g.finish();
}

/// §4.1: decoupled vs naive SM under 3-vote quality control.
fn bench_qc_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_qc_mode");
    g.sample_size(10);
    for (mode, name) in [(QcMode::Decoupled, "decoupled"), (QcMode::Naive, "naive")] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = RunConfig {
                    pool_size: 15,
                    ng: 5,
                    quorum: 3,
                    straggler: Some(StragglerConfig { qc_mode: mode, ..Default::default() }),
                    seed: 4,
                    ..Default::default()
                };
                black_box(run_batched(cfg, Population::mturk_live(), specs(30, 5), 5))
            })
        });
    }
    g.finish();
}

/// Pool-to-batch ratio sweep (the R axis of Figures 9–10).
fn bench_ratio(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_ratio");
    g.sample_size(10);
    for &r in &[0.5f64, 1.0, 3.0] {
        g.bench_with_input(BenchmarkId::new("r", format!("{r}")), &r, |b, &r| {
            b.iter(|| {
                let cfg = RunConfig {
                    pool_size: 15,
                    ng: 5,
                    straggler: Some(StragglerConfig::default()),
                    seed: 5,
                    ..Default::default()
                };
                let batch = cfg.batch_size_for_ratio(r);
                black_box(run_batched(cfg, Population::mturk_live(), specs(60, 5), batch))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_routing, bench_termest, bench_qc_modes, bench_ratio);
criterion_main!(benches);
