//! Pool maintenance: per-worker latency accounting, TermEst, and the
//! eviction decision (§4.2–§4.3).

use crate::config::MaintenanceConfig;
use clamshell_crowd::WorkerId;
use clamshell_sim::stats::OnlineStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Empirical latency bookkeeping for one worker. All latencies are
/// **seconds per label** (task latency divided by `Ng`), matching the
/// per-label thresholds of Figures 5, 7 and 8.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Per-label latency of *completed* tasks (the `l_{s,Tc}` sample).
    pub completed: OnlineStats,
    /// Number of tasks started (`N`).
    pub started: u64,
    /// Number of tasks terminated under the worker (`N_t`).
    pub terminated: u64,
    /// Empirical means of the workers that caused this worker's
    /// terminations — TermEst's estimate of `l_f` (§4.3: "we estimate lf
    /// as the empirical mean of the workers that caused any of ws' past
    /// jobs to terminate").
    pub terminators: OnlineStats,
    /// Records where this worker's answer matched the voted consensus
    /// (numerator of the agreement rate; quality maintenance, §4.2
    /// "Extensions").
    pub quality_matched: u64,
    /// Records compared against a consensus (denominator).
    pub quality_total: u64,
}

impl WorkerStats {
    /// Tasks completed (`N_c = N − N_t`).
    pub fn completed_count(&self) -> u64 {
        self.started.saturating_sub(self.terminated)
    }

    /// Record a completed task of `ng` records taking `secs`.
    pub fn record_completion(&mut self, secs: f64, ng: u32) {
        self.completed.push(secs / ng.max(1) as f64);
    }

    /// Record that one of this worker's tasks was terminated, caused by a
    /// worker whose current empirical per-label mean is `terminator_mean`
    /// (if known).
    pub fn record_termination(&mut self, terminator_mean: Option<f64>) {
        self.terminated += 1;
        if let Some(m) = terminator_mean {
            self.terminators.push(m);
        }
    }

    /// TermEst (§4.3): estimated mean per-label latency of the worker's
    /// *terminated* tasks,
    /// `l̂_{s,Tt} = l_f · (N + α) / (N_c + α)`.
    ///
    /// Falls back to the completed-task mean when no terminator evidence
    /// exists.
    pub fn termest_terminated_mean(&self, alpha: f64) -> f64 {
        let lf = if self.terminators.count() > 0 {
            self.terminators.mean()
        } else {
            return self.completed.mean();
        };
        let n = self.started as f64;
        let nc = self.completed_count() as f64;
        lf * (n + alpha) / (nc + alpha)
    }

    /// TermEst-adjusted overall mean:
    /// `l̂_s = (N_t/N)·l̂_{s,Tt} + (N_c/N)·l_{s,Tc}`.
    pub fn termest_mean(&self, alpha: f64) -> f64 {
        if self.started == 0 {
            return 0.0;
        }
        let n = self.started as f64;
        let nt = self.terminated as f64;
        let nc = self.completed_count() as f64;
        (nt / n) * self.termest_terminated_mean(alpha) + (nc / n) * self.completed.mean()
    }

    /// Plain empirical mean over completed tasks only (what maintenance
    /// sees *without* TermEst — biased fast under straggler mitigation).
    pub fn naive_mean(&self) -> f64 {
        self.completed.mean()
    }

    /// Record agreement with a voted consensus: `matched` of `total`
    /// records agreed.
    pub fn record_quality(&mut self, matched: u64, total: u64) {
        debug_assert!(matched <= total);
        self.quality_matched += matched;
        self.quality_total += total;
    }

    /// Agreement-with-consensus rate, `None` until any signal exists.
    pub fn agreement_rate(&self) -> Option<f64> {
        if self.quality_total == 0 {
            None
        } else {
            Some(self.quality_matched as f64 / self.quality_total as f64)
        }
    }

    /// One-sided test: is this worker's agreement rate significantly
    /// *below* `min_agreement` at level `alpha`? Normal approximation to
    /// the binomial; requires at least `min_n` compared records.
    pub fn agreement_below(&self, min_agreement: f64, alpha: f64, min_n: u64) -> bool {
        if self.quality_total < min_n.max(1) {
            return false;
        }
        let n = self.quality_total as f64;
        let p_hat = self.quality_matched as f64 / n;
        let se = (min_agreement * (1.0 - min_agreement) / n).sqrt();
        if se == 0.0 {
            return p_hat < min_agreement;
        }
        let z = (p_hat - min_agreement) / se;
        clamshell_sim::dist::standard_normal_cdf(z) < alpha
    }
}

/// The Maintainer: accumulates [`WorkerStats`] and decides evictions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Maintainer {
    stats: BTreeMap<WorkerId, WorkerStats>,
    /// Total workers evicted so far (for Figures 7 and 14).
    pub evictions: u64,
    /// Workers who walked out mid-assignment (adversity churn). Tracked
    /// here because churn and eviction compete for the same reserve:
    /// every walkout consumes a replacement that maintenance could have
    /// spent on a slow worker.
    pub walkouts: u64,
}

impl Maintainer {
    /// Empty maintainer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stats entry for a worker, creating it on first touch.
    pub fn stats_mut(&mut self, w: WorkerId) -> &mut WorkerStats {
        self.stats.entry(w).or_default()
    }

    /// Read-only stats for a worker.
    pub fn stats(&self, w: WorkerId) -> Option<&WorkerStats> {
        self.stats.get(&w)
    }

    /// The worker's best latency estimate under the current config:
    /// TermEst-adjusted when enabled, completed-only otherwise.
    pub fn estimate(&self, w: WorkerId, cfg: &MaintenanceConfig) -> Option<f64> {
        let s = self.stats.get(&w)?;
        if s.started == 0 {
            return None;
        }
        Some(if cfg.use_termest { s.termest_mean(cfg.termest_alpha) } else { s.naive_mean() })
    }

    /// The eviction decision for one worker (§4.2): flag when the latency
    /// estimate is significantly above `PMℓ` by a one-sided test.
    ///
    /// The significance test runs on the completed-task sample; TermEst
    /// shifts its mean (the paper: "our formulation is equivalent to
    /// modifying the latency threshold on a per worker basis"). Workers
    /// whose every task was terminated carry no completed-sample variance,
    /// so they are flagged on the raw TermEst estimate once they have
    /// enough attempts.
    pub fn should_evict(&self, w: WorkerId, cfg: &MaintenanceConfig) -> bool {
        use crate::config::MaintenanceObjective as Obj;
        let Some(s) = self.stats.get(&w) else {
            return false;
        };
        if s.started < cfg.min_tasks {
            return false;
        }
        // Quality leg (§4.2 Extensions): flag workers whose agreement
        // with the voted consensus is significantly below the floor.
        let quality_flag = match cfg.objective {
            Obj::Speed => false,
            Obj::Quality { min_agreement } | Obj::SpeedAndQuality { min_agreement } => {
                s.agreement_below(min_agreement, cfg.alpha, cfg.min_tasks)
            }
        };
        if quality_flag {
            return true;
        }
        if matches!(cfg.objective, Obj::Quality { .. }) {
            return false; // quality-only maintenance ignores speed
        }
        let est = match self.estimate(w, cfg) {
            Some(e) => e,
            None => return false,
        };
        if s.completed.count() >= 2 {
            // Shift the completed sample by the TermEst correction and run
            // the one-sided test against PMℓ.
            let shift = est - s.completed.mean();
            let mut shifted = s.completed;
            // OnlineStats is mean/variance; shifting the mean leaves the
            // variance unchanged, so emulate by testing against a shifted
            // threshold instead.
            let threshold = cfg.threshold_per_label_secs - shift;
            shifted.merge(&OnlineStats::new()); // no-op; keeps clone intent clear
            shifted.mean_exceeds(threshold, cfg.alpha, cfg.min_tasks.min(2))
        } else {
            // No (or single) completed sample: decide on the point
            // estimate alone.
            est > cfg.threshold_per_label_secs
        }
    }

    /// All current pool members flagged for eviction, slowest-estimate
    /// first (so limited reserves replace the worst workers).
    pub fn flag_evictions(
        &self,
        pool_members: impl Iterator<Item = WorkerId>,
        cfg: &MaintenanceConfig,
    ) -> Vec<WorkerId> {
        let mut flagged: Vec<(f64, WorkerId)> = pool_members
            .filter(|&w| self.should_evict(w, cfg))
            .map(|w| (self.estimate(w, cfg).unwrap_or(0.0), w))
            .collect();
        flagged.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        flagged.into_iter().map(|(_, w)| w).collect()
    }

    /// Record an eviction (for the replacement-rate figures).
    pub fn note_eviction(&mut self) {
        self.evictions += 1;
    }

    /// React to a mid-assignment walkout: count it and drop the departed
    /// worker's stats — they can never return, so keeping their sample
    /// would only skew pool-level aggregates.
    pub fn note_walkout(&mut self, w: WorkerId) {
        self.walkouts += 1;
        self.stats.remove(&w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MaintenanceConfig {
        MaintenanceConfig::pm8()
    }

    #[test]
    fn completion_tracking_per_label() {
        let mut s = WorkerStats { started: 2, ..Default::default() };
        s.record_completion(20.0, 5); // 4 s/label
        s.record_completion(30.0, 5); // 6 s/label
        assert!((s.naive_mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.completed_count(), 2);
    }

    #[test]
    fn termest_formula_matches_paper() {
        // N = 10 tasks, 6 terminated, terminators average lf = 3 s/label,
        // completed mean 4 s/label, α = 1.
        let mut s = WorkerStats { started: 10, ..Default::default() };
        for _ in 0..4 {
            s.record_completion(4.0, 1);
        }
        for _ in 0..6 {
            s.record_termination(Some(3.0));
        }
        // l̂_{s,Tt} = 3 * (10 + 1) / (4 + 1) = 6.6
        assert!((s.termest_terminated_mean(1.0) - 6.6).abs() < 1e-12);
        // l̂_s = 0.6*6.6 + 0.4*4.0 = 5.56
        assert!((s.termest_mean(1.0) - 5.56).abs() < 1e-12);
    }

    #[test]
    fn termest_handles_all_terminated() {
        // Worker never completed anything: N = T, Nc = 0. The α smoothing
        // avoids the divide-by-zero the paper calls out.
        let mut s = WorkerStats { started: 5, ..Default::default() };
        for _ in 0..5 {
            s.record_termination(Some(2.0));
        }
        let est = s.termest_terminated_mean(1.0);
        assert!((est - 2.0 * 6.0 / 1.0).abs() < 1e-12); // 2*(5+1)/(0+1)=12
        assert!(est > 8.0, "all-terminated worker should look slow");
        assert!((s.termest_mean(1.0) - est).abs() < 1e-12);
    }

    #[test]
    fn termest_exceeds_naive_under_termination() {
        // The whole point of TermEst: terminated tasks hide slowness, so
        // the adjusted estimate must be >= the naive completed-only mean.
        let mut s = WorkerStats { started: 8, ..Default::default() };
        for _ in 0..3 {
            s.record_completion(5.0, 1);
        }
        for _ in 0..5 {
            s.record_termination(Some(4.0));
        }
        assert!(s.termest_mean(1.0) > s.naive_mean());
    }

    #[test]
    fn eviction_flags_clearly_slow_worker() {
        let mut m = Maintainer::new();
        let w = WorkerId(0);
        let s = m.stats_mut(w);
        s.started = 10;
        for i in 0..10 {
            s.record_completion(12.0 + (i % 3) as f64, 1); // ~13 s/label
        }
        assert!(m.should_evict(w, &cfg()));
    }

    #[test]
    fn eviction_spares_fast_and_unknown_workers() {
        let mut m = Maintainer::new();
        let fast = WorkerId(1);
        let s = m.stats_mut(fast);
        s.started = 10;
        for _ in 0..10 {
            s.record_completion(3.0, 1);
        }
        assert!(!m.should_evict(fast, &cfg()));
        assert!(!m.should_evict(WorkerId(99), &cfg()), "never-seen worker");
    }

    #[test]
    fn eviction_requires_evidence() {
        let mut m = Maintainer::new();
        let w = WorkerId(2);
        let s = m.stats_mut(w);
        s.started = 1;
        s.record_completion(50.0, 1);
        assert!(!m.should_evict(w, &cfg()), "one task is not enough (min_tasks=3)");
    }

    #[test]
    fn termest_rescues_detection_under_straggler_mitigation() {
        // A slow worker whose slow tasks are all terminated: completed
        // tasks (the few fast ones) average below PMl, so the naive
        // estimate misses them; TermEst catches them. This is Figure 14.
        let mut m = Maintainer::new();
        let w = WorkerId(3);
        let s = m.stats_mut(w);
        s.started = 10;
        for _ in 0..2 {
            s.record_completion(6.0, 1); // the lucky fast ones
        }
        for _ in 0..8 {
            s.record_termination(Some(4.0)); // fast co-workers kept winning
        }
        let with = cfg(); // use_termest: true
        let without = MaintenanceConfig { use_termest: false, ..cfg() };
        assert!(m.should_evict(w, &with), "TermEst should flag");
        assert!(!m.should_evict(w, &without), "naive estimate should miss");
    }

    #[test]
    fn quality_objective_flags_disagreeing_worker() {
        use crate::config::MaintenanceObjective;
        let qcfg = MaintenanceConfig {
            objective: MaintenanceObjective::Quality { min_agreement: 0.8 },
            ..cfg()
        };
        let mut m = Maintainer::new();
        // A fast but wildly inaccurate worker: speed maintenance keeps
        // them, quality maintenance must not.
        let w = WorkerId(0);
        let s = m.stats_mut(w);
        s.started = 10;
        for _ in 0..10 {
            s.record_completion(2.0, 1); // very fast
        }
        s.record_quality(4, 10); // 40% agreement
        assert!(!m.should_evict(w, &cfg()), "speed objective ignores quality");
        assert!(m.should_evict(w, &qcfg), "quality objective flags them");
    }

    #[test]
    fn quality_objective_keeps_accurate_workers() {
        use crate::config::MaintenanceObjective;
        let qcfg = MaintenanceConfig {
            objective: MaintenanceObjective::Quality { min_agreement: 0.8 },
            ..cfg()
        };
        let mut m = Maintainer::new();
        // Slow but accurate: quality-only maintenance keeps them even
        // though speed maintenance would evict.
        let w = WorkerId(1);
        let s = m.stats_mut(w);
        s.started = 10;
        for _ in 0..10 {
            s.record_completion(20.0, 1);
        }
        s.record_quality(19, 20);
        assert!(m.should_evict(w, &cfg()), "speed objective would evict");
        assert!(!m.should_evict(w, &qcfg), "quality objective keeps them");
    }

    #[test]
    fn speed_and_quality_flags_either_failure() {
        use crate::config::MaintenanceObjective;
        let both = MaintenanceConfig {
            objective: MaintenanceObjective::SpeedAndQuality { min_agreement: 0.8 },
            ..cfg()
        };
        let mut m = Maintainer::new();
        let slow = WorkerId(0);
        let s = m.stats_mut(slow);
        s.started = 8;
        for _ in 0..8 {
            s.record_completion(20.0, 1);
        }
        s.record_quality(20, 20); // accurate but slow
        let sloppy = WorkerId(1);
        let s = m.stats_mut(sloppy);
        s.started = 8;
        for _ in 0..8 {
            s.record_completion(2.0, 1);
        }
        s.record_quality(6, 20); // fast but inaccurate
        let good = WorkerId(2);
        let s = m.stats_mut(good);
        s.started = 8;
        for _ in 0..8 {
            s.record_completion(2.0, 1);
        }
        s.record_quality(19, 20);
        assert!(m.should_evict(slow, &both));
        assert!(m.should_evict(sloppy, &both));
        assert!(!m.should_evict(good, &both));
    }

    #[test]
    fn agreement_test_needs_evidence() {
        let mut s = WorkerStats::default();
        s.record_quality(0, 2); // 0% but only two records
        assert!(!s.agreement_below(0.8, 0.05, 5));
        s.record_quality(1, 18);
        assert!(s.agreement_below(0.8, 0.05, 5));
        assert!((s.agreement_rate().unwrap() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn flagged_evictions_sorted_slowest_first() {
        let mut m = Maintainer::new();
        for (id, lat) in [(0u32, 20.0), (1, 15.0), (2, 3.0), (3, 30.0)] {
            let s = m.stats_mut(WorkerId(id));
            s.started = 6;
            for _ in 0..6 {
                s.record_completion(lat, 1);
            }
        }
        let flagged = m.flag_evictions(
            [WorkerId(0), WorkerId(1), WorkerId(2), WorkerId(3)].into_iter(),
            &cfg(),
        );
        assert_eq!(flagged, vec![WorkerId(3), WorkerId(0), WorkerId(1)]);
    }
}
