//! The closed-form pool-convergence model of §4.2.
//!
//! With a worker population split by the threshold `PMℓ` into a fast part
//! (probability mass `1 − q`, conditional mean `μ_f`) and a slow part
//! (mass `q`, conditional mean `μ_s`), replacing every slow worker after
//! each maintenance step with a fresh population draw gives a pool whose
//! expected mean latency after `n` steps is
//!
//! ```text
//! E[μ_n] = (1 − q^{n+1}) μ_f + q^{n+1} μ_s
//! ```
//!
//! which converges to `μ_f` — "the pool converges to the mean latency of
//! all workers below PMℓ". The reproduction harness overlays this curve on
//! simulated mean-pool-latency trajectories (Figure 6) and the integration
//! tests assert agreement.

use serde::{Deserialize, Serialize};

/// Parameters of the two-part population split at `PMℓ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolModel {
    /// Probability a fresh draw is *slow* (mean latency above `PMℓ`).
    pub q: f64,
    /// Mean latency of the fast part.
    pub mu_f: f64,
    /// Mean latency of the slow part.
    pub mu_s: f64,
}

impl PoolModel {
    /// Construct and validate.
    pub fn new(q: f64, mu_f: f64, mu_s: f64) -> Self {
        assert!((0.0..=1.0).contains(&q), "q must be a probability");
        assert!(mu_f >= 0.0 && mu_s >= mu_f, "need mu_s >= mu_f >= 0");
        PoolModel { q, mu_f, mu_s }
    }

    /// Expected pool mean latency after `n` maintenance steps (step 0 is
    /// the initial random pool).
    pub fn expected_mpl(&self, n: u32) -> f64 {
        let qn = self.q.powi(n as i32 + 1);
        (1.0 - qn) * self.mu_f + qn * self.mu_s
    }

    /// The asymptote `μ_f`.
    pub fn limit(&self) -> f64 {
        self.mu_f
    }

    /// The initial pool mean `(1−q)·μ_f + q·μ_s`, i.e. `expected_mpl(0)`.
    /// The constructor enforces `μ_s ≥ μ_f`, so this is always ≥ `μ_f` —
    /// the identity is asserted in the tests rather than clamped here,
    /// where a clamp would silently mask a broken `expected_mpl(0)`.
    pub fn initial(&self) -> f64 {
        self.expected_mpl(0)
    }

    /// Number of maintenance steps until the expected MPL is within
    /// `eps` of the asymptote.
    pub fn steps_to_converge(&self, eps: f64) -> u32 {
        assert!(eps > 0.0);
        if self.q == 0.0 || self.mu_s == self.mu_f {
            return 0;
        }
        if self.q >= 1.0 {
            return u32::MAX;
        }
        // q^{n+1} (μs − μf) <= eps  ⇒  n+1 >= log(eps/(μs−μf)) / log q
        let ratio: f64 = eps / (self.mu_s - self.mu_f);
        if ratio >= 1.0 {
            return 0;
        }
        let n = (ratio.ln() / self.q.ln()).ceil() as u32;
        n.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_formula() {
        let m = PoolModel::new(0.4, 2.0, 10.0);
        // n = 0: (1 - q) μf + q μs
        assert!((m.expected_mpl(0) - (0.6 * 2.0 + 0.4 * 10.0)).abs() < 1e-12);
        // n = 1: (1 - q²) μf + q² μs
        assert!((m.expected_mpl(1) - ((1.0 - 0.16) * 2.0 + 0.16 * 10.0)).abs() < 1e-12);
    }

    #[test]
    fn monotone_decreasing_to_limit() {
        let m = PoolModel::new(0.5, 3.0, 20.0);
        let mut prev = f64::INFINITY;
        for n in 0..50 {
            let v = m.expected_mpl(n);
            assert!(v <= prev + 1e-12, "not monotone at {n}");
            assert!(v >= m.limit() - 1e-12);
            prev = v;
        }
        assert!((m.expected_mpl(60) - m.limit()).abs() < 1e-6);
    }

    #[test]
    fn degenerate_cases() {
        // q = 0: already all fast.
        let m = PoolModel::new(0.0, 2.0, 10.0);
        assert_eq!(m.expected_mpl(0), 2.0);
        assert_eq!(m.steps_to_converge(0.1), 0);
        // q = 1: never converges.
        let m = PoolModel::new(1.0, 2.0, 10.0);
        assert_eq!(m.expected_mpl(100), 10.0);
        assert_eq!(m.steps_to_converge(0.1), u32::MAX);
    }

    #[test]
    fn steps_to_converge_is_tight() {
        let m = PoolModel::new(0.3, 2.0, 12.0);
        let n = m.steps_to_converge(0.05);
        assert!(m.expected_mpl(n) - m.limit() <= 0.05 + 1e-12);
        if n > 0 {
            assert!(m.expected_mpl(n - 1) - m.limit() > 0.05);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_bad_order() {
        let _ = PoolModel::new(0.5, 10.0, 2.0);
    }

    #[test]
    fn initial_is_expected_mpl_zero_and_at_least_the_limit() {
        // `initial()` must be exactly the n = 0 point of the curve, and
        // the constructor's μs ≥ μf invariant already guarantees it is at
        // or above the asymptote — no clamp needed to hold the identity.
        for &(q, mu_f, mu_s) in
            &[(0.0, 2.0, 10.0), (0.4, 2.0, 10.0), (1.0, 2.0, 10.0), (0.7, 3.0, 3.0)]
        {
            let m = PoolModel::new(q, mu_f, mu_s);
            assert_eq!(m.initial(), m.expected_mpl(0));
            assert!(m.initial() >= m.limit() - 1e-12);
        }
    }
}
