//! Run reports: everything the figures consume.

use clamshell_crowd::{CostLedger, WorkerId};
use clamshell_obs::ObsReport;
use clamshell_sim::stats::Summary;
use clamshell_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One completed task, as logged for Figures 3, 5, 10, 13.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Task index within the run.
    pub task: u32,
    /// Batch index.
    pub batch: usize,
    /// Records grouped in the task (`Ng`).
    pub ng: u32,
    /// Batch start (task availability) time.
    pub created: SimTime,
    /// Completion (quorum met) time.
    pub completed: SimTime,
    /// Winning worker (first answer).
    pub winner: WorkerId,
    /// The winner's assignment span.
    pub winner_span: SimDuration,
    /// Tasks the winner had completed in the pool before starting this one
    /// (the "worker age" axis of Figure 5).
    pub winner_age: u32,
    /// How many of the task's final (aggregated) labels match ground
    /// truth — the numerator of run-level label accuracy, which the
    /// adversity experiments report against the benign baseline.
    pub correct: u32,
}

impl TaskRecord {
    /// Task latency from availability to completion, seconds.
    pub fn latency_secs(&self) -> f64 {
        self.completed.since(self.created).as_secs_f64()
    }

    /// Latency per label, seconds (Figure 5's y-axis: `task latency / Ng`).
    pub fn latency_per_label_secs(&self) -> f64 {
        self.winner_span.as_secs_f64() / self.ng.max(1) as f64
    }
}

/// One assignment, as logged for Figure 13's Gantt view.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AssignmentRecord {
    /// Task index.
    pub task: u32,
    /// Batch index.
    pub batch: usize,
    /// Executing worker.
    pub worker: WorkerId,
    /// Start time.
    pub start: SimTime,
    /// End time (completion or termination).
    pub end: SimTime,
    /// True if terminated (blue in Figure 13), false if completed (red).
    pub terminated: bool,
}

/// Per-batch aggregates (Figures 6, 9).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchStats {
    /// Batch index.
    pub index: usize,
    /// Batch start time.
    pub start: SimTime,
    /// Batch end (all tasks complete).
    pub end: SimTime,
    /// Number of tasks in the batch.
    pub tasks: usize,
    /// Std of task completion latencies within the batch (Figure 9).
    pub task_latency_std: f64,
    /// Mean task completion latency within the batch.
    pub task_latency_mean: f64,
    /// Mean pool latency: average winning-assignment span of tasks
    /// completed this batch (Figure 6).
    pub mpl: f64,
    /// Workers evicted by maintenance at this batch boundary (Figure 7).
    pub evicted: usize,
}

impl BatchStats {
    /// Batch makespan in seconds.
    pub fn makespan_secs(&self) -> f64 {
        self.end.since(self.start).as_secs_f64()
    }
}

/// The full output of a labeling run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Per-task log.
    pub tasks: Vec<TaskRecord>,
    /// Per-assignment log.
    pub assignments: Vec<AssignmentRecord>,
    /// Per-batch aggregates.
    pub batches: Vec<BatchStats>,
    /// Final cost ledger.
    pub cost: CostLedger,
    /// Total workers ever recruited.
    pub workers_recruited: usize,
    /// Total workers evicted by maintenance.
    pub workers_evicted: u64,
    /// Workers who walked out mid-assignment (adversity churn); always 0
    /// on benign runs.
    pub workers_departed: u64,
    /// Reserve workers released by the pool idle timeout; always 0 unless
    /// `RunConfig::pool.idle_timeout` is set.
    pub reserve_expired: u64,
    /// Stale members lazily retired at checkout after a generation bump;
    /// always 0 unless `RunConfig::pool.generations` is on.
    pub stale_retired: u64,
    /// Run start (first batch dispatch).
    pub started: SimTime,
    /// Run end (last task completion).
    pub finished: SimTime,
    /// Observability report (metrics snapshot + flight-recorder tail);
    /// `None` unless `RunConfig::obs.enabled`.
    pub obs: Option<ObsReport>,
}

impl RunReport {
    /// Total labeling wall-clock, seconds, measured "from the moment the
    /// first task is sent to the pool" (§6.1).
    pub fn total_secs(&self) -> f64 {
        self.finished.since(self.started).as_secs_f64()
    }

    /// Labels produced (tasks × Ng).
    pub fn labels_produced(&self) -> u64 {
        self.tasks.iter().map(|t| t.ng as u64).sum()
    }

    /// Final labels matching ground truth.
    pub fn labels_correct(&self) -> u64 {
        self.tasks.iter().map(|t| t.correct as u64).sum()
    }

    /// Fraction of final labels matching ground truth (0 when no labels
    /// were produced). The adversity experiments report this against the
    /// benign baseline.
    pub fn accuracy(&self) -> f64 {
        let total = self.labels_produced();
        if total == 0 {
            0.0
        } else {
            self.labels_correct() as f64 / total as f64
        }
    }

    /// Labels per second over the whole run (§6.6's "labeling
    /// throughput").
    pub fn throughput(&self) -> f64 {
        let secs = self.total_secs();
        if secs > 0.0 {
            self.labels_produced() as f64 / secs
        } else {
            0.0
        }
    }

    /// Summary of per-task completion latencies, seconds.
    pub fn task_latency_summary(&self) -> Summary {
        Summary::of(&self.tasks.iter().map(|t| t.latency_secs()).collect::<Vec<_>>())
    }

    /// Summary of per-batch makespans, seconds.
    pub fn batch_makespan_summary(&self) -> Summary {
        Summary::of(&self.batches.iter().map(|b| b.makespan_secs()).collect::<Vec<_>>())
    }

    /// Mean of per-batch task-latency standard deviations (Figure 9's
    /// headline aggregation).
    pub fn mean_batch_std(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        self.batches.iter().map(|b| b.task_latency_std).sum::<f64>() / self.batches.len() as f64
    }

    /// Cumulative labels-over-time series (Figures 3 and 10): sorted
    /// `(seconds since run start, cumulative labels)`.
    pub fn labels_over_time(&self) -> Vec<(f64, u64)> {
        let mut events: Vec<(f64, u64)> = self
            .tasks
            .iter()
            .map(|t| (t.completed.since(self.started).as_secs_f64(), t.ng as u64))
            .collect();
        events.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut cum = 0;
        events
            .into_iter()
            .map(|(t, ng)| {
                cum += ng;
                (t, cum)
            })
            .collect()
    }

    /// Fraction of assignments that were terminated.
    pub fn termination_rate(&self) -> f64 {
        if self.assignments.is_empty() {
            return 0.0;
        }
        self.assignments.iter().filter(|a| a.terminated).count() as f64
            / self.assignments.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn record(task: u32, batch: usize, created: u64, completed: u64, ng: u32) -> TaskRecord {
        TaskRecord {
            task,
            batch,
            ng,
            created: t(created),
            completed: t(completed),
            winner: WorkerId(0),
            winner_span: SimDuration::from_secs(completed - created),
            winner_age: 0,
            correct: ng.saturating_sub(1),
        }
    }

    fn report() -> RunReport {
        RunReport {
            tasks: vec![record(0, 0, 0, 10, 5), record(1, 0, 0, 20, 5), record(2, 1, 20, 25, 5)],
            assignments: vec![
                AssignmentRecord {
                    task: 0,
                    batch: 0,
                    worker: WorkerId(0),
                    start: t(0),
                    end: t(10),
                    terminated: false,
                },
                AssignmentRecord {
                    task: 0,
                    batch: 0,
                    worker: WorkerId(1),
                    start: t(0),
                    end: t(11),
                    terminated: true,
                },
            ],
            batches: vec![
                BatchStats {
                    index: 0,
                    start: t(0),
                    end: t(20),
                    tasks: 2,
                    task_latency_std: 5.0,
                    task_latency_mean: 15.0,
                    mpl: 15.0,
                    evicted: 1,
                },
                BatchStats {
                    index: 1,
                    start: t(20),
                    end: t(25),
                    tasks: 1,
                    task_latency_std: 1.0,
                    task_latency_mean: 5.0,
                    mpl: 5.0,
                    evicted: 0,
                },
            ],
            cost: CostLedger::new(),
            workers_recruited: 4,
            workers_evicted: 1,
            workers_departed: 0,
            reserve_expired: 0,
            stale_retired: 0,
            started: t(0),
            finished: t(25),
            obs: None,
        }
    }

    #[test]
    fn totals_and_throughput() {
        let r = report();
        assert_eq!(r.total_secs(), 25.0);
        assert_eq!(r.labels_produced(), 15);
        assert!((r.throughput() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn latency_summaries() {
        let r = report();
        let s = r.task_latency_summary();
        assert_eq!(s.n, 3);
        assert!((s.mean - (10.0 + 20.0 + 5.0) / 3.0).abs() < 1e-12);
        let b = r.batch_makespan_summary();
        assert_eq!(b.n, 2);
        assert_eq!(b.max, 20.0);
        assert!((r.mean_batch_std() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn labels_over_time_monotone() {
        let r = report();
        let series = r.labels_over_time();
        assert_eq!(series.len(), 3);
        assert!(series.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(series.last().unwrap().1, 15);
    }

    #[test]
    fn termination_rate() {
        let r = report();
        assert!((r.termination_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accuracy_is_correct_over_produced() {
        let r = report();
        // Each fixture task has ng = 5 and correct = 4.
        assert_eq!(r.labels_correct(), 12);
        assert!((r.accuracy() - 12.0 / 15.0).abs() < 1e-12);
        let empty = RunReport { tasks: vec![], ..r };
        assert_eq!(empty.accuracy(), 0.0);
    }

    #[test]
    fn per_label_latency_uses_winner_span() {
        let rec = record(0, 0, 0, 10, 5);
        assert!((rec.latency_per_label_secs() - 2.0).abs() < 1e-12);
    }
}
