//! LifeGuard: straggler-mitigation task routing (§4.1).
//!
//! When straggler mitigation is on and no unassigned tasks remain in the
//! batch, an idle worker is immediately routed to some *active* task,
//! duplicating it. The paper simulates four routing policies — "routing to
//! the longest-running active task, to a random task, to the task with
//! fewest active workers, or to the task known by an oracle to complete
//! the slowest" — and finds, to the authors' surprise, that the choice
//! doesn't matter ("random performed as fast as the oracle solution").
//! All four are implemented so the `routing` experiment and ablation bench
//! can reproduce that result.

use crate::task::{StateView, TaskId};
use clamshell_sim::rng::Rng;
use clamshell_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Which active task an idle worker duplicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Uniformly random eligible active task (the paper's default — as
    /// good as Oracle).
    Random,
    /// The active task whose earliest live assignment started first.
    LongestRunning,
    /// The active task with the fewest live assignments.
    FewestWorkers,
    /// The active task whose best (earliest) planned completion among
    /// live assignments is *latest* — requires knowing true completion
    /// times, which only the simulator can provide.
    Oracle,
}

/// Choose an active task for an idle worker under `policy`.
///
/// `eligible` must already be filtered for: task active (not complete),
/// concurrency cap not reached, and the worker not already on it. The
/// [`StateView`] resolves task/assignment ids whether or not the runner
/// has retired earlier state (streaming mode). Returns `None` when
/// `eligible` is empty.
pub fn route(
    policy: RoutingPolicy,
    eligible: &[TaskId],
    view: &StateView<'_>,
    rng: &mut Rng,
) -> Option<TaskId> {
    if eligible.is_empty() {
        return None;
    }
    match policy {
        RoutingPolicy::Random => eligible.get(rng.index(eligible.len())).copied(),
        RoutingPolicy::LongestRunning => eligible.iter().copied().min_by_key(|&t| {
            view.task(t)
                .active
                .iter()
                .map(|&a| view.assignment(a).start)
                .min()
                .unwrap_or(SimTime::MAX)
        }),
        RoutingPolicy::FewestWorkers => {
            eligible.iter().copied().min_by_key(|&t| (view.task(t).active.len(), t))
        }
        RoutingPolicy::Oracle => eligible.iter().copied().max_by_key(|&t| {
            (
                view.task(t)
                    .active
                    .iter()
                    .map(|&a| view.assignment(a).planned_end)
                    .min()
                    .unwrap_or(SimTime::ZERO),
                std::cmp::Reverse(t),
            )
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Assignment, AssignmentId, TaskSpec, TaskState};
    use clamshell_crowd::WorkerId;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Two active tasks: task 0 started at 0s, finishes at 100s (one
    /// worker); task 1 started at 5s, finishes at 20s (two workers).
    fn fixture() -> (Vec<TaskState>, Vec<Assignment>) {
        let mk_assign = |id: u32, task: u32, start: u64, end: u64| Assignment {
            id: AssignmentId(id),
            task: TaskId(task),
            worker: WorkerId(id),
            start: t(start),
            planned_end: t(end),
            terminated: None,
            completed: None,
        };
        let assignments =
            vec![mk_assign(0, 0, 0, 100), mk_assign(1, 1, 5, 20), mk_assign(2, 1, 6, 50)];
        let mut t0 = TaskState::new(TaskSpec::new(vec![0]), 0, t(0));
        t0.active.push(AssignmentId(0));
        let mut t1 = TaskState::new(TaskSpec::new(vec![0]), 0, t(0));
        t1.active.push(AssignmentId(1));
        t1.active.push(AssignmentId(2));
        (vec![t0, t1], assignments)
    }

    #[test]
    fn empty_eligible_routes_nowhere() {
        let (tasks, assignments) = fixture();
        let view = StateView::full(&tasks, &assignments);
        let mut rng = Rng::new(1);
        assert_eq!(route(RoutingPolicy::Random, &[], &view, &mut rng), None);
    }

    #[test]
    fn longest_running_picks_earliest_start() {
        let (tasks, assignments) = fixture();
        let view = StateView::full(&tasks, &assignments);
        let mut rng = Rng::new(1);
        let pick = route(RoutingPolicy::LongestRunning, &[TaskId(0), TaskId(1)], &view, &mut rng);
        assert_eq!(pick, Some(TaskId(0))); // started at 0s vs 5s
    }

    #[test]
    fn fewest_workers_picks_thin_task() {
        let (tasks, assignments) = fixture();
        let view = StateView::full(&tasks, &assignments);
        let mut rng = Rng::new(1);
        let pick = route(RoutingPolicy::FewestWorkers, &[TaskId(0), TaskId(1)], &view, &mut rng);
        assert_eq!(pick, Some(TaskId(0))); // 1 live assignment vs 2
    }

    #[test]
    fn oracle_picks_latest_finishing() {
        let (tasks, assignments) = fixture();
        let view = StateView::full(&tasks, &assignments);
        let mut rng = Rng::new(1);
        let pick = route(RoutingPolicy::Oracle, &[TaskId(0), TaskId(1)], &view, &mut rng);
        // Task 0's earliest completion is 100s; task 1's is 20s.
        assert_eq!(pick, Some(TaskId(0)));
    }

    #[test]
    fn base_offset_view_routes_like_the_full_view() {
        // Same fixture, but presented as the live tail of a longer run:
        // every id shifted up by the bases the retired prefix left behind.
        let (tasks, mut assignments) = fixture();
        let (tb, ab) = (10u32, 20u32);
        let mut shifted_tasks = tasks.clone();
        for t in &mut shifted_tasks {
            for a in &mut t.active {
                *a = AssignmentId(a.0 + ab);
            }
        }
        for a in &mut assignments {
            a.id = AssignmentId(a.id.0 + ab);
            a.task = TaskId(a.task.0 + tb);
        }
        let view = StateView {
            tasks: &shifted_tasks,
            assignments: &assignments,
            task_base: tb,
            assignment_base: ab,
        };
        let eligible = [TaskId(tb), TaskId(tb + 1)];
        for policy in
            [RoutingPolicy::LongestRunning, RoutingPolicy::FewestWorkers, RoutingPolicy::Oracle]
        {
            let mut rng = Rng::new(1);
            let pick = route(policy, &eligible, &view, &mut rng);
            assert_eq!(pick, Some(TaskId(tb)), "{policy:?} must resolve offset ids");
        }
    }

    #[test]
    fn random_covers_all_eligible() {
        let (tasks, assignments) = fixture();
        let view = StateView::full(&tasks, &assignments);
        let mut rng = Rng::new(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            if let Some(p) = route(RoutingPolicy::Random, &[TaskId(0), TaskId(1)], &view, &mut rng)
            {
                seen.insert(p);
            }
        }
        assert_eq!(seen.len(), 2);
    }
}
