//! The Batcher of Figure 1: turns a *stream* of labeling work into
//! batches for the LifeGuard.
//!
//! "The user submits a set or stream of labeling tasks to the Batcher"
//! (§3). For set-based workloads, [`crate::runner::run_batched`] suffices;
//! this module serves streaming clients (the live-dashboard scenario of
//! Example 1): tasks arrive over time, and the Batcher releases a batch
//! when either (a) `batch_size` tasks are pending, or (b) the oldest
//! pending task has waited `max_delay` — the classic size-or-timeout
//! batching rule, keeping both throughput and tail staleness bounded.

use crate::metrics::RunReport;
use crate::runner::Runner;
use crate::task::TaskSpec;
use clamshell_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Batch-formation policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatcherConfig {
    /// Release a batch as soon as this many tasks are pending.
    pub batch_size: usize,
    /// Release a partial batch once the oldest pending task has waited
    /// this long.
    pub max_delay: SimDuration,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig { batch_size: 15, max_delay: SimDuration::from_secs(30) }
    }
}

/// A task waiting for batch formation, stamped with its arrival time.
#[derive(Debug, Clone)]
struct Pending {
    spec: TaskSpec,
    arrived: SimTime,
}

/// Streaming batch former driving a [`Runner`].
pub struct Batcher {
    config: BatcherConfig,
    runner: Runner,
    pending: VecDeque<Pending>,
    /// (arrival → batch-dispatch) waits of every dispatched task.
    queueing_waits: Vec<SimDuration>,
}

impl Batcher {
    /// Wrap a warmed-up runner.
    pub fn new(config: BatcherConfig, runner: Runner) -> Self {
        assert!(config.batch_size > 0, "batch_size must be positive");
        Batcher { config, runner, pending: VecDeque::new(), queueing_waits: Vec::new() }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.runner.now()
    }

    /// Tasks currently waiting for batch formation.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The underlying runner (task states, pool, …).
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// Submit one task at the current simulated time. Runs a batch
    /// immediately if the size trigger fires; returns the batch index if
    /// one was dispatched.
    pub fn submit(&mut self, spec: TaskSpec) -> Option<usize> {
        self.pending.push_back(Pending { spec, arrived: self.runner.now() });
        if self.pending.len() >= self.config.batch_size {
            return Some(self.flush());
        }
        None
    }

    /// Let simulated time pass with no new arrivals; dispatches a partial
    /// batch if the timeout trigger fires during the window. Returns the
    /// batch index if one was dispatched.
    pub fn idle(&mut self, dur: SimDuration) -> Option<usize> {
        let deadline = self.pending.front().map(|p| p.arrived + self.config.max_delay);
        let target = self.runner.now() + dur;
        match deadline {
            Some(d) if d <= target => {
                // Advance to the deadline, then flush the partial batch.
                let wait = d.since(self.runner.now());
                if wait > SimDuration::ZERO {
                    self.runner.advance(wait);
                }
                let idx = self.flush();
                let rest = target.since(self.runner.now());
                if rest > SimDuration::ZERO {
                    self.runner.advance(rest);
                }
                Some(idx)
            }
            _ => {
                self.runner.advance(dur);
                None
            }
        }
    }

    /// Force-dispatch everything pending. Panics if nothing is pending.
    pub fn flush(&mut self) -> usize {
        assert!(!self.pending.is_empty(), "flush with no pending tasks");
        let now = self.runner.now();
        let batch: Vec<TaskSpec> = self
            .pending
            .drain(..)
            .map(|p| {
                self.queueing_waits.push(now.since(p.arrived));
                p.spec
            })
            .collect();
        self.runner.run_batch(batch)
    }

    /// Mean (arrival → dispatch) queueing wait so far, seconds.
    pub fn mean_queueing_wait_secs(&self) -> f64 {
        if self.queueing_waits.is_empty() {
            return 0.0;
        }
        self.queueing_waits.iter().map(|d| d.as_secs_f64()).sum::<f64>()
            / self.queueing_waits.len() as f64
    }

    /// Finish: flush leftovers and return the run report.
    pub fn finish(mut self) -> RunReport {
        if !self.pending.is_empty() {
            self.flush();
        }
        self.runner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunConfig;
    use clamshell_trace::Population;

    fn warmed_runner(seed: u64, pool: usize) -> Runner {
        let cfg = RunConfig { pool_size: pool, ng: 1, seed, ..Default::default() }.with_straggler();
        let mut r = Runner::new(cfg, Population::mturk_live());
        r.warm_up();
        r
    }

    fn spec() -> TaskSpec {
        TaskSpec::new(vec![0])
    }

    #[test]
    fn size_trigger_dispatches() {
        let mut b = Batcher::new(
            BatcherConfig { batch_size: 3, max_delay: SimDuration::from_secs(1000) },
            warmed_runner(1, 4),
        );
        assert_eq!(b.submit(spec()), None);
        assert_eq!(b.submit(spec()), None);
        let idx = b.submit(spec());
        assert_eq!(idx, Some(0));
        assert_eq!(b.pending(), 0);
        let report = b.finish();
        assert_eq!(report.tasks.len(), 3);
    }

    #[test]
    fn timeout_trigger_dispatches_partial_batch() {
        let mut b = Batcher::new(
            BatcherConfig { batch_size: 100, max_delay: SimDuration::from_secs(10) },
            warmed_runner(2, 4),
        );
        b.submit(spec());
        b.submit(spec());
        // Ten simulated seconds pass with no arrivals: the partial batch
        // of 2 must go out.
        let idx = b.idle(SimDuration::from_secs(30));
        assert_eq!(idx, Some(0));
        let report = b.finish();
        assert_eq!(report.tasks.len(), 2);
        assert_eq!(report.batches.len(), 1);
    }

    #[test]
    fn idle_without_pending_just_passes_time() {
        let mut b = Batcher::new(BatcherConfig::default(), warmed_runner(3, 4));
        let before = b.now();
        assert_eq!(b.idle(SimDuration::from_secs(25)), None);
        assert_eq!(b.now().since(before), SimDuration::from_secs(25));
    }

    #[test]
    fn queueing_wait_accounts_arrival_to_dispatch() {
        let mut b = Batcher::new(
            BatcherConfig { batch_size: 10, max_delay: SimDuration::from_secs(12) },
            warmed_runner(4, 4),
        );
        b.submit(spec());
        b.idle(SimDuration::from_secs(40)); // flushes at the 12s deadline
        assert!((b.mean_queueing_wait_secs() - 12.0).abs() < 0.5);
    }

    #[test]
    fn finish_flushes_leftovers() {
        let mut b = Batcher::new(
            BatcherConfig { batch_size: 50, max_delay: SimDuration::from_secs(1000) },
            warmed_runner(5, 4),
        );
        b.submit(spec());
        b.submit(spec());
        let report = b.finish();
        assert_eq!(report.tasks.len(), 2);
    }

    #[test]
    #[should_panic]
    fn flush_empty_panics() {
        let mut b = Batcher::new(BatcherConfig::default(), warmed_runner(6, 4));
        b.flush();
    }
}
