//! Adversity: composable fault injection for a labeling run.
//!
//! The paper stress-tests CLAMShell only under benign crowd behaviour.
//! [`AdversityConfig`] layers the failure regimes that the related
//! crowdsourcing literature shows actually break low-latency labeling
//! onto a run — each fault independently toggleable, and all of them
//! composable:
//!
//! | Fault | What it perturbs | Where it lives |
//! |-------|------------------|----------------|
//! | [`ChurnFault`] | Workers walk out mid-assignment and leave the pool | runner (`Event::Walkout`) |
//! | [`OutageFault`] | Transient platform blackouts defer submissions & arrivals | runner + [`clamshell_sim::faults::OutageSchedule`] |
//! | [`BurstFault`] | Bursty task arrivals reshape batch sizes | [`run_batched`](crate::runner::run_batched) |
//! | [`ArchetypeMix`] | Spammer / adversarial / sleepy worker overlays | platform ([`clamshell_crowd::faults`]) |
//! | [`LatencyInflation`] | Heavy-tailed per-assignment slowdowns | platform ([`clamshell_crowd::faults`]) |
//!
//! Determinism: every fault draws exclusively from a dedicated stream
//! derived with [`clamshell_sim::faults::fault_stream`], extending the
//! determinism contract in ARCHITECTURE.md — enabling a fault never
//! perturbs the draws of any benign stream or of any other fault, and a
//! run with `adversity: None` is bit-identical to a pre-adversity run.
//! The named scenario catalog over these knobs lives in the
//! `clamshell-scenarios` crate.

use clamshell_crowd::LatencyInflation;
use clamshell_trace::ArchetypeMix;
use serde::{Deserialize, Serialize};

/// Mid-assignment worker churn: with probability `walkout_prob`, a
/// dispatched assignment is silently abandoned partway through — the
/// worker walks out of the retainer pool (no answer, no submission) and
/// the runner must re-recruit and re-cover the task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnFault {
    /// Probability that any given assignment ends in a walkout.
    pub walkout_prob: f64,
    /// Walkouts happen after a uniform fraction of the planned duration
    /// in `[min_frac, max_frac]`.
    pub min_frac: f64,
    /// See `min_frac`.
    pub max_frac: f64,
}

impl Default for ChurnFault {
    fn default() -> Self {
        ChurnFault { walkout_prob: 0.15, min_frac: 0.2, max_frac: 0.9 }
    }
}

impl ChurnFault {
    fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.walkout_prob), "walkout_prob in [0,1]");
        assert!(
            0.0 < self.min_frac && self.min_frac <= self.max_frac && self.max_frac <= 1.0,
            "need 0 < min_frac <= max_frac <= 1"
        );
    }
}

/// Transient platform outages: alternating up-time/blackout windows
/// (exponential around the configured means). During a blackout the
/// platform accepts no submissions and admits no recruits — affected
/// events are deferred to the recovery instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageFault {
    /// Mean seconds of up-time between outages.
    pub mean_uptime_secs: f64,
    /// Mean seconds an outage lasts.
    pub mean_outage_secs: f64,
}

impl Default for OutageFault {
    fn default() -> Self {
        OutageFault { mean_uptime_secs: 120.0, mean_outage_secs: 45.0 }
    }
}

impl OutageFault {
    fn validate(&self) {
        assert!(self.mean_uptime_secs > 0.0, "mean up-time must be positive");
        assert!(self.mean_outage_secs > 0.0, "mean outage must be positive");
    }
}

/// Bursty task arrivals: instead of the caller's fixed batch size,
/// [`run_batched`](crate::runner::run_batched) splits the task stream
/// into bursts whose sizes are drawn uniformly from
/// `[min_batch, max_batch]` on a dedicated stream — alternating
/// trickles and floods, the arrival pattern interactive front-ends
/// actually produce.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstFault {
    /// Smallest burst size.
    pub min_batch: usize,
    /// Largest burst size.
    pub max_batch: usize,
}

impl Default for BurstFault {
    fn default() -> Self {
        BurstFault { min_batch: 1, max_batch: 12 }
    }
}

impl BurstFault {
    fn validate(&self) {
        assert!(
            0 < self.min_batch && self.min_batch <= self.max_batch,
            "need 0 < min_batch <= max_batch"
        );
    }
}

/// The full adversity layer of a run: any subset of the faults, all
/// deterministic, all composable. See the module docs for the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AdversityConfig {
    /// Spammer / adversarial / sleepy worker overlays (platform level).
    pub archetypes: Option<ArchetypeMix>,
    /// Heavy-tailed per-assignment latency inflation (platform level).
    pub inflation: Option<LatencyInflation>,
    /// Mid-assignment walkouts and pool re-recruitment (runner level).
    pub churn: Option<ChurnFault>,
    /// Transient platform blackouts (runner level).
    pub outage: Option<OutageFault>,
    /// Bursty task arrivals (batching level).
    pub bursts: Option<BurstFault>,
}

impl AdversityConfig {
    /// No faults at all (identical to `adversity: None`).
    pub const NONE: AdversityConfig = AdversityConfig {
        archetypes: None,
        inflation: None,
        churn: None,
        outage: None,
        bursts: None,
    };

    /// Validate every configured fault; called by
    /// [`RunConfig::validate`](crate::RunConfig::validate).
    pub fn validate(&self) {
        if let Some(m) = &self.archetypes {
            m.validate();
        }
        if let Some(i) = &self.inflation {
            i.validate();
        }
        if let Some(c) = &self.churn {
            c.validate();
        }
        if let Some(o) = &self.outage {
            o.validate();
        }
        if let Some(b) = &self.bursts {
            b.validate();
        }
    }

    /// The platform-level slice of this configuration.
    pub fn crowd_faults(&self) -> clamshell_crowd::CrowdFaults {
        clamshell_crowd::CrowdFaults { archetypes: self.archetypes, inflation: self.inflation }
    }
}

/// Stream labels for the runner-level fault RNGs (platform-level labels
/// live in `clamshell-crowd`).
pub(crate) mod streams {
    /// Mid-assignment walkout decisions.
    pub const CHURN: u64 = 0xC0DE_0001;
    /// Burst size draws.
    pub const BURSTS: u64 = 0xC0DE_0002;
    /// Reserve idle-timeout jitter (pool lifecycle).
    pub const POOL_IDLE: u64 = 0xC0DE_0003;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_compose() {
        AdversityConfig::NONE.validate();
        AdversityConfig {
            archetypes: Some(ArchetypeMix::spammers(0.3)),
            inflation: Some(LatencyInflation { prob: 0.1, mult_median: 8.0, mult_sigma: 0.8 }),
            churn: Some(ChurnFault::default()),
            outage: Some(OutageFault::default()),
            bursts: Some(BurstFault::default()),
        }
        .validate();
    }

    #[test]
    fn crowd_slice_carries_platform_faults_only() {
        let adv = AdversityConfig {
            archetypes: Some(ArchetypeMix::sleepy(0.2)),
            churn: Some(ChurnFault::default()),
            ..AdversityConfig::NONE
        };
        let crowd = adv.crowd_faults();
        assert!(crowd.archetypes.is_some());
        assert!(crowd.inflation.is_none());
    }

    #[test]
    #[should_panic]
    fn zero_min_frac_rejected() {
        ChurnFault { walkout_prob: 0.1, min_frac: 0.0, max_frac: 0.5 }.validate();
    }

    #[test]
    #[should_panic]
    fn inverted_burst_bounds_rejected() {
        BurstFault { min_batch: 9, max_batch: 3 }.validate();
    }
}
