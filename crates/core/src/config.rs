//! Experimental configuration — the knobs of Table 3.
//!
//! | Param | Paper description                               | Here |
//! |-------|--------------------------------------------------|------|
//! | `PMℓ` | Latency threshold for pool maintenance           | [`MaintenanceConfig::threshold_per_label_secs`] |
//! | `SM`  | Straggler mitigation on/off                      | [`RunConfig::straggler`] (`Option`) |
//! | `Np`  | Number of workers in the retainer pool           | [`RunConfig::pool_size`] |
//! | `Ng`  | Task complexity: records grouped per HIT         | [`RunConfig::ng`] |
//! | `R`   | Pool-to-batch ratio                              | derived: callers size batches as `Np / R` |
//! | `Alg` | AL / PL / HL / NL                                | [`crate::learning::Strategy`] |

use crate::lifeguard::RoutingPolicy;
use clamshell_crowd::PlatformConfig;
use serde::{Deserialize, Serialize};

pub use clamshell_crowd::{CheckoutStrategy, PoolConfig};
pub use clamshell_obs::ObsConfig;

/// How straggler mitigation interacts with redundancy-based quality
/// control (§4.1 "Working with Quality Control").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QcMode {
    /// CLAMShell's approach: a task needing `v` more answers may hold at
    /// most `v + 1` concurrent assignments — mitigation adds "only single
    /// available workers to the task at a time".
    Decoupled,
    /// The naive combination the paper warns about: every needed vote is
    /// duplicated, so a task needing `v` answers holds up to `2·v`
    /// assignments ("would create 6 assignments" for 3 votes).
    Naive,
}

/// Straggler-mitigation settings (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StragglerConfig {
    /// Which active task an idle worker is routed to. The paper finds
    /// `Random` performs as well as `Oracle`; we default to `Random` and
    /// reproduce that finding in the `routing` experiment.
    pub routing: RoutingPolicy,
    /// Interaction with quality control.
    pub qc_mode: QcMode,
    /// Cap on *extra* (mitigation) assignments per task beyond the vote
    /// quorum when `quorum == 1`. `None` = unbounded: every idle worker
    /// piles onto the remaining active tasks, which is the behaviour the
    /// paper's high-`R` experiments exhibit.
    pub max_extra: Option<usize>,
}

impl Default for StragglerConfig {
    fn default() -> Self {
        StragglerConfig {
            routing: RoutingPolicy::Random,
            qc_mode: QcMode::Decoupled,
            max_extra: None,
        }
    }
}

/// What pool maintenance optimizes for. §4.2 "Extensions": maintenance
/// "can be easily extended to optimize for other criteria … we could
/// maintain a pool using quality (estimated using, e.g., inter-worker
/// agreement) to converge to a high-quality pool, \[or\] use a weighted
/// average to trade off quality and speed".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MaintenanceObjective {
    /// Evict on latency only (the paper's main configuration).
    Speed,
    /// Evict on answer quality only: workers whose agreement with the
    /// voted consensus is significantly below `min_agreement` are
    /// replaced. Requires a vote quorum ≥ 2 to generate agreement signal.
    Quality {
        /// Minimum acceptable agreement-with-consensus rate.
        min_agreement: f64,
    },
    /// Evict on either signal (speed threshold *or* quality floor).
    SpeedAndQuality {
        /// Minimum acceptable agreement-with-consensus rate.
        min_agreement: f64,
    },
}

/// Pool-maintenance settings (§4.2–§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceConfig {
    /// `PMℓ`: per-label latency threshold in seconds; workers
    /// significantly above it are eviction candidates. The paper's
    /// live-experiment optimum is 8 s (Figure 8).
    pub threshold_per_label_secs: f64,
    /// Significance level of the one-sided eviction test.
    pub alpha: f64,
    /// Minimum tasks started before a worker can be flagged (evidence
    /// floor; prevents evicting on a single unlucky draw).
    pub min_tasks: u64,
    /// Background-recruitment reserve target: how many replacement
    /// workers to keep warm ("continuously recruits and trains workers in
    /// the background in order to maintain a reserve", §4.2).
    pub reserve_target: usize,
    /// Use TermEst to correct latency estimates for terminated tasks when
    /// straggler mitigation is also active (§4.3). Without it, worker
    /// replacement collapses (Figure 14).
    pub use_termest: bool,
    /// TermEst's `α` smoothing term.
    pub termest_alpha: f64,
    /// What the maintainer optimizes (speed, quality, or both).
    pub objective: MaintenanceObjective,
}

impl MaintenanceConfig {
    /// The paper's live-experiment configuration: `PM8`, TermEst on.
    pub fn pm8() -> Self {
        MaintenanceConfig {
            threshold_per_label_secs: 8.0,
            alpha: 0.05,
            min_tasks: 3,
            reserve_target: 3,
            use_termest: true,
            termest_alpha: 1.0,
            objective: MaintenanceObjective::Speed,
        }
    }

    /// Same but with a custom threshold (Figures 7–8 sweep 2–32 s).
    pub fn with_threshold(threshold_per_label_secs: f64) -> Self {
        MaintenanceConfig { threshold_per_label_secs, ..Self::pm8() }
    }
}

/// Full configuration of a labeling run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// `Np`: retainer-pool size.
    pub pool_size: usize,
    /// `Ng`: records grouped into one HIT (Simple=1, Medium=5,
    /// Complex=10).
    pub ng: u32,
    /// Number of classes in the labeling task.
    pub n_classes: u32,
    /// Quality-control quorum: answers required per task (1 = no
    /// redundancy).
    pub quorum: u32,
    /// Straggler mitigation; `None` disables (NoSM).
    pub straggler: Option<StragglerConfig>,
    /// Pool maintenance; `None` disables (PM∞).
    pub maintenance: Option<MaintenanceConfig>,
    /// Retainer-pool lifecycle knobs (replenishment floor, checkout
    /// strategy, reserve idle timeout, blackout generations). The default
    /// is inert: runs are byte-identical to the pre-lifecycle pool.
    pub pool: PoolConfig,
    /// Whether pool members abandon when idle past their patience.
    pub churn: bool,
    /// Platform mechanism parameters (pay rates, overheads).
    pub platform: PlatformConfig,
    /// Adversity layer: deterministic fault injection (worker churn,
    /// archetype overlays, outages, bursty arrivals, latency inflation).
    /// `None` is the benign run — bit-identical to a run predating the
    /// adversity machinery.
    pub adversity: Option<crate::adversity::AdversityConfig>,
    /// Observability (metrics registry + flight recorder). Disabled by
    /// default; an enabled run records events and metrics but draws zero
    /// extra RNG values, so the simulation itself is unperturbed.
    pub obs: ObsConfig,
    /// Master RNG seed.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            pool_size: 15,
            ng: 5,
            n_classes: 2,
            quorum: 1,
            straggler: None,
            maintenance: None,
            pool: PoolConfig::default(),
            churn: true,
            platform: PlatformConfig::default(),
            adversity: None,
            obs: ObsConfig::default(),
            seed: 0,
        }
    }
}

impl RunConfig {
    /// Validate invariants; called by the runner at construction.
    pub fn validate(&self) {
        assert!(self.pool_size > 0, "pool_size must be positive");
        assert!(self.ng >= 1, "ng must be >= 1");
        assert!(self.n_classes >= 2, "n_classes must be >= 2");
        assert!(self.quorum >= 1, "quorum must be >= 1");
        if let Some(m) = &self.maintenance {
            assert!(m.threshold_per_label_secs > 0.0, "PMl must be positive");
            assert!((0.0..1.0).contains(&m.alpha), "alpha in (0,1)");
            assert!(m.termest_alpha >= 0.0, "termest alpha >= 0");
        }
        if let Some(min) = self.pool.min_size {
            assert!((1..=self.pool_size).contains(&min), "pool.min_size must be in 1..=pool_size");
        }
        if let Some(t) = self.pool.idle_timeout {
            assert!(t > clamshell_sim::time::SimDuration::ZERO, "pool.idle_timeout must be > 0");
        }
        if let Some(a) = &self.adversity {
            a.validate();
        }
        self.obs.validate();
    }

    /// Convenience: layer an adversity configuration on.
    pub fn with_adversity(mut self, adversity: crate::adversity::AdversityConfig) -> Self {
        self.adversity = Some(adversity);
        self
    }

    /// Batch size for a given pool-to-batch ratio `R = Np / Nbatch`
    /// (Table 3), rounded and floored at 1.
    pub fn batch_size_for_ratio(&self, r: f64) -> usize {
        assert!(r > 0.0, "ratio must be positive");
        ((self.pool_size as f64 / r).round() as usize).max(1)
    }

    /// Convenience: enable straggler mitigation with defaults.
    pub fn with_straggler(mut self) -> Self {
        self.straggler = Some(StragglerConfig::default());
        self
    }

    /// Convenience: enable PM8 pool maintenance.
    pub fn with_maintenance(mut self) -> Self {
        self.maintenance = Some(MaintenanceConfig::pm8());
        self
    }

    /// Convenience: set the pool lifecycle knobs.
    pub fn with_pool(mut self, pool: PoolConfig) -> Self {
        self.pool = pool;
        self
    }

    /// Convenience: enable observability with the default ring capacity.
    pub fn with_obs(mut self) -> Self {
        self.obs = ObsConfig::on();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        RunConfig::default().validate();
        RunConfig::default().with_straggler().with_maintenance().validate();
    }

    #[test]
    fn ratio_to_batch_size() {
        let cfg = RunConfig { pool_size: 15, ..Default::default() };
        assert_eq!(cfg.batch_size_for_ratio(1.0), 15);
        assert_eq!(cfg.batch_size_for_ratio(3.0), 5);
        assert_eq!(cfg.batch_size_for_ratio(0.75), 20);
        assert_eq!(cfg.batch_size_for_ratio(100.0), 1);
    }

    #[test]
    #[should_panic]
    fn zero_pool_rejected() {
        RunConfig { pool_size: 0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic]
    fn bad_threshold_rejected() {
        RunConfig {
            maintenance: Some(MaintenanceConfig::with_threshold(0.0)),
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn pm8_matches_paper() {
        let m = MaintenanceConfig::pm8();
        assert_eq!(m.threshold_per_label_secs, 8.0);
        assert!(m.use_termest);
    }

    #[test]
    fn pool_lifecycle_knobs_validate() {
        RunConfig {
            pool_size: 8,
            pool: PoolConfig {
                min_size: Some(4),
                strategy: CheckoutStrategy::Lifo,
                idle_timeout: Some(clamshell_sim::time::SimDuration::from_secs(60)),
                generations: true,
            },
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic]
    fn pool_min_size_above_pool_size_rejected() {
        RunConfig {
            pool_size: 4,
            pool: PoolConfig { min_size: Some(5), ..Default::default() },
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic]
    fn zero_idle_timeout_rejected() {
        RunConfig {
            pool: PoolConfig {
                idle_timeout: Some(clamshell_sim::time::SimDuration::ZERO),
                ..Default::default()
            },
            ..Default::default()
        }
        .validate();
    }
}
