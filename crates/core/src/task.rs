//! Tasks, assignments, and their lifecycles.
//!
//! Terminology from §4.1: a *task* is "either active, complete, or
//! unassigned"; an *assignment* is one worker's attempt at one task.
//! Straggler mitigation creates multiple concurrent assignments per task;
//! the first completed assignment(s) win and the rest are terminated.

use clamshell_crowd::WorkerId;
use clamshell_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Task identifier (index into the runner's task table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

/// Assignment identifier (index into the runner's assignment table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AssignmentId(pub u32);

/// The immutable description of a labeling task: the ground-truth classes
/// of the `Ng` records grouped into it. (Ground truth exists only inside
/// the simulator — workers sample noisy answers from it.)
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// True class of each record in the task.
    pub truths: Vec<u32>,
    /// Optional dataset row backing each record (used by the learning
    /// loop to map crowd answers back to points).
    pub rows: Vec<usize>,
}

impl TaskSpec {
    /// A task with the given record truths and no dataset backing.
    pub fn new(truths: Vec<u32>) -> Self {
        assert!(!truths.is_empty(), "task must contain records");
        TaskSpec { rows: Vec::new(), truths }
    }

    /// A task backed by dataset rows.
    pub fn for_rows(rows: Vec<usize>, truths: Vec<u32>) -> Self {
        assert_eq!(rows.len(), truths.len());
        assert!(!truths.is_empty(), "task must contain records");
        TaskSpec { rows, truths }
    }

    /// Number of records (`Ng`).
    pub fn ng(&self) -> u32 {
        self.truths.len() as u32
    }
}

/// A contiguous span of labels inside the runner's shared label arena.
///
/// Response and final-label vectors used to be one heap allocation per
/// completed assignment (and one more per completed task) — the last
/// per-assignment allocations in the hot loop. They now live
/// back-to-back in a single run-wide arena
/// ([`Runner::label_arena`](crate::runner::Runner::labels)), and task
/// state stores only this `(start, len)` handle. Resolve a span with
/// [`LabelSpan::slice`] against the owning runner's arena; spans are
/// only meaningful against the arena they were created in, and die with
/// their tasks when the runner retires completed state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelSpan {
    /// Arena offset of the first label.
    pub start: u32,
    /// Number of labels in the span.
    pub len: u32,
}

impl LabelSpan {
    /// The empty span (no labels).
    pub fn empty() -> Self {
        LabelSpan { start: 0, len: 0 }
    }

    /// Resolve the span against its owning arena.
    pub fn slice<'a>(&self, arena: &'a [u32]) -> &'a [u32] {
        &arena[self.start as usize..(self.start + self.len) as usize]
    }
}

/// One completed answer for a task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskResponse {
    /// Who answered.
    pub worker: WorkerId,
    /// Labels for each record of the task (a span into the runner's
    /// label arena — see [`LabelSpan`]).
    pub labels: LabelSpan,
    /// When the answer arrived.
    pub at: SimTime,
    /// How long the winning assignment took.
    pub latency: SimDuration,
    /// Tasks the worker had completed in the pool before this one
    /// ("worker age", Figure 5's x-axis).
    pub worker_age: u32,
}

/// Lifecycle state of a task (§4.1's unassigned / active / complete).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskPhase {
    /// No assignment yet.
    Unassigned,
    /// At least one live assignment, quorum not yet met.
    Active,
    /// Quorum met; final labels aggregated.
    Complete,
}

/// Mutable task state tracked by the runner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskState {
    /// The task description.
    pub spec: TaskSpec,
    /// Batch index this task belongs to.
    pub batch: usize,
    /// When the task became eligible (batch start).
    pub created: SimTime,
    /// Collected answers (completed assignments).
    pub responses: Vec<TaskResponse>,
    /// Currently running assignments.
    pub active: Vec<AssignmentId>,
    /// Completion time, once quorum is met.
    pub completed_at: Option<SimTime>,
    /// Majority-aggregated labels, once complete (a span into the
    /// runner's label arena — see [`LabelSpan`]).
    pub final_labels: Option<LabelSpan>,
}

impl TaskState {
    /// Fresh state for a spec in `batch` at time `created`.
    pub fn new(spec: TaskSpec, batch: usize, created: SimTime) -> Self {
        TaskState {
            spec,
            batch,
            created,
            responses: Vec::new(),
            active: Vec::new(),
            completed_at: None,
            final_labels: None,
        }
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> TaskPhase {
        if self.completed_at.is_some() {
            TaskPhase::Complete
        } else if self.active.is_empty() {
            TaskPhase::Unassigned
        } else {
            TaskPhase::Active
        }
    }

    /// Whether `worker` already holds or held a live/completed assignment
    /// for this task (a worker never works the same task twice).
    /// `assignment_base` is the id of `assignments[0]` — zero for a
    /// whole-run table, non-zero once the runner has retired completed
    /// state (see [`StateView`]).
    pub fn has_worker(
        &self,
        worker: WorkerId,
        assignments: &[Assignment],
        assignment_base: u32,
    ) -> bool {
        self.responses.iter().any(|r| r.worker == worker)
            || self
                .active
                .iter()
                .any(|&a| assignments[(a.0 - assignment_base) as usize].worker == worker)
    }

    /// Latency from batch start to completion (Figure 3/10's per-task
    /// latency), if complete.
    pub fn completion_latency(&self) -> Option<SimDuration> {
        self.completed_at.map(|t| t.since(self.created))
    }
}

/// One worker × task execution attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Its id.
    pub id: AssignmentId,
    /// The task being attempted.
    pub task: TaskId,
    /// The worker attempting it.
    pub worker: WorkerId,
    /// Start time.
    pub start: SimTime,
    /// When the worker would finish if not terminated.
    pub planned_end: SimTime,
    /// Set when straggler mitigation or eviction kills the assignment.
    pub terminated: Option<SimTime>,
    /// Set when the assignment completed and produced an answer.
    pub completed: Option<SimTime>,
}

/// A borrowed, base-offset view over the runner's task and assignment
/// tables.
///
/// Ids ([`TaskId`], [`AssignmentId`]) are *stream positions*: they keep
/// growing for the lifetime of a run. In batch mode they coincide with
/// table indices, but the streaming service mode retires completed-task
/// state at batch boundaries to keep memory bounded, after which the
/// tables hold only the live tail and `tasks[0]` has id `task_base`.
/// This view packages the slices with their bases so policy code (e.g.
/// [`route`](crate::lifeguard::route)) resolves ids identically in both
/// modes.
pub struct StateView<'a> {
    /// The (possibly retired-prefix) task table.
    pub tasks: &'a [TaskState],
    /// The (possibly retired-prefix) assignment table.
    pub assignments: &'a [Assignment],
    /// Id of `tasks[0]`.
    pub task_base: u32,
    /// Id of `assignments[0]`.
    pub assignment_base: u32,
}

impl<'a> StateView<'a> {
    /// A view over whole-run tables (ids are plain indices).
    pub fn full(tasks: &'a [TaskState], assignments: &'a [Assignment]) -> Self {
        StateView { tasks, assignments, task_base: 0, assignment_base: 0 }
    }

    /// Resolve a task id.
    pub fn task(&self, id: TaskId) -> &'a TaskState {
        &self.tasks[(id.0 - self.task_base) as usize]
    }

    /// Resolve an assignment id.
    pub fn assignment(&self, id: AssignmentId) -> &'a Assignment {
        &self.assignments[(id.0 - self.assignment_base) as usize]
    }
}

impl Assignment {
    /// Is this assignment still running at all?
    pub fn is_live(&self) -> bool {
        self.terminated.is_none() && self.completed.is_none()
    }

    /// Wall-clock span of the assignment as it actually ended (terminated
    /// early, completed, or `None` if still live).
    pub fn span(&self) -> Option<SimDuration> {
        self.terminated.or(self.completed).map(|end| end.since(self.start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn label_span_resolves_against_arena() {
        let arena = vec![9, 8, 7, 6, 5];
        assert_eq!(LabelSpan { start: 1, len: 3 }.slice(&arena), &[8, 7, 6]);
        assert_eq!(LabelSpan::empty().slice(&arena), &[] as &[u32]);
        assert_eq!(LabelSpan::empty().slice(&[]), &[] as &[u32]);
    }

    #[test]
    fn spec_ng() {
        assert_eq!(TaskSpec::new(vec![0, 1, 0]).ng(), 3);
    }

    #[test]
    #[should_panic]
    fn empty_spec_rejected() {
        let _ = TaskSpec::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn mismatched_rows_rejected() {
        let _ = TaskSpec::for_rows(vec![1, 2], vec![0]);
    }

    #[test]
    fn phase_transitions() {
        let mut ts = TaskState::new(TaskSpec::new(vec![0]), 0, t(0));
        assert_eq!(ts.phase(), TaskPhase::Unassigned);
        ts.active.push(AssignmentId(0));
        assert_eq!(ts.phase(), TaskPhase::Active);
        ts.active.clear();
        ts.completed_at = Some(t(5));
        assert_eq!(ts.phase(), TaskPhase::Complete);
        assert_eq!(ts.completion_latency(), Some(SimDuration::from_secs(5)));
    }

    #[test]
    fn has_worker_checks_both_live_and_answered() {
        let mut ts = TaskState::new(TaskSpec::new(vec![0]), 0, t(0));
        let assignments = vec![Assignment {
            id: AssignmentId(0),
            task: TaskId(0),
            worker: WorkerId(7),
            start: t(0),
            planned_end: t(10),
            terminated: None,
            completed: None,
        }];
        assert!(!ts.has_worker(WorkerId(7), &assignments, 0));
        ts.active.push(AssignmentId(0));
        assert!(ts.has_worker(WorkerId(7), &assignments, 0));
        ts.active.clear();
        ts.responses.push(TaskResponse {
            worker: WorkerId(7),
            labels: LabelSpan::empty(),
            at: t(3),
            latency: SimDuration::from_secs(3),
            worker_age: 0,
        });
        assert!(ts.has_worker(WorkerId(7), &assignments, 0));
        assert!(!ts.has_worker(WorkerId(8), &assignments, 0));
    }

    #[test]
    fn state_view_resolves_base_offset_ids() {
        let a = Assignment {
            id: AssignmentId(5),
            task: TaskId(3),
            worker: WorkerId(9),
            start: t(1),
            planned_end: t(2),
            terminated: None,
            completed: None,
        };
        let mut ts = TaskState::new(TaskSpec::new(vec![0]), 2, t(0));
        ts.active.push(AssignmentId(5));
        let tasks = vec![ts];
        let assignments = vec![a];
        let view = StateView {
            tasks: &tasks,
            assignments: &assignments,
            task_base: 3,
            assignment_base: 5,
        };
        assert_eq!(view.task(TaskId(3)).batch, 2);
        assert_eq!(view.assignment(AssignmentId(5)).worker, WorkerId(9));
        assert!(tasks[0].has_worker(WorkerId(9), &assignments, 5));
        let full = StateView::full(&tasks, &assignments);
        assert_eq!(full.task_base, 0);
    }

    #[test]
    fn assignment_span() {
        let mut a = Assignment {
            id: AssignmentId(0),
            task: TaskId(0),
            worker: WorkerId(0),
            start: t(10),
            planned_end: t(30),
            terminated: None,
            completed: None,
        };
        assert!(a.is_live());
        assert_eq!(a.span(), None);
        a.terminated = Some(t(15));
        assert_eq!(a.span(), Some(SimDuration::from_secs(5)));
        assert!(!a.is_live());
    }
}
