//! The deterministic discrete-event executor.
//!
//! [`Runner`] binds the CLAMShell policies (scheduling, straggler
//! mitigation, pool maintenance) to the simulated crowd platform. It is
//! the Rust equivalent of the paper's Python simulator plus the live
//! retainer implementation: a single event loop advancing simulated time
//! through worker arrivals, assignment completions, terminations, and
//! abandonments.
//!
//! Determinism contract: for a fixed [`RunConfig`] (including seed) and
//! task stream, two runs produce byte-identical [`RunReport`]s. Events at
//! equal times fire in schedule order; all collections iterate in
//! [`WorkerId`] order; every random draw comes from seeded streams.

use crate::adversity::{streams, BurstFault, ChurnFault};
use crate::config::{QcMode, RunConfig};
use crate::lifeguard::route;
use crate::maintainer::Maintainer;
use crate::metrics::{AssignmentRecord, BatchStats, RunReport, TaskRecord};
use crate::task::{
    Assignment, AssignmentId, LabelSpan, StateView, TaskId, TaskResponse, TaskSpec, TaskState,
};
use clamshell_crowd::{CostLedger, RetainerPool, SimPlatform, WorkerId};
use clamshell_obs::{RunObserver, TraceKind};
use clamshell_quality::voting::{majority_vote, Vote};
use clamshell_sim::events::EventQueue;
use clamshell_sim::faults::{fault_stream, OutageSchedule};
use clamshell_sim::rng::Rng;
use clamshell_sim::stats::OnlineStats;
use clamshell_sim::time::{SimDuration, SimTime};
use clamshell_trace::Population;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A recruited worker finished qualification and arrives.
    WorkerReady,
    /// An assignment reaches its planned completion.
    AssignmentDone(AssignmentId),
    /// A terminated worker finished the termination dialog.
    WorkerFreed(WorkerId),
    /// Patience check: the worker abandons if still idle and the epoch
    /// matches (stale checks are ignored).
    Abandon(WorkerId, u32),
    /// Adversity churn: the assignment's worker walks out mid-task,
    /// abandoning both the assignment and their retainer slot.
    Walkout(AssignmentId),
    /// Pool lifecycle: a reserve worker's idle timeout elapsed; if they
    /// are still in the reserve they are paid off and released.
    ReserveTimeout(WorkerId),
    /// Clock marker used by [`Runner::advance`]; no state change.
    Nop,
}

/// The report rows drained by one [`Runner::retire_completed`] call:
/// everything logged since the previous retirement, in the same order
/// the retained-mode vectors would hold it.
#[derive(Debug, Clone, Default)]
pub struct RetiredRows {
    /// Completed-task records, in completion order.
    pub tasks: Vec<TaskRecord>,
    /// Assignment records, in the order assignments ended.
    pub assignments: Vec<AssignmentRecord>,
    /// Per-batch statistics, in batch order.
    pub batches: Vec<BatchStats>,
}

/// Cumulative worker-lifecycle counters, never retired — streaming
/// checkpoints report them directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleCounts {
    /// Workers ever recruited by the platform.
    pub recruited: usize,
    /// Workers evicted by pool maintenance.
    pub evicted: u64,
    /// Workers who walked out mid-assignment.
    pub departed: u64,
    /// Reserve workers released by the idle timeout.
    pub reserve_expired: u64,
    /// Stale (pre-blackout generation) members retired at checkout.
    pub stale_retired: u64,
}

/// The CLAMShell batch executor. See module docs.
pub struct Runner {
    cfg: RunConfig,
    platform: SimPlatform,
    queue: EventQueue<Event>,
    pool: RetainerPool,
    maintainer: Maintainer,
    rng: Rng,

    tasks: Vec<TaskState>,
    assignments: Vec<Assignment>,

    /// Id of `tasks[0]`. Task/assignment ids are *stream positions* that
    /// keep growing for the lifetime of a run; in batch mode they equal
    /// table indices (base 0), but [`Runner::retire_completed`] drops the
    /// completed prefix and bumps the bases so streamed-run memory stays
    /// bounded. All table lookups subtract the base (see [`StateView`]).
    task_base: u32,
    /// Id of `assignments[0]` (see `task_base`).
    assignment_base: u32,

    /// Current batch's task ids.
    batch_tasks: Vec<TaskId>,
    batch_index: usize,

    /// Workers idle and dispatchable right now.
    idle: BTreeSet<WorkerId>,
    /// Recruited workers not yet placed in the pool (maintenance reserve).
    reserve: VecDeque<WorkerId>,
    reserve_since: BTreeMap<WorkerId, SimTime>,
    recruits_in_flight: usize,
    /// Abandon-event invalidation epochs.
    abandon_epoch: BTreeMap<WorkerId, u32>,
    patience: BTreeMap<WorkerId, SimDuration>,

    task_records: Vec<TaskRecord>,
    assignment_records: Vec<AssignmentRecord>,
    batch_stats: Vec<BatchStats>,
    started: Option<SimTime>,
    last_completion: SimTime,
    evicted_this_boundary: usize,

    // Adversity state (all `None`/zero on benign runs). Fault draws come
    // exclusively from dedicated streams so enabling a fault never
    // perturbs the platform, worker, or routing RNGs.
    /// Mid-assignment walkout fault and its dedicated stream.
    churn_fault: Option<(ChurnFault, Rng)>,
    /// Platform blackout schedule; submissions and recruit arrivals that
    /// fall inside a window are deferred to its end.
    outage: Option<OutageSchedule>,
    /// Workers who walked out mid-assignment.
    workers_departed: u64,

    // Pool lifecycle state (all inert at the default `PoolConfig`).
    /// Reserve idle timeout and its dedicated jitter stream; `Some` only
    /// when `cfg.pool.idle_timeout` is set, so benign runs draw nothing.
    pool_idle: Option<(SimDuration, Rng)>,
    /// End of the last outage window that bumped the pool generation
    /// (guards against bumping once per deferred event).
    last_outage_end: SimTime,
    /// Reserve workers released by the idle timeout.
    reserve_expired: u64,
    /// Stale members lazily retired at checkout after a generation bump.
    stale_retired: u64,

    // Observability (`None` when `cfg.obs` is disabled — the default).
    // The disabled path costs one branch per instrumentation point and
    // draws zero RNG values, so enabling obs never perturbs a run.
    /// Metrics registry + flight recorder.
    obs: Option<Box<RunObserver>>,
    /// End of the outage window the runner last deferred into; when the
    /// clock reaches it an `OutageResume` trace event is recorded.
    obs_outage_resume: Option<SimTime>,

    // Reused scratch buffers for the per-assignment hot path. Each is
    // cleared before use; holding them on the runner means the event loop
    // stops allocating once the high-water marks are reached.
    votes_scratch: Vec<Vote>,
    eligible_scratch: Vec<TaskId>,
    kick_scratch: Vec<WorkerId>,
    /// Staging buffer for a completing task's majority labels (they are
    /// copied into the arena once complete — the ballot loop reads
    /// response spans out of the arena, so it can't append mid-vote).
    finals_scratch: Vec<u32>,

    /// Shared storage for every response's labels and every task's final
    /// labels ([`LabelSpan`] handles live in the task table). One arena
    /// replaces one allocation per completed assignment plus one per
    /// completed task — amortized to zero once its high-water mark is
    /// reached, and cleared (capacity kept) when completed state retires.
    label_arena: Vec<u32>,
}

impl Runner {
    /// Create a runner over `population`. Call [`Runner::warm_up`] before
    /// the first batch.
    pub fn new(cfg: RunConfig, population: Population) -> Self {
        cfg.validate();
        // Platform-level faults ride inside the platform; the benign path
        // constructs the exact pre-adversity platform.
        let crowd_faults = cfg.adversity.as_ref().map(|a| a.crowd_faults());
        let platform = match crowd_faults {
            Some(f) if f.is_active() => {
                SimPlatform::with_faults(population, cfg.platform.clone(), cfg.seed, f)
            }
            _ => SimPlatform::new(population, cfg.platform.clone(), cfg.seed),
        };
        let churn_fault = cfg
            .adversity
            .as_ref()
            .and_then(|a| a.churn)
            .map(|c| (c, fault_stream(cfg.seed, streams::CHURN)));
        let outage = cfg.adversity.as_ref().and_then(|a| a.outage).map(|o| {
            OutageSchedule::new(
                cfg.seed,
                SimDuration::from_secs_f64(o.mean_uptime_secs),
                SimDuration::from_secs_f64(o.mean_outage_secs),
            )
        });
        let mut pool = RetainerPool::with_config(cfg.pool_size, cfg.pool);
        let obs = if cfg.obs.enabled {
            pool.enable_obs();
            Some(Box::new(RunObserver::new(&cfg.obs)))
        } else {
            None
        };
        let pool_idle =
            cfg.pool.idle_timeout.map(|t| (t, fault_stream(cfg.seed, streams::POOL_IDLE)));
        Runner {
            rng: Rng::new(cfg.seed ^ 0x9E37_79B9_7F4A_7C15),
            platform,
            // In-flight events are bounded by the pool (one completion per
            // busy worker, plus abandon checks and recruitment arrivals).
            queue: EventQueue::with_capacity(cfg.pool_size * 4 + 16),
            pool,
            maintainer: Maintainer::new(),
            tasks: Vec::new(),
            assignments: Vec::new(),
            task_base: 0,
            assignment_base: 0,
            batch_tasks: Vec::new(),
            batch_index: 0,
            idle: BTreeSet::new(),
            reserve: VecDeque::new(),
            reserve_since: BTreeMap::new(),
            recruits_in_flight: 0,
            abandon_epoch: BTreeMap::new(),
            patience: BTreeMap::new(),
            task_records: Vec::new(),
            assignment_records: Vec::new(),
            batch_stats: Vec::new(),
            started: None,
            last_completion: SimTime::ZERO,
            cfg,
            evicted_this_boundary: 0,
            churn_fault,
            outage,
            workers_departed: 0,
            pool_idle,
            last_outage_end: SimTime::ZERO,
            reserve_expired: 0,
            stale_retired: 0,
            obs,
            obs_outage_resume: None,
            votes_scratch: Vec::new(),
            eligible_scratch: Vec::new(),
            kick_scratch: Vec::new(),
            finals_scratch: Vec::new(),
            label_arena: Vec::new(),
        }
    }

    /// Pre-size the task/assignment tables and record vectors for a run
    /// labeling `n_tasks` tasks in total. [`run_batched`] calls this with
    /// the full spec count; skipping it is harmless (the vectors grow on
    /// demand) but costs regrow copies on large runs.
    pub fn reserve_tasks(&mut self, n_tasks: usize) {
        // Expected assignments per task: the vote quorum, plus one live
        // straggler replica at a time when mitigation can duplicate work.
        let per_task = self.cfg.quorum as usize + usize::from(self.cfg.straggler.is_some());
        self.tasks.reserve(n_tasks);
        self.task_records.reserve(n_tasks);
        self.assignments.reserve(n_tasks * per_task);
        self.assignment_records.reserve(n_tasks * per_task);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The maintainer (latency estimates, eviction counters).
    pub fn maintainer(&self) -> &Maintainer {
        &self.maintainer
    }

    /// The retainer pool.
    pub fn pool(&self) -> &RetainerPool {
        &self.pool
    }

    /// All task states (completed and otherwise).
    pub fn tasks(&self) -> &[TaskState] {
        &self.tasks
    }

    /// Resolve a [`LabelSpan`] from this runner's task table against its
    /// label arena.
    pub fn labels(&self, span: LabelSpan) -> &[u32] {
        span.slice(&self.label_arena)
    }

    /// The majority-aggregated final labels of `task`, if complete.
    pub fn final_labels(&self, task: &TaskState) -> Option<&[u32]> {
        task.final_labels.map(|span| span.slice(&self.label_arena))
    }

    /// True mean per-label latency across current pool members — a
    /// simulator-only oracle (it reads the generative profiles) used to
    /// validate the §4.2 pool-convergence model against the closed form.
    pub fn pool_true_mpl(&self) -> f64 {
        let mut acc = OnlineStats::new();
        for (w, _) in self.pool.members() {
            acc.push(self.platform.profile(w).mean_latency);
        }
        acc.mean()
    }

    /// Fill the retainer pool to `Np` before the first batch. Recruitment
    /// time is excluded from run latency, matching §6.1: "we assume
    /// recruitment time is amortized across batches and measure latency
    /// from the moment the first task is sent to the pool."
    pub fn warm_up(&mut self) {
        self.ensure_recruitment();
        while self.pool.len() < self.pool.fill_target() {
            self.ensure_recruitment();
            let Some((_, ev)) = self.queue.pop() else {
                panic!("warm_up: event queue drained before pool filled");
            };
            self.handle(ev);
        }
    }

    /// Run one batch of tasks to completion; returns the batch index.
    pub fn run_batch(&mut self, specs: Vec<TaskSpec>) -> usize {
        assert!(!specs.is_empty(), "empty batch");
        let index = self.batch_index;
        let start = self.now();
        self.started.get_or_insert(start);

        self.batch_tasks.clear();
        for spec in specs {
            assert!(
                spec.truths.iter().all(|&t| t < self.cfg.n_classes),
                "task truth out of class range"
            );
            let id = TaskId(self.task_base + self.tasks.len() as u32);
            self.tasks.push(TaskState::new(spec, index, start));
            self.batch_tasks.push(id);
        }

        // When the pool runs below capacity (a `min_size` floor), promote
        // reserve workers to cover any demand the floor can't.
        self.surge_promote();

        // Kick all idle workers at the new work (snapshot into a reused
        // scratch buffer: dispatch mutates `self.idle`), in the
        // configured checkout order (FIFO = id order, the historical
        // behavior, so the default reorder is a no-op).
        let mut kick = std::mem::take(&mut self.kick_scratch);
        kick.clear();
        kick.extend(self.idle.iter().copied());
        self.pool.order_checkouts(&mut kick);
        for &w in &kick {
            self.dispatch_worker(w);
        }
        self.kick_scratch = kick;

        // Pump events until every task in the batch completes.
        while !self.batch_complete() {
            let Some((_, ev)) = self.queue.pop() else {
                panic!(
                    "run_batch: deadlock — queue drained with incomplete tasks \
                     (pool={}, in-flight recruits={})",
                    self.pool.len(),
                    self.recruits_in_flight
                );
            };
            self.handle(ev);
        }

        let end = self.now();
        self.last_completion = end;
        // Maintenance at the batch boundary (the paper's simulator
        // replaces slow workers "after each batch").
        self.evicted_this_boundary = 0;
        self.maintenance_step();
        self.record_batch_stats(index, start, end);
        self.batch_index += 1;
        index
    }

    /// Finalize the run: settle outstanding waiting wages and produce the
    /// report.
    pub fn finish(mut self) -> RunReport {
        let now = self.now();
        let members: Vec<WorkerId> = self.pool.members().map(|(w, _)| w).collect();
        for w in members {
            if let Some(wait) = self.pool.leave(w, now) {
                self.platform.pay_wait(wait);
                self.note_pool_leave(now, w);
            }
        }
        // Settle reserve wait from the accrual map itself, not the queue:
        // `reserve_since` is the authoritative record of who is owed wait
        // pay, so a future divergence between the two structures can
        // never silently under-pay. They must agree today.
        debug_assert_eq!(
            self.reserve.len(),
            self.reserve_since.len(),
            "reserve queue and accrual map out of sync at drain"
        );
        let owed = std::mem::take(&mut self.reserve_since);
        for (_, since) in owed {
            self.platform.pay_wait(now.since(since));
        }
        // Fold the pool's transition aggregates into the registry, then
        // collapse the observer into its serializable report.
        let obs_report = self.obs.take().map(|mut obs| {
            if let Some(pool_obs) = self.pool.obs() {
                obs.absorb_pool(pool_obs);
            }
            obs.into_report()
        });
        RunReport {
            tasks: self.task_records,
            assignments: self.assignment_records,
            batches: self.batch_stats,
            cost: *self.platform.ledger(),
            workers_recruited: self.platform.workers_recruited(),
            workers_evicted: self.maintainer.evictions,
            workers_departed: self.workers_departed,
            reserve_expired: self.reserve_expired,
            stale_retired: self.stale_retired,
            started: self.started.unwrap_or(SimTime::ZERO),
            finished: self.last_completion,
            obs: obs_report,
        }
    }

    /// Whether observability is enabled for this run.
    pub fn obs_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// Dump the flight-recorder tail to stderr as a JSONL section.
    /// Called by [`run_batched`] when a batch panics, so the event trail
    /// leading up to an invariant failure is never lost with the
    /// process. A no-op when obs is disabled.
    pub fn dump_obs(&self) {
        if let Some(obs) = &self.obs {
            let _ = obs.dump("panic-dump", self.cfg.seed, &mut std::io::stderr().lock());
        }
    }

    // ------------------------------------------------------------------
    // Streaming service mode: incremental report access + retirement
    // ------------------------------------------------------------------

    /// Table index for a task id (ids are stream positions; lookups
    /// subtract the retired-prefix base).
    fn task_ix(&self, tid: TaskId) -> usize {
        (tid.0 - self.task_base) as usize
    }

    /// Table index for an assignment id (see [`Self::task_ix`]).
    fn assign_ix(&self, aid: AssignmentId) -> usize {
        (aid.0 - self.assignment_base) as usize
    }

    /// The assignment for `aid` if it is still live; `None` for stale
    /// ids. An id can be stale two ways — the assignment was terminated
    /// or completed earlier, or its state was dropped by
    /// [`Self::retire_completed`] — and retired assignments are all dead,
    /// so both collapse into the same early return for queued
    /// `AssignmentDone`/`Walkout` events.
    fn live_assignment(&self, aid: AssignmentId) -> Option<Assignment> {
        if aid.0 < self.assignment_base {
            return None;
        }
        let a = self.assignments[(aid.0 - self.assignment_base) as usize];
        a.is_live().then_some(a)
    }

    /// Task records logged so far and not yet retired, in completion
    /// order. Streaming checkpoints fold the suffix that appeared since
    /// the previous boundary.
    pub fn task_records(&self) -> &[TaskRecord] {
        &self.task_records
    }

    /// Assignment records logged so far and not yet retired.
    pub fn assignment_records(&self) -> &[AssignmentRecord] {
        &self.assignment_records
    }

    /// Per-batch statistics logged so far and not yet retired.
    pub fn batch_stats(&self) -> &[BatchStats] {
        &self.batch_stats
    }

    /// Snapshot of the cumulative cost ledger (never retired).
    pub fn cost_so_far(&self) -> CostLedger {
        *self.platform.ledger()
    }

    /// Cumulative worker-lifecycle counters (never retired).
    pub fn lifecycle_counts(&self) -> LifecycleCounts {
        LifecycleCounts {
            recruited: self.platform.workers_recruited(),
            evicted: self.maintainer.evictions,
            departed: self.workers_departed,
            reserve_expired: self.reserve_expired,
            stale_retired: self.stale_retired,
        }
    }

    /// Streaming observability probe: `(events recorded, trace
    /// fingerprint over every event so far)`. `None` when obs is
    /// disabled. The fingerprint matches what
    /// [`Runner::finish`] would report at this instant, so streamed
    /// checkpoints can pin the trace without draining the recorder.
    pub fn obs_probe(&self) -> Option<(u64, u64)> {
        self.obs.as_ref().map(|obs| {
            let fp = clamshell_obs::trace::fingerprint_events(obs.recorder.iter());
            (obs.recorder.recorded(), fp)
        })
    }

    /// Retire all completed-task state, keeping streamed-run memory
    /// bounded: drains the report rows accumulated since the last
    /// retirement, clears the task/assignment tables (capacity is kept,
    /// so steady-state batches stop allocating), and bumps the id bases.
    ///
    /// Only callable at a batch boundary, when every admitted task has
    /// completed — which also means every assignment is dead
    /// ([`Runner::run_batch`] terminates leftover replicas at task
    /// completion). Cumulative scalars (cost ledger, lifecycle counters,
    /// run start/last-completion) are never retired, so
    /// [`Runner::finish`] still reports them correctly; only the row
    /// vectors come back empty in retire mode.
    pub fn retire_completed(&mut self) -> RetiredRows {
        assert!(
            self.tasks.iter().all(|t| t.completed_at.is_some()),
            "retire_completed is a batch-boundary operation: every admitted task must be complete"
        );
        debug_assert!(
            self.assignments.iter().all(|a| !a.is_live()),
            "completed batches leave no live assignments"
        );
        self.task_base += self.tasks.len() as u32;
        self.assignment_base += self.assignments.len() as u32;
        self.tasks.clear();
        self.assignments.clear();
        self.batch_tasks.clear();
        // Every LabelSpan handle lives in the task table just cleared, so
        // the arena holds no reachable spans; clearing it (capacity kept)
        // is what makes streamed-run label memory bounded too.
        self.label_arena.clear();
        RetiredRows {
            tasks: std::mem::take(&mut self.task_records),
            assignments: std::mem::take(&mut self.assignment_records),
            batches: std::mem::take(&mut self.batch_stats),
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Event) {
        if let Some(obs) = &mut self.obs {
            // Queue-depth sample per handled event, and the outage-resume
            // marker: the first event at/after the recorded recovery
            // instant closes the outage window in the trace.
            obs.note_queue_depth(self.queue.len() as u64);
            if let Some(resume) = self.obs_outage_resume {
                if self.queue.now() >= resume {
                    self.obs_outage_resume = None;
                    obs.record(self.queue.now(), TraceKind::OutageResume);
                }
            }
        }
        // Outage hook: events that model a *platform interaction* — an
        // answer submission or a recruit admission — cannot happen while
        // the platform is down; they re-enter the queue at the recovery
        // instant. Purely worker-side events (walkouts, patience checks,
        // dialog clicks) are unaffected. Deferred events carry fresh
        // sequence numbers in pop order, so FIFO ties stay deterministic.
        if let Some(sched) = &mut self.outage {
            if matches!(ev, Event::AssignmentDone(_) | Event::WorkerReady) {
                if let Some(recovery) = sched.defer(self.queue.now()) {
                    if let Some(obs) = &mut self.obs {
                        obs.record(
                            self.queue.now(),
                            TraceKind::OutageDefer { resume_ms: recovery.as_millis() },
                        );
                        let resume = self.obs_outage_resume.map_or(recovery, |r| r.max(recovery));
                        self.obs_outage_resume = Some(resume);
                    }
                    // Pool generations: the first deferral into each
                    // outage window bumps the generation — an O(1)
                    // counter increment, never a pool scan. Members from
                    // older generations are retired lazily at their next
                    // checkout (see `dispatch_worker`).
                    if self.cfg.pool.generations && recovery > self.last_outage_end {
                        self.last_outage_end = recovery;
                        self.pool.bump_generation();
                    }
                    self.queue.schedule(recovery, ev);
                    return;
                }
            }
        }
        match ev {
            Event::WorkerReady => self.on_worker_ready(),
            Event::AssignmentDone(aid) => self.on_assignment_done(aid),
            Event::WorkerFreed(w) => self.on_worker_freed(w),
            Event::Abandon(w, epoch) => self.on_abandon(w, epoch),
            Event::Walkout(aid) => self.on_walkout(aid),
            Event::ReserveTimeout(w) => self.on_reserve_timeout(w),
            Event::Nop => {}
        }
    }

    /// Advance the simulated clock by `dur`, processing any events that
    /// fall inside the window (worker arrivals, abandonments). Used by the
    /// learning loop to model *blocking* decision latency: with
    /// synchronous retraining, the next batch cannot start until the
    /// learner finishes (§5.3).
    pub fn advance(&mut self, dur: SimDuration) {
        let target = self.now() + dur;
        self.queue.schedule(target, Event::Nop);
        while self.now() < target {
            let Some((_, ev)) = self.queue.pop() else {
                break;
            };
            self.handle(ev);
        }
    }

    fn on_worker_ready(&mut self) {
        self.recruits_in_flight = self.recruits_in_flight.saturating_sub(1);
        let w = self.platform.worker_arrives();
        let now = self.now();
        // Arrivals fill the pool to its replenishment floor; beyond that
        // they wait in the reserve (and may be promoted by a demand
        // surge). Without a `min_size` the floor is the capacity, which
        // is the historical vacancy check.
        if self.pool.len() < self.pool.fill_target() {
            self.join_pool(w);
        } else {
            self.reserve.push_back(w);
            self.reserve_since.insert(w, now);
            if let Some((timeout, rng)) = &mut self.pool_idle {
                // Jitter each deadline ±10% from the dedicated stream so
                // simultaneous arrivals don't expire in lockstep.
                let jittered = timeout.as_secs_f64() * rng.range_f64(0.9, 1.1);
                let deadline = now + SimDuration::from_secs_f64(jittered);
                self.queue.schedule(deadline, Event::ReserveTimeout(w));
            }
        }
    }

    /// Release a reserve worker whose idle timeout elapsed. Stale checks
    /// (the worker was promoted into the pool meanwhile) are no-ops:
    /// `join_pool` removes them from `reserve_since`, and workers never
    /// re-enter the reserve, so map membership is the liveness test.
    fn on_reserve_timeout(&mut self, w: WorkerId) {
        let Some(since) = self.reserve_since.remove(&w) else {
            return;
        };
        self.reserve.retain(|&x| x != w);
        let now = self.now();
        self.platform.pay_wait(now.since(since));
        self.reserve_expired += 1;
        if let Some(obs) = &mut self.obs {
            obs.record(now, TraceKind::ReserveTimeout { worker: w.0 });
        }
    }

    fn join_pool(&mut self, w: WorkerId) {
        let now = self.now();
        if let Some(since) = self.reserve_since.remove(&w) {
            // Reserve workers were waiting (and being paid) off-pool.
            self.platform.pay_wait(now.since(since));
        }
        let joined = self.pool.join(w, now);
        debug_assert!(joined, "join_pool on full pool");
        if let Some(obs) = &mut self.obs {
            obs.record(now, TraceKind::PoolJoin { worker: w.0, occupancy: self.pool.len() as u64 });
        }
        let patience = self.platform.sample_patience(w);
        self.patience.insert(w, patience);
        self.dispatch_worker(w);
    }

    fn on_worker_freed(&mut self, w: WorkerId) {
        if self.pool.contains(w) {
            self.dispatch_worker(w);
        }
    }

    fn on_abandon(&mut self, w: WorkerId, epoch: u32) {
        if !self.cfg.churn {
            return;
        }
        if self.abandon_epoch.get(&w).copied().unwrap_or(0) != epoch {
            return; // stale check: the worker got work since
        }
        if !self.idle.contains(&w) || !self.pool.contains(w) {
            return;
        }
        // The worker walks away from the retainer task.
        self.idle.remove(&w);
        let now = self.now();
        if let Some(wait) = self.pool.leave(w, now) {
            self.platform.pay_wait(wait);
            self.note_pool_leave(now, w);
        }
        self.refill_vacancy();
    }

    /// Record a `PoolLeave` trace event (no-op when obs is disabled).
    /// Called immediately after a successful `pool.leave`, so
    /// `pool.len()` is the post-departure occupancy.
    fn note_pool_leave(&mut self, now: SimTime, w: WorkerId) {
        if let Some(obs) = &mut self.obs {
            obs.record(
                now,
                TraceKind::PoolLeave { worker: w.0, occupancy: self.pool.len() as u64 },
            );
        }
    }

    /// Adversity churn: the worker walks out mid-assignment. No answer is
    /// submitted and no work payment is due (unlike a requester-side
    /// termination, the worker forfeits by leaving); the retainer slot
    /// empties and re-recruitment starts immediately. The maintainer
    /// drops the departed worker's sample and counts the walkout against
    /// the reserve budget.
    fn on_walkout(&mut self, aid: AssignmentId) {
        let Some(a) = self.live_assignment(aid) else {
            return; // terminated (straggler cap / completion) before walking
        };
        let now = self.now();
        let w = a.worker;
        let aix = self.assign_ix(aid);
        self.assignments[aix].terminated = Some(now);
        let tix = self.task_ix(a.task);
        self.tasks[tix].active.retain(|&x| x != aid);
        self.assignment_records.push(AssignmentRecord {
            task: a.task.0,
            batch: self.tasks[tix].batch,
            worker: w,
            start: a.start,
            end: now,
            terminated: true,
        });
        // The worker is gone for good: free the slot (no wait owed while
        // working) and forget their pending patience bookkeeping.
        if self.pool.contains(w) {
            self.pool.leave(w, now);
            self.note_pool_leave(now, w);
        }
        self.idle.remove(&w);
        self.patience.remove(&w);
        self.abandon_epoch.remove(&w);
        self.maintainer.note_walkout(w);
        self.workers_departed += 1;
        if let Some(obs) = &mut self.obs {
            obs.record(now, TraceKind::Walkout { worker: w.0, task: a.task.0, assignment: aid.0 });
        }
        self.refill_vacancy();
        // The abandoned task lost coverage: point idle workers at it
        // (dispatch mutates `self.idle`, so snapshot into the reused
        // scratch buffer first), in the configured checkout order.
        let mut kick = std::mem::take(&mut self.kick_scratch);
        kick.clear();
        kick.extend(self.idle.iter().copied());
        self.pool.order_checkouts(&mut kick);
        for &idle_w in &kick {
            self.dispatch_worker(idle_w);
        }
        self.kick_scratch = kick;
    }

    fn on_assignment_done(&mut self, aid: AssignmentId) {
        let Some(a) = self.live_assignment(aid) else {
            return; // was terminated earlier (or retired); stale event
        };
        let now = self.now();
        let tid = a.task;
        let w = a.worker;
        let tix = self.task_ix(tid);
        let ng = self.tasks[tix].spec.ng();

        // Mark complete, detach from the task.
        let aix = self.assign_ix(aid);
        self.assignments[aix].completed = Some(now);
        self.tasks[tix].active.retain(|&x| x != aid);

        // Produce the answer. The truths slice borrows straight out of the
        // task table (disjoint from `self.platform` and the arena), so no
        // per-assignment clone of the spec is needed — and the labels are
        // appended to the shared arena, so no per-assignment vector either.
        let start = self.label_arena.len() as u32;
        self.platform.sample_labels_into(
            w,
            &self.tasks[tix].spec.truths,
            self.cfg.n_classes,
            &mut self.label_arena,
        );
        let labels = LabelSpan { start, len: self.label_arena.len() as u32 - start };
        let age_before = self.pool.age(w);
        let span = now.since(a.start);
        self.tasks[tix].responses.push(TaskResponse {
            worker: w,
            labels,
            at: now,
            latency: span,
            worker_age: age_before,
        });

        // Pay and account.
        self.platform.pay_records(ng as u64);
        if self.pool.contains(w) {
            self.pool.finish_work(w, now, true);
        }
        let stats = self.maintainer.stats_mut(w);
        stats.record_completion(span.as_secs_f64(), ng);

        self.assignment_records.push(AssignmentRecord {
            task: tid.0,
            batch: self.tasks[tix].batch,
            worker: w,
            start: a.start,
            end: now,
            terminated: false,
        });
        if let Some(obs) = &mut self.obs {
            obs.record(
                now,
                TraceKind::AssignmentDone {
                    worker: w.0,
                    task: tid.0,
                    assignment: aid.0,
                    span_ms: span.as_millis(),
                },
            );
        }

        // Quorum check.
        let responses = self.tasks[tix].responses.len();
        if responses >= self.cfg.quorum as usize {
            self.complete_task(tid, w);
        } else {
            self.enforce_cap(tid, w);
        }

        // The worker immediately looks for new work.
        self.dispatch_worker(w);
    }

    /// Aggregate the final labels, terminate leftover replicas, and log
    /// the task record.
    fn complete_task(&mut self, tid: TaskId, finisher: WorkerId) {
        let now = self.now();
        // Majority vote per record across the quorum of responses, built
        // in a reused vote buffer (one ballot allocation total, not one
        // per record per task).
        let mut votes = std::mem::take(&mut self.votes_scratch);
        let mut finals = std::mem::take(&mut self.finals_scratch);
        finals.clear();
        let tix = self.task_ix(tid);
        let task = &self.tasks[tix];
        let ng = task.spec.ng() as usize;
        for rec in 0..ng {
            votes.clear();
            votes.extend(task.responses.iter().map(|r| Vote {
                worker: r.worker.0,
                label: r.labels.slice(&self.label_arena)[rec],
            }));
            // clamshell-lint: allow(D006) -- a task only completes after >= 1 response, so the ballot is never empty
            finals.push(majority_vote(&votes).expect("complete task has responses"));
        }
        self.votes_scratch = votes;
        let task = &self.tasks[tix];
        // Label accuracy against the simulator's ground truth (the
        // adversity experiments report the delta vs the benign baseline).
        let correct = finals.iter().zip(&task.spec.truths).filter(|(a, b)| a == b).count() as u32;
        // The winner's scalars are all the record needs — don't clone the
        // whole first response (its labels vector in particular).
        let first = &task.responses[0];
        let (winner, winner_span, winner_age) = (first.worker, first.latency, first.worker_age);
        let batch = task.batch;
        let created = task.created;

        // Quality signal for maintenance (§4.2 Extensions): with a vote
        // quorum, each response's agreement with the consensus is
        // per-worker quality evidence. The task table and the maintainer
        // are disjoint fields, so this streams without a staging vector.
        if task.responses.len() >= 2 {
            let maintainer = &mut self.maintainer;
            let arena = &self.label_arena;
            for r in &task.responses {
                let matched =
                    r.labels.slice(arena).iter().zip(&finals).filter(|(a, b)| a == b).count()
                        as u64;
                maintainer.stats_mut(r.worker).record_quality(matched, finals.len() as u64);
            }
        }

        // The staged finals move into the arena (one append to shared
        // storage, not a per-task vector) and the scratch goes back for
        // the next completion.
        let finals_span =
            LabelSpan { start: self.label_arena.len() as u32, len: finals.len() as u32 };
        self.label_arena.extend_from_slice(&finals);
        self.finals_scratch = finals;

        let task = &mut self.tasks[tix];
        task.completed_at = Some(now);
        task.final_labels = Some(finals_span);
        // Detach the leftover replicas by moving the vector out (no
        // clone); hand its capacity back once they're terminated.
        let mut leftovers = std::mem::take(&mut task.active);

        for &aid in &leftovers {
            self.terminate_assignment(aid, finisher);
        }
        leftovers.clear();
        self.tasks[tix].active = leftovers;

        self.task_records.push(TaskRecord {
            task: tid.0,
            batch,
            ng: self.tasks[tix].spec.ng(),
            created,
            completed: now,
            winner,
            winner_span,
            winner_age,
            correct,
        });
    }

    /// After a partial answer (quorum not yet met), shrink the task's
    /// concurrency to the new cap by terminating the longest-running
    /// (straggling) replicas.
    fn enforce_cap(&mut self, tid: TaskId, finisher: WorkerId) {
        let tix = self.task_ix(tid);
        let remaining = self.cfg.quorum.saturating_sub(self.tasks[tix].responses.len() as u32);
        let cap = self.concurrency_cap(remaining);
        loop {
            let task = &self.tasks[tix];
            if task.active.len() <= cap {
                break;
            }
            // Longest-running live replica is the straggler to cut.
            let oldest = task
                .active
                .iter()
                .copied()
                .min_by_key(|&a| (self.assignments[(a.0 - self.assignment_base) as usize].start, a))
                // clamshell-lint: allow(D006) -- guarded above: this branch only runs when the task still has live replicas
                .expect("non-empty active set");
            self.tasks[tix].active.retain(|&x| x != oldest);
            self.terminate_assignment(oldest, finisher);
        }
    }

    /// Kill a live assignment (straggler replica or eviction), paying the
    /// worker for partial work and freeing them after the dialog overhead.
    fn terminate_assignment(&mut self, aid: AssignmentId, caused_by: WorkerId) {
        let now = self.now();
        let aix = self.assign_ix(aid);
        let a = self.assignments[aix];
        debug_assert!(a.is_live(), "terminating a dead assignment");
        self.assignments[aix].terminated = Some(now);
        let atix = self.task_ix(a.task);
        let ng = self.tasks[atix].spec.ng();
        self.platform.pay_terminated(ng as u64);
        if self.pool.contains(a.worker) {
            self.pool.finish_work(a.worker, now, false);
        }
        // TermEst evidence: the terminator's current empirical mean.
        let cause_mean = self
            .maintainer
            .stats(caused_by)
            .filter(|s| s.completed.count() > 0)
            .map(|s| s.completed.mean());
        self.maintainer.stats_mut(a.worker).record_termination(cause_mean);

        self.assignment_records.push(AssignmentRecord {
            task: a.task.0,
            batch: self.tasks[atix].batch,
            worker: a.worker,
            start: a.start,
            end: now,
            terminated: true,
        });

        // The worker clicks through the termination dialog, then is free.
        self.queue
            .schedule(now + self.cfg.platform.termination_overhead, Event::WorkerFreed(a.worker));
    }

    // ------------------------------------------------------------------
    // Dispatch (Scheduler + Mitigator)
    // ------------------------------------------------------------------

    /// Concurrent-assignment cap for a task still needing `remaining`
    /// answers (§4.1 "Working with Quality Control").
    fn concurrency_cap(&self, remaining: u32) -> usize {
        match &self.cfg.straggler {
            None => remaining as usize,
            Some(sm) => match sm.qc_mode {
                QcMode::Naive => remaining as usize * 2,
                QcMode::Decoupled => {
                    if self.cfg.quorum == 1 {
                        match sm.max_extra {
                            Some(extra) => 1 + extra,
                            None => usize::MAX,
                        }
                    } else {
                        remaining as usize + 1
                    }
                }
            },
        }
    }

    /// Route an idle worker: unassigned (under-quorum) tasks first, then —
    /// with straggler mitigation — duplicate an active task. If nothing is
    /// available the worker waits (and may eventually abandon).
    fn dispatch_worker(&mut self, w: WorkerId) {
        if !self.pool.contains(w) {
            return;
        }
        // Lazy generation-based retirement (connection-pool style): a
        // member who joined before the last blackout is replaced at
        // checkout time instead of being scanned out during the outage.
        if self.pool.is_stale(w) {
            self.retire_stale(w);
            return;
        }
        self.idle.remove(&w);

        // 1. Must-fill: tasks with fewer live assignments than needed
        //    votes, in task order.
        let mut pick: Option<TaskId> = None;
        for &tid in &self.batch_tasks {
            let task = &self.tasks[(tid.0 - self.task_base) as usize];
            if task.completed_at.is_some() {
                continue;
            }
            let remaining = self.cfg.quorum.saturating_sub(task.responses.len() as u32) as usize;
            if task.active.len() < remaining
                && !task.has_worker(w, &self.assignments, self.assignment_base)
            {
                pick = Some(tid);
                break;
            }
        }

        // 2. Mitigation: duplicate an active task. The eligible set is
        //    rebuilt in a reused scratch vector — this runs on every
        //    dispatch once a batch's tail is all stragglers.
        if pick.is_none() {
            if let Some(sm) = self.cfg.straggler {
                let mut eligible = std::mem::take(&mut self.eligible_scratch);
                eligible.clear();
                eligible.extend(self.batch_tasks.iter().copied().filter(|&tid| {
                    let task = &self.tasks[(tid.0 - self.task_base) as usize];
                    if task.completed_at.is_some() || task.active.is_empty() {
                        return false;
                    }
                    let remaining = self.cfg.quorum.saturating_sub(task.responses.len() as u32);
                    task.active.len() < self.concurrency_cap(remaining)
                        && !task.has_worker(w, &self.assignments, self.assignment_base)
                }));
                let view = StateView {
                    tasks: &self.tasks,
                    assignments: &self.assignments,
                    task_base: self.task_base,
                    assignment_base: self.assignment_base,
                };
                pick = route(sm.routing, &eligible, &view, &mut self.rng);
                self.eligible_scratch = eligible;
            }
        }

        match pick {
            Some(tid) => self.assign(w, tid),
            None => {
                // Nothing to do: the worker waits; maybe abandons later.
                self.idle.insert(w);
                if self.cfg.churn {
                    let epoch = *self.abandon_epoch.entry(w).or_insert(0);
                    let patience =
                        self.patience.get(&w).copied().unwrap_or(SimDuration::from_mins(30));
                    self.queue.schedule(self.now() + patience, Event::Abandon(w, epoch));
                }
            }
        }
    }

    /// Retire a stale (pre-blackout generation) member at checkout:
    /// settle their outstanding wait, free the slot, and backfill from
    /// the reserve or recruitment.
    fn retire_stale(&mut self, w: WorkerId) {
        self.idle.remove(&w);
        let now = self.now();
        if let Some(wait) = self.pool.leave(w, now) {
            self.platform.pay_wait(wait);
            self.note_pool_leave(now, w);
        }
        self.patience.remove(&w);
        self.abandon_epoch.remove(&w);
        self.stale_retired += 1;
        if let Some(obs) = &mut self.obs {
            obs.record(now, TraceKind::StaleRetired { worker: w.0 });
        }
        self.refill_vacancy();
    }

    fn assign(&mut self, w: WorkerId, tid: TaskId) {
        let now = self.now();
        // Invalidate pending abandon checks.
        *self.abandon_epoch.entry(w).or_insert(0) += 1;
        let waited = self.pool.start_work(w, now);
        self.platform.pay_wait(waited);
        if let Some(obs) = &mut self.obs {
            obs.record(now, TraceKind::Checkout { worker: w.0, waited_ms: waited.as_millis() });
        }

        let tix = self.task_ix(tid);
        let ng = self.tasks[tix].spec.ng();
        let dur = self.platform.sample_task_duration(w, ng);
        let aid = AssignmentId(self.assignment_base + self.assignments.len() as u32);
        self.assignments.push(Assignment {
            id: aid,
            task: tid,
            worker: w,
            start: now,
            planned_end: now + dur,
            terminated: None,
            completed: None,
        });
        self.tasks[tix].active.push(aid);
        self.maintainer.stats_mut(w).started += 1;
        if let Some(obs) = &mut self.obs {
            obs.record(now, TraceKind::Dispatch { worker: w.0, task: tid.0, assignment: aid.0 });
        }
        // Churn fault: this assignment may end in a walkout instead of an
        // answer. Decided here, per assignment, from the dedicated churn
        // stream (two draws per affected assignment; zero impact on any
        // benign stream).
        let walkout_after = match &mut self.churn_fault {
            Some((churn, rng)) => {
                if rng.bernoulli(churn.walkout_prob) {
                    let frac = rng.range_f64(churn.min_frac, churn.max_frac);
                    Some(SimDuration::from_secs_f64(dur.as_secs_f64() * frac))
                } else {
                    None
                }
            }
            None => None,
        };
        match walkout_after {
            Some(after) => self.queue.schedule(now + after, Event::Walkout(aid)),
            None => self.queue.schedule(now + dur, Event::AssignmentDone(aid)),
        }
    }

    fn batch_complete(&self) -> bool {
        self.batch_tasks
            .iter()
            .all(|&tid| self.tasks[(tid.0 - self.task_base) as usize].completed_at.is_some())
    }

    // ------------------------------------------------------------------
    // Maintenance & recruitment
    // ------------------------------------------------------------------

    /// Make sure enough recruitments are in flight to (eventually) keep
    /// the pool at its replenishment floor and, under maintenance, the
    /// reserve at its target — the background-replenishment half of the
    /// pool lifecycle.
    fn ensure_recruitment(&mut self) {
        let reserve_target = self.cfg.maintenance.map(|m| m.reserve_target).unwrap_or(0);
        let want = self.pool.fill_target() + reserve_target;
        let have = self.pool.len() + self.reserve.len() + self.recruits_in_flight;
        for _ in have..want {
            let delay = self.platform.start_recruitment();
            self.recruits_in_flight += 1;
            self.queue.schedule(self.now() + delay, Event::WorkerReady);
        }
    }

    /// Refill the pool to its floor from the reserve, or start
    /// recruiting.
    fn refill_vacancy(&mut self) {
        while self.pool.len() < self.pool.fill_target() {
            match self.reserve.pop_front() {
                Some(next) => self.join_pool(next),
                None => break,
            }
        }
        self.ensure_recruitment();
    }

    /// With a `min_size` floor below capacity, promote reserve workers at
    /// a batch start when the incoming demand exceeds the idle members on
    /// hand — the pool surges toward capacity and drains back to the
    /// floor as members churn out. A no-op (and zero extra draws or
    /// events) when the floor equals the capacity.
    fn surge_promote(&mut self) {
        if self.pool.fill_target() >= self.pool.capacity() {
            return;
        }
        let mut demand = 0usize;
        for &tid in &self.batch_tasks {
            let task = &self.tasks[(tid.0 - self.task_base) as usize];
            if task.completed_at.is_some() {
                continue;
            }
            let remaining = self.cfg.quorum.saturating_sub(task.responses.len() as u32) as usize;
            demand += remaining.saturating_sub(task.active.len());
        }
        let mut need = demand.saturating_sub(self.idle.len());
        while need > 0 && self.pool.vacancies() > 0 {
            let Some(next) = self.reserve.pop_front() else {
                break;
            };
            self.join_pool(next);
            need -= 1;
        }
    }

    /// Batch-boundary maintenance: evict flagged workers (replacement
    /// permitting) and top the reserve back up. Only `Waiting` members
    /// are eviction candidates: evicting a `Working` member would orphan
    /// their live assignment — the answer would still arrive, but against
    /// a vanished member record, silently skipping the age/wait
    /// accounting in `finish_work`. Reachable whenever an assignment
    /// (e.g. a straggler replica) spans the batch boundary.
    fn maintenance_step(&mut self) {
        let Some(mcfg) = self.cfg.maintenance else {
            self.ensure_recruitment();
            return;
        };
        let members: Vec<WorkerId> = self.pool.waiting();
        let flagged = self.maintainer.flag_evictions(members.into_iter(), &mcfg);
        for w in flagged {
            // Only evict when a trained replacement is ready — maintenance
            // never shrinks the pool (§4.2).
            if self.reserve.is_empty() {
                break;
            }
            self.idle.remove(&w);
            let now = self.now();
            if let Some(wait) = self.pool.leave(w, now) {
                self.platform.pay_wait(wait);
                self.note_pool_leave(now, w);
            }
            self.maintainer.note_eviction();
            self.evicted_this_boundary += 1;
            if let Some(obs) = &mut self.obs {
                obs.record(now, TraceKind::MaintenanceEvict { worker: w.0 });
            }
            // clamshell-lint: allow(D006) -- the eviction loop bound is min(evictions, reserve.len()), so the reserve cannot be empty here
            let replacement = self.reserve.pop_front().expect("checked non-empty");
            self.join_pool(replacement);
        }
        self.refill_vacancy();
    }

    fn record_batch_stats(&mut self, index: usize, start: SimTime, end: SimTime) {
        let mut lat = OnlineStats::new();
        let mut mpl = OnlineStats::new();
        for &tid in &self.batch_tasks {
            let task = &self.tasks[(tid.0 - self.task_base) as usize];
            if let Some(done) = task.completed_at {
                lat.push(done.since(task.created).as_secs_f64());
            }
            for r in &task.responses {
                mpl.push(r.latency.as_secs_f64());
            }
        }
        self.batch_stats.push(BatchStats {
            index,
            start,
            end,
            tasks: self.batch_tasks.len(),
            task_latency_std: lat.std(),
            task_latency_mean: lat.mean(),
            mpl: mpl.mean(),
            evicted: self.evicted_this_boundary,
        });
    }
}

/// Deterministic chunk-size source shared by [`run_batched`] and the
/// streaming engine (`clamshell-stream`).
///
/// Yields the caller's fixed batch size, unless a
/// [`BurstFault`] is configured — then
/// burst sizes are drawn uniformly from `[min_batch, max_batch]` on the
/// dedicated fault stream, one draw per chunk. Centralizing the draw is
/// load-bearing for the streamed/batched equivalence contract: both
/// entry points consume the identical size sequence, so batch boundaries
/// (and every downstream scheduling decision) coincide bit for bit.
pub struct BatchSizer {
    fixed: usize,
    bursts: Option<(BurstFault, Rng)>,
}

impl BatchSizer {
    /// Build from the run configuration and the caller's batch size.
    /// The fault stream is stateless, so construction order relative to
    /// [`Runner::new`] cannot matter.
    pub fn new(cfg: &RunConfig, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        let bursts = cfg
            .adversity
            .as_ref()
            .and_then(|a| a.bursts)
            .map(|b| (b, fault_stream(cfg.seed, streams::BURSTS)));
        BatchSizer { fixed: batch_size, bursts }
    }

    /// Size of the next chunk to admit (always positive).
    pub fn next_size(&mut self) -> usize {
        match &mut self.bursts {
            Some((b, rng)) => b.min_batch + rng.index(b.max_batch - b.min_batch + 1),
            None => self.fixed,
        }
    }
}

/// Convenience: run `specs` split into `batch_size` chunks end-to-end.
///
/// With a [`BurstFault`] configured, the
/// fixed `batch_size` is replaced by burst sizes drawn uniformly from
/// `[min_batch, max_batch]` on a dedicated fault stream (see
/// [`BatchSizer`]) — the task stream itself (content and order) is
/// untouched.
pub fn run_batched(
    cfg: RunConfig,
    population: Population,
    specs: Vec<TaskSpec>,
    batch_size: usize,
) -> RunReport {
    let mut sizer = BatchSizer::new(&cfg, batch_size);
    let mut runner = Runner::new(cfg, population);
    runner.reserve_tasks(specs.len());
    runner.warm_up();
    let mut iter = specs.into_iter().peekable();
    if runner.obs_enabled() {
        // Instrumented runs dump the flight recorder before re-raising a
        // batch panic, so the event tail survives invariant failures. The
        // disabled path below stays free of the catch-unwind machinery.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            while iter.peek().is_some() {
                let chunk: Vec<TaskSpec> = iter.by_ref().take(sizer.next_size()).collect();
                runner.run_batch(chunk);
            }
        }));
        if let Err(payload) = outcome {
            runner.dump_obs();
            std::panic::resume_unwind(payload);
        }
    } else {
        while iter.peek().is_some() {
            let chunk: Vec<TaskSpec> = iter.by_ref().take(sizer.next_size()).collect();
            runner.run_batch(chunk);
        }
    }
    runner.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MaintenanceConfig;

    fn specs(n: usize, ng: usize) -> Vec<TaskSpec> {
        (0..n).map(|i| TaskSpec::new(vec![(i % 2) as u32; ng])).collect()
    }

    fn base_cfg(seed: u64) -> RunConfig {
        RunConfig { pool_size: 8, ng: 5, seed, ..Default::default() }
    }

    fn pop() -> Population {
        Population::mturk_live()
    }

    #[test]
    fn warm_up_fills_pool() {
        let mut r = Runner::new(base_cfg(1), pop());
        r.warm_up();
        assert_eq!(r.pool().len(), 8);
    }

    #[test]
    fn single_batch_completes_all_tasks() {
        let report = run_batched(base_cfg(2), pop(), specs(8, 5), 8);
        assert_eq!(report.tasks.len(), 8);
        assert_eq!(report.labels_produced(), 40);
        assert_eq!(report.batches.len(), 1);
        assert!(report.total_secs() > 0.0);
    }

    #[test]
    fn multi_batch_run() {
        let report = run_batched(base_cfg(3), pop(), specs(24, 5), 8);
        assert_eq!(report.batches.len(), 3);
        assert_eq!(report.tasks.len(), 24);
        // Batches are sequential in time.
        for w in report.batches.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn deterministic_reports() {
        let a = run_batched(base_cfg(7), pop(), specs(16, 5), 8);
        let b = run_batched(base_cfg(7), pop(), specs(16, 5), 8);
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn seeds_change_outcomes() {
        let a = run_batched(base_cfg(8), pop(), specs(16, 5), 8);
        let b = run_batched(base_cfg(9), pop(), specs(16, 5), 8);
        assert_ne!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn straggler_mitigation_creates_terminations() {
        let cfg = base_cfg(4).with_straggler();
        let report = run_batched(cfg, pop(), specs(16, 5), 8);
        assert!(
            report.assignments.iter().any(|a| a.terminated),
            "SM with R=1 should terminate some replicas"
        );
        // Every task still completes exactly once.
        assert_eq!(report.tasks.len(), 16);
    }

    #[test]
    fn no_mitigation_no_terminations() {
        let report = run_batched(base_cfg(5), pop(), specs(16, 5), 8);
        assert_eq!(report.termination_rate(), 0.0);
    }

    #[test]
    fn quorum_collects_multiple_answers() {
        let cfg = RunConfig { quorum: 3, pool_size: 9, ..base_cfg(6) };
        let mut r = Runner::new(cfg, pop());
        r.warm_up();
        r.run_batch(specs(3, 5));
        for t in r.tasks() {
            assert_eq!(t.responses.len(), 3, "each task needs exactly 3 answers");
            assert!(t.final_labels.is_some());
        }
    }

    #[test]
    fn maintenance_evicts_and_replaces() {
        let cfg = RunConfig {
            maintenance: Some(MaintenanceConfig {
                threshold_per_label_secs: 4.0,
                min_tasks: 1,
                ..MaintenanceConfig::pm8()
            }),
            ..base_cfg(10)
        };
        let report = run_batched(cfg, pop(), specs(64, 5), 8);
        assert!(report.workers_evicted > 0, "aggressive threshold must evict");
        // Pool never shrinks: every eviction had a replacement.
        assert!(report.workers_recruited >= 8 + report.workers_evicted as usize);
    }

    #[test]
    fn mitigation_improves_batch_makespan() {
        // Paired comparison, multiple seeds: SM should reduce mean batch
        // completion time substantially at R=1 on a long-tailed pool.
        let mut with = 0.0;
        let mut without = 0.0;
        for seed in 0..5 {
            let r1 = run_batched(base_cfg(seed).with_straggler(), pop(), specs(30, 5), 10);
            let r2 = run_batched(base_cfg(seed), pop(), specs(30, 5), 10);
            with += r1.batch_makespan_summary().mean;
            without += r2.batch_makespan_summary().mean;
        }
        assert!(without > with * 1.2, "SM should speed batches: with={with} without={without}");
    }

    #[test]
    fn cost_is_positive_and_composed() {
        let report = run_batched(base_cfg(11), pop(), specs(8, 5), 8);
        assert!(report.cost.work_micro > 0);
        assert!(report.cost.recruit_micro > 0);
        assert_eq!(
            report.cost.total_micro(),
            report.cost.work_micro + report.cost.wait_micro + report.cost.recruit_micro
        );
    }

    #[test]
    fn worker_never_duplicates_own_task() {
        let cfg = base_cfg(12).with_straggler();
        let report = run_batched(cfg, pop(), specs(4, 5), 4);
        // Group assignments per task; no worker appears twice.
        let mut seen: std::collections::HashMap<u32, Vec<WorkerId>> = Default::default();
        for a in &report.assignments {
            let entry = seen.entry(a.task).or_default();
            assert!(!entry.contains(&a.worker), "worker {} duplicated task {}", a.worker, a.task);
            entry.push(a.worker);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_truths() {
        let mut r = Runner::new(base_cfg(13), pop());
        r.warm_up();
        r.run_batch(vec![TaskSpec::new(vec![5])]); // n_classes = 2
    }

    // ------------------------------------------------------------------
    // Pool lifecycle & accounting
    // ------------------------------------------------------------------

    use crate::config::{CheckoutStrategy, PoolConfig};
    use clamshell_crowd::MemberState;

    #[test]
    fn drain_settles_all_outstanding_wait_exactly() {
        use clamshell_crowd::payment::usd;
        // Regression for the reserve-settlement accounting: at run drain,
        // total wait pay must equal the mid-run accrual plus a
        // hand-computed settlement for every still-Waiting pool member
        // AND every worker still queued in the maintenance reserve.
        let cfg = RunConfig {
            maintenance: Some(MaintenanceConfig {
                threshold_per_label_secs: 1000.0, // no evictions: isolate settlement
                ..MaintenanceConfig::pm8()
            }),
            ..base_cfg(31)
        };
        let rate = cfg.platform.wait_pay_per_min;
        let mut r = Runner::new(cfg, pop());
        r.warm_up();
        r.run_batch(specs(8, 5));
        // Land the in-flight reserve recruits so the drain has real
        // reserve wait to settle.
        while r.reserve.len() < 3 {
            let Some((_, ev)) = r.queue.pop() else { break };
            r.handle(ev);
        }
        assert!(!r.reserve_since.is_empty(), "reserve must be non-empty at drain");
        assert_eq!(r.reserve.len(), r.reserve_since.len());
        let now = r.now();
        let mut expected = r.platform.ledger().wait_micro;
        for (_, m) in r.pool.members() {
            if let MemberState::Waiting { since } = m.state {
                expected += usd(rate * now.since(since).as_mins_f64());
            }
        }
        for &since in r.reserve_since.values() {
            expected += usd(rate * now.since(since).as_mins_f64());
        }
        let report = r.finish();
        assert_eq!(report.cost.wait_micro, expected, "wait pay must settle exactly at drain");
    }

    #[test]
    fn maintenance_skips_mid_assignment_members() {
        // Regression: an assignment that spans the batch boundary (e.g. a
        // straggler replica) leaves its member `Working` when maintenance
        // runs; evicting them would orphan the live assignment. Only
        // `Waiting` members are eviction candidates.
        let cfg = RunConfig {
            maintenance: Some(MaintenanceConfig {
                threshold_per_label_secs: 0.001, // flag anyone with evidence
                min_tasks: 1,
                ..MaintenanceConfig::pm8()
            }),
            ..base_cfg(32)
        };
        let mut r = Runner::new(cfg, pop());
        r.warm_up();
        // Land at least one reserve recruit so evictions have a
        // replacement available.
        while r.reserve.is_empty() {
            let (_, ev) = r.queue.pop().expect("recruits in flight");
            r.handle(ev);
        }
        // Damning latency evidence for every member, then put one to work
        // across the boundary.
        let members: Vec<WorkerId> = r.pool.members().map(|(w, _)| w).collect();
        for &w in &members {
            let stats = r.maintainer.stats_mut(w);
            for _ in 0..3 {
                // `started` normally ticks in `assign`; mirror it here so
                // the evidence passes the maintainer's min-tasks gate.
                stats.started += 1;
                stats.record_completion(1_000.0, 5);
            }
        }
        let straggler = members[0];
        r.pool.start_work(straggler, r.now());
        r.maintenance_step();
        assert!(r.pool.contains(straggler), "working member must survive maintenance");
        assert!(matches!(r.pool.member(straggler).unwrap().state, MemberState::Working { .. }));
        assert!(
            r.maintainer.evictions > 0,
            "waiting members with identical evidence are still evicted"
        );
        // The boundary-spanning assignment still lands normally.
        r.pool.finish_work(straggler, r.now(), true);
        assert_eq!(r.pool.age(straggler), 1);
    }

    #[test]
    fn default_pool_config_is_byte_identical_to_explicit_fifo() {
        let explicit = RunConfig {
            pool: PoolConfig {
                min_size: None,
                strategy: CheckoutStrategy::Fifo,
                idle_timeout: None,
                generations: false,
            },
            ..base_cfg(30)
        };
        let a = run_batched(base_cfg(30), pop(), specs(16, 5), 8);
        let b = run_batched(explicit, pop(), specs(16, 5), 8);
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
        assert_eq!(a.reserve_expired, 0);
        assert_eq!(a.stale_retired, 0);
    }

    #[test]
    fn lifo_checkout_changes_the_schedule_deterministically() {
        let lifo_cfg = || RunConfig {
            pool: PoolConfig { strategy: CheckoutStrategy::Lifo, ..Default::default() },
            ..base_cfg(37)
        };
        let fifo = run_batched(base_cfg(37), pop(), specs(24, 5), 4);
        let lifo_a = run_batched(lifo_cfg(), pop(), specs(24, 5), 4);
        let lifo_b = run_batched(lifo_cfg(), pop(), specs(24, 5), 4);
        assert_eq!(
            serde_json::to_string(&lifo_a).unwrap(),
            serde_json::to_string(&lifo_b).unwrap()
        );
        assert_ne!(
            serde_json::to_string(&fifo).unwrap(),
            serde_json::to_string(&lifo_a).unwrap(),
            "with 8 members and 4-task batches, checkout order must matter"
        );
        assert_eq!(lifo_a.tasks.len(), 24, "every task completes under LIFO too");
    }

    #[test]
    fn reserve_idle_timeout_expires_and_pays() {
        let cfg = || RunConfig {
            maintenance: Some(MaintenanceConfig {
                threshold_per_label_secs: 1000.0,
                ..MaintenanceConfig::pm8()
            }),
            pool: PoolConfig {
                idle_timeout: Some(SimDuration::from_secs(30)),
                ..Default::default()
            },
            ..base_cfg(33)
        };
        // Qualification delays put the reserve recruits well past a short
        // batch run, so advance the clock far enough for them to land in
        // the reserve and for their 30s timeouts to fire.
        let run = || {
            let mut r = Runner::new(cfg(), pop());
            r.warm_up();
            r.run_batch(specs(8, 5));
            r.advance(SimDuration::from_mins(60));
            r.run_batch(specs(8, 5));
            r.finish()
        };
        let report = run();
        assert!(report.reserve_expired > 0, "a 30s timeout must release reserve workers");
        assert_eq!(report.tasks.len(), 16, "releases never block completion");
        let again = run();
        assert_eq!(serde_json::to_string(&report).unwrap(), serde_json::to_string(&again).unwrap());
    }

    #[test]
    fn min_size_floor_fills_below_capacity() {
        let cfg = RunConfig {
            pool: PoolConfig { min_size: Some(4), ..Default::default() },
            ..base_cfg(35)
        };
        let mut r = Runner::new(cfg, pop());
        r.warm_up();
        assert_eq!(r.pool().len(), 4, "warm-up fills to the floor, not capacity");
        r.run_batch(specs(8, 5));
        let report = r.finish();
        assert_eq!(report.tasks.len(), 8);
    }

    #[test]
    fn surge_promotes_reserve_to_cover_demand() {
        let cfg = RunConfig {
            churn: false,
            maintenance: Some(MaintenanceConfig {
                threshold_per_label_secs: 1000.0,
                reserve_target: 6,
                ..MaintenanceConfig::pm8()
            }),
            pool: PoolConfig { min_size: Some(2), ..Default::default() },
            ..base_cfg(36)
        };
        let mut r = Runner::new(cfg, pop());
        r.warm_up();
        assert_eq!(r.pool().len(), 2);
        while r.reserve.len() < 6 {
            let (_, ev) = r.queue.pop().expect("recruits in flight");
            r.handle(ev);
        }
        r.run_batch(specs(8, 5));
        assert!(
            r.pool().len() > 2,
            "an 8-task batch against a 2-member floor must promote reserve workers (len={})",
            r.pool().len()
        );
        assert!(r.pool().len() <= r.pool().capacity());
        let report = r.finish();
        assert_eq!(report.tasks.len(), 8);
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    use crate::config::ObsConfig;

    #[test]
    fn obs_disabled_by_default_and_absent_from_report() {
        let report = run_batched(base_cfg(40), pop(), specs(8, 5), 8);
        assert!(report.obs.is_none(), "default runs carry no obs report");
    }

    #[test]
    fn obs_enabled_does_not_perturb_the_simulation() {
        // The whole zero-overhead contract in one assertion: strip the
        // obs ride-along and the instrumented report is byte-identical
        // to the plain one — same RNG draws, same schedule, same costs.
        let plain = run_batched(base_cfg(41), pop(), specs(16, 5), 8);
        let cfg = RunConfig { obs: ObsConfig::on(), ..base_cfg(41) };
        let mut instrumented = run_batched(cfg, pop(), specs(16, 5), 8);
        let obs = instrumented.obs.take().expect("enabled run must attach obs");
        assert!(!obs.events.is_empty(), "an instrumented run records events");
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&instrumented).unwrap()
        );
    }

    #[test]
    fn obs_trace_is_deterministic_and_fingerprinted() {
        let cfg = || {
            RunConfig { obs: ObsConfig::on(), ..base_cfg(42) }.with_straggler().with_maintenance()
        };
        let a = run_batched(cfg(), pop(), specs(16, 5), 8).obs.unwrap();
        let b = run_batched(cfg(), pop(), specs(16, 5), 8).obs.unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.render_jsonl("unit", 42), b.render_jsonl("unit", 42));
        assert_eq!(
            a.fingerprint,
            clamshell_obs::trace::fingerprint_events(a.events.iter()),
            "committed fingerprint must re-derive from the events"
        );
    }

    #[test]
    fn obs_dispatch_and_done_counts_match_the_ledger() {
        let cfg = RunConfig { obs: ObsConfig::on(), ..base_cfg(43) };
        let report = run_batched(cfg, pop(), specs(16, 5), 8);
        let obs = report.obs.as_ref().unwrap();
        assert_eq!(
            obs.counter("runner.dispatch") as usize,
            report.assignments.len(),
            "every assignment record begins with a dispatch"
        );
        let done: usize = report.assignments.iter().filter(|a| !a.terminated).count();
        assert_eq!(obs.counter("runner.assignment_done") as usize, done);
        // Checkout events (runner-side) and pool checkouts (pool-side)
        // are recorded by independent code paths; they must agree.
        assert_eq!(obs.counter("runner.checkout"), obs.counter("runner.dispatch"));
        assert_eq!(obs.counter("pool.join"), obs.counter("pool.leave"));
    }

    #[test]
    fn obs_small_ring_drops_oldest_but_keeps_counts() {
        let cfg = RunConfig { obs: ObsConfig::with_ring(8), ..base_cfg(44) };
        let report = run_batched(cfg, pop(), specs(16, 5), 8);
        let obs = report.obs.unwrap();
        assert_eq!(obs.events.len(), 8);
        assert!(obs.dropped > 0, "a tiny ring must evict");
        assert_eq!(obs.dropped + obs.events.len() as u64, obs.recorded);
        // Counters are not bounded by the ring.
        assert!(obs.counter("runner.dispatch") > 8);
    }

    // ------------------------------------------------------------------
    // Adversity faults
    // ------------------------------------------------------------------

    use crate::adversity::{AdversityConfig, BurstFault, ChurnFault, OutageFault};

    fn adv_cfg(seed: u64, adversity: AdversityConfig) -> RunConfig {
        base_cfg(seed).with_adversity(adversity)
    }

    #[test]
    fn empty_adversity_is_bit_identical_to_none() {
        let plain = run_batched(base_cfg(20), pop(), specs(16, 5), 8);
        let layered = run_batched(adv_cfg(20, AdversityConfig::NONE), pop(), specs(16, 5), 8);
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&layered).unwrap()
        );
    }

    #[test]
    fn churn_departs_workers_but_completes_every_task() {
        let cfg = adv_cfg(
            21,
            AdversityConfig { churn: Some(ChurnFault::default()), ..AdversityConfig::NONE },
        );
        let report = run_batched(cfg, pop(), specs(24, 5), 8);
        assert!(report.workers_departed > 0, "15% walkout rate must fire");
        assert_eq!(report.tasks.len(), 24, "every task still completes");
        // Re-recruitment happened (some replacements may still be
        // in-flight at run end, so only arrivals beyond warm-up that
        // already landed are observable).
        assert!(report.workers_recruited > 8, "walkouts must trigger re-recruitment");
        // Walkouts are logged as terminated assignments with no answer.
        assert!(report.assignments.iter().any(|a| a.terminated));
    }

    #[test]
    fn churn_is_deterministic() {
        let cfg = || {
            adv_cfg(
                22,
                AdversityConfig {
                    churn: Some(ChurnFault { walkout_prob: 0.3, ..Default::default() }),
                    ..AdversityConfig::NONE
                },
            )
        };
        let a = run_batched(cfg(), pop(), specs(16, 5), 8);
        let b = run_batched(cfg(), pop(), specs(16, 5), 8);
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn outages_stretch_the_run() {
        let benign = run_batched(base_cfg(23), pop(), specs(24, 5), 8);
        let dark = run_batched(
            adv_cfg(
                23,
                AdversityConfig {
                    outage: Some(OutageFault { mean_uptime_secs: 60.0, mean_outage_secs: 60.0 }),
                    ..AdversityConfig::NONE
                },
            ),
            pop(),
            specs(24, 5),
            8,
        );
        assert_eq!(dark.tasks.len(), 24);
        assert!(
            dark.total_secs() > benign.total_secs(),
            "50% blackout must slow the run: dark={} benign={}",
            dark.total_secs(),
            benign.total_secs()
        );
    }

    #[test]
    fn blackout_generations_retire_stale_members_lazily() {
        let cfg = || RunConfig {
            pool: PoolConfig { generations: true, ..Default::default() },
            ..adv_cfg(
                34,
                AdversityConfig {
                    outage: Some(OutageFault { mean_uptime_secs: 120.0, mean_outage_secs: 45.0 }),
                    ..AdversityConfig::NONE
                },
            )
        };
        let report = run_batched(cfg(), pop(), specs(24, 5), 8);
        assert!(
            report.stale_retired > 0,
            "blackouts must retire pre-outage members at their next checkout"
        );
        assert_eq!(report.tasks.len(), 24, "lazy retirement never blocks completion");
        let again = run_batched(cfg(), pop(), specs(24, 5), 8);
        assert_eq!(serde_json::to_string(&report).unwrap(), serde_json::to_string(&again).unwrap());
        // Generations off: same outage schedule, zero retirements.
        let plain = RunConfig { pool: PoolConfig::default(), ..cfg() };
        let baseline = run_batched(plain, pop(), specs(24, 5), 8);
        assert_eq!(baseline.stale_retired, 0);
    }

    #[test]
    fn bursty_arrivals_reshape_batches_only() {
        let cfg = adv_cfg(
            24,
            AdversityConfig {
                bursts: Some(BurstFault { min_batch: 1, max_batch: 7 }),
                ..AdversityConfig::NONE
            },
        );
        let report = run_batched(cfg, pop(), specs(30, 5), 8);
        assert_eq!(report.tasks.len(), 30, "every task labeled exactly once");
        let sizes: Vec<usize> = report.batches.iter().map(|b| b.tasks).collect();
        assert!(sizes.iter().all(|&s| (1..=7).contains(&s)));
        assert!(sizes.windows(2).any(|w| w[0] != w[1]), "burst sizes vary: {sizes:?}");
    }

    #[test]
    fn composed_faults_run_to_completion_deterministically() {
        let cfg = || {
            adv_cfg(
                25,
                AdversityConfig {
                    archetypes: Some(clamshell_trace::ArchetypeMix::spammers(0.3)),
                    inflation: Some(clamshell_crowd::LatencyInflation {
                        prob: 0.2,
                        mult_median: 6.0,
                        mult_sigma: 0.6,
                    }),
                    churn: Some(ChurnFault::default()),
                    outage: Some(OutageFault::default()),
                    bursts: Some(BurstFault { min_batch: 2, max_batch: 9 }),
                },
            )
            .with_straggler()
            .with_maintenance()
        };
        let a = run_batched(cfg(), pop(), specs(24, 5), 8);
        let b = run_batched(cfg(), pop(), specs(24, 5), 8);
        assert_eq!(a.tasks.len(), 24);
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn accuracy_drops_under_adversarial_workers() {
        let benign = run_batched(base_cfg(26), pop(), specs(40, 5), 8);
        let hostile = run_batched(
            adv_cfg(
                26,
                AdversityConfig {
                    archetypes: Some(clamshell_trace::ArchetypeMix::adversarial(0.4)),
                    ..AdversityConfig::NONE
                },
            ),
            pop(),
            specs(40, 5),
            8,
        );
        assert!(
            hostile.accuracy() < benign.accuracy() - 0.05,
            "hostile={} benign={}",
            hostile.accuracy(),
            benign.accuracy()
        );
    }
}
