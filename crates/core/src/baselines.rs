//! The end-to-end baselines of §6.6 and the open-market crowd model.
//!
//! * **Base-NR** — "a typical crowd labeling deployment": no retainer
//!   pool, all tasks posted to the open market at once, passive learning
//!   over whatever comes back. Each worker must be recruited from the
//!   market (minutes, not seconds) before they produce anything.
//! * **Base-R** — "the latest techniques for low-latency crowdsourcing":
//!   a retainer pool and classic active learning, but no straggler
//!   mitigation, no pool maintenance, and blocking retrains.
//! * **CLAMShell** — everything on: straggler mitigation, PM8 pool
//!   maintenance with TermEst, hybrid learning, pipelined retraining.

use crate::config::RunConfig;
use crate::learning::{LearningConfig, LearningOutcome, LearningRunner, Strategy};
use crate::metrics::{AssignmentRecord, BatchStats, RunReport, TaskRecord};
use crate::task::TaskSpec;
use clamshell_crowd::{SimPlatform, WorkerId};
use clamshell_learn::eval::{accuracy, LearningCurve};
use clamshell_learn::model::{Classifier, Example, SgdConfig};
use clamshell_learn::{Dataset, LogisticRegression, SoftmaxRegression};
use clamshell_sim::stats::OnlineStats;
use clamshell_sim::time::SimTime;
use clamshell_trace::Population;
use std::collections::BinaryHeap;

/// How the open market behaves when tasks are posted without a retainer
/// pool (the Base-NR crowd model).
///
/// On a real platform, posting a pile of HITs does not summon a dedicated
/// workforce: workers *discover* the posting over time (an arrival
/// process whose rate reflects market conditions), complete a short
/// session of tasks, and move on. Both effects — slow trickle-in and
/// short sessions — are what make Base-NR slow and enormously variable
/// in the paper (§6.6: 475 s batch std vs CLAMShell's 3.1 s).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OpenMarketConfig {
    /// Mean worker arrivals per minute once the posting is live.
    pub arrival_rate_per_min: f64,
    /// Mean tasks a worker completes before leaving (geometric).
    pub session_tasks_mean: f64,
}

impl Default for OpenMarketConfig {
    fn default() -> Self {
        OpenMarketConfig { arrival_rate_per_min: 1.5, session_tasks_mean: 10.0 }
    }
}

/// Open-market labeling (the crowd model under Base-NR): `specs` are
/// posted all at once at t = 0; workers discover the posting per
/// [`OpenMarketConfig`], each needing a recruitment delay before their
/// first task and leaving after a short session. No retainer, no wait
/// pay, no mitigation.
pub fn run_open_market(
    population: Population,
    platform_cfg: clamshell_crowd::PlatformConfig,
    specs: Vec<TaskSpec>,
    market: OpenMarketConfig,
    seed: u64,
) -> RunReport {
    assert!(market.arrival_rate_per_min > 0.0, "need a positive arrival rate");
    assert!(market.session_tasks_mean >= 1.0, "sessions must average >= 1 task");
    let mut platform = SimPlatform::new(population, platform_cfg, seed);
    let mut rng = clamshell_sim::rng::Rng::new(seed ^ 0x0EE7_FEE7_0000_0001);
    let interarrival =
        clamshell_sim::dist::Exponential::from_mean(60.0 / market.arrival_rate_per_min);

    // (available-at, worker, tasks-left-in-session); min-heap by time.
    let mut heap: BinaryHeap<(std::cmp::Reverse<SimTime>, WorkerId, u32)> = BinaryHeap::new();
    let mut next_arrival = SimTime::ZERO;

    let mut tasks: Vec<TaskRecord> = Vec::new();
    let mut assignments: Vec<AssignmentRecord> = Vec::new();
    let mut next_task = 0usize;
    let mut lat = OnlineStats::new();
    let mut ages: std::collections::BTreeMap<WorkerId, u32> = Default::default();
    let mut finished = SimTime::ZERO;

    // Geometric session length with the configured mean (>= 1 task).
    let p_leave = 1.0 / market.session_tasks_mean;
    let sample_session = |rng: &mut clamshell_sim::rng::Rng| -> u32 {
        let mut n = 1u32;
        while !rng.bernoulli(p_leave) && n < 10_000 {
            n += 1;
        }
        n
    };

    while next_task < specs.len() {
        // If no worker is ready before the next arrival, admit a new one.
        let need_arrival = match heap.peek() {
            None => true,
            Some(&(std::cmp::Reverse(t), _, _)) => next_arrival < t,
        };
        if need_arrival {
            use clamshell_sim::dist::Sample;
            next_arrival +=
                clamshell_sim::time::SimDuration::from_secs_f64(interarrival.sample(&mut rng));
            let recruit_delay = platform.start_recruitment();
            let w = platform.worker_arrives();
            let session = sample_session(&mut rng);
            heap.push((std::cmp::Reverse(next_arrival + recruit_delay), w, session));
            continue;
        }
        let Some((std::cmp::Reverse(at), w, session_left)) = heap.pop() else {
            unreachable!("guarded by need_arrival");
        };
        let spec = &specs[next_task];
        let ng = spec.ng();
        let dur = platform.sample_task_duration(w, ng);
        let end = at + dur;
        platform.pay_records(ng as u64);
        let age = *ages.get(&w).unwrap_or(&0);
        // Open-market quorum is 1: the single answer is final. Classes
        // are inferred from the spec (open-market runs carry no
        // RunConfig).
        let n_classes = spec.truths.iter().copied().max().unwrap_or(0).max(1) + 1;
        let labels = platform.sample_labels(w, &spec.truths, n_classes);
        let correct = labels.iter().zip(&spec.truths).filter(|(a, b)| a == b).count() as u32;
        tasks.push(TaskRecord {
            task: next_task as u32,
            batch: 0,
            ng,
            created: SimTime::ZERO,
            completed: end,
            winner: w,
            winner_span: dur,
            winner_age: age,
            correct,
        });
        assignments.push(AssignmentRecord {
            task: next_task as u32,
            batch: 0,
            worker: w,
            start: at,
            end,
            terminated: false,
        });
        lat.push(end.as_secs_f64());
        *ages.entry(w).or_insert(0) += 1;
        finished = finished.max(end);
        next_task += 1;
        if session_left > 1 {
            heap.push((std::cmp::Reverse(end), w, session_left - 1));
        }
    }

    let batch = BatchStats {
        index: 0,
        start: SimTime::ZERO,
        end: finished,
        tasks: tasks.len(),
        task_latency_std: lat.std(),
        task_latency_mean: lat.mean(),
        mpl: lat.mean(),
        evicted: 0,
    };
    RunReport {
        tasks,
        assignments,
        batches: vec![batch],
        cost: *platform.ledger(),
        workers_recruited: platform.workers_recruited(),
        workers_evicted: 0,
        workers_departed: 0,
        reserve_expired: 0,
        stale_retired: 0,
        started: SimTime::ZERO,
        finished,
        obs: None,
    }
}

/// Shared shape of the three end-to-end systems (Figures 17, 18).
#[derive(Debug)]
pub struct EndToEnd {
    /// System name ("Base-NR", "Base-R", "CLAMShell").
    pub name: &'static str,
    /// Learning curve over simulated time.
    pub curve: LearningCurve,
    /// Crowd run report.
    pub report: RunReport,
}

/// Base-NR: open-market labeling of `budget` random points + passive
/// model retrained every `pool_size` labels.
pub fn run_base_nr(
    dataset: &Dataset,
    population: Population,
    budget: usize,
    pool_size: usize,
    market: OpenMarketConfig,
    sgd: SgdConfig,
    seed: u64,
) -> EndToEnd {
    let (train_rows, test_rows) = dataset.split(0.3, seed);
    let test_labels: Vec<u32> = test_rows.iter().map(|&r| dataset.labels[r]).collect();
    let mut rng = clamshell_sim::rng::Rng::new(seed ^ 0xBA5E);
    let mut rows = train_rows.clone();
    rng.shuffle(&mut rows);
    rows.truncate(budget);

    let specs: Vec<TaskSpec> =
        rows.iter().map(|&row| TaskSpec::for_rows(vec![row], vec![dataset.labels[row]])).collect();
    let report = run_open_market(
        population,
        clamshell_crowd::PlatformConfig::default(),
        specs,
        market,
        seed,
    );

    // Passive retrains every `pool_size` completions, in completion order.
    let mut order: Vec<&TaskRecord> = report.tasks.iter().collect();
    order.sort_by_key(|t| t.completed);
    let mut labeled: Vec<Example> = Vec::new();
    let mut curve = LearningCurve::new();
    // Noisy crowd label: single answer, no quorum — sample through the
    // winner's accuracy is already folded into the platform; here the
    // open-market report does not carry labels, so re-sample via truth
    // with the dataset (open market uses one answer/task; the error model
    // is applied when labels are consumed below).
    let mut platform_rng = clamshell_sim::rng::Rng::new(seed ^ 0xC0FFEE);
    for (i, t) in order.iter().enumerate() {
        let row = rows[t.task as usize];
        // Single-worker answer with a typical market accuracy.
        let truth = dataset.labels[row];
        let label = if platform_rng.bernoulli(0.88) {
            truth
        } else {
            let wrong = platform_rng.next_below(dataset.n_classes as u64 - 1) as u32;
            if wrong >= truth {
                wrong + 1
            } else {
                wrong
            }
        };
        labeled.push(Example::new(row, label));
        if (i + 1) % pool_size == 0 || i + 1 == order.len() {
            let mut model: Box<dyn Classifier> = if dataset.n_classes == 2 {
                Box::new(LogisticRegression::new(sgd))
            } else {
                Box::new(SoftmaxRegression::new(dataset.n_classes, sgd))
            };
            model.fit(&dataset.features, &labeled);
            let acc = accuracy(model.as_ref(), &dataset.features, &test_rows, &test_labels);
            curve.push(t.completed.as_secs_f64(), labeled.len(), acc);
        }
    }

    EndToEnd { name: "Base-NR", curve, report }
}

/// Base-R: retainer pool + classic blocking active learning. No straggler
/// mitigation, no maintenance.
pub fn run_base_r(
    dataset: &Dataset,
    population: Population,
    budget: usize,
    pool_size: usize,
    sgd: SgdConfig,
    seed: u64,
) -> EndToEnd {
    let run_cfg =
        RunConfig { pool_size, ng: 1, n_classes: dataset.n_classes, seed, ..Default::default() };
    let learn_cfg = LearningConfig {
        strategy: Strategy::Active { k: (pool_size / 2).max(1) },
        label_budget: budget,
        async_retrain: false,
        sgd,
        seed,
        ..Default::default()
    };
    let out: LearningOutcome = LearningRunner::new(dataset, run_cfg, learn_cfg, population).run();
    EndToEnd { name: "Base-R", curve: out.curve, report: out.report }
}

/// Full CLAMShell: straggler mitigation + PM8 maintenance + hybrid
/// learning with pipelined retraining.
pub fn run_clamshell(
    dataset: &Dataset,
    population: Population,
    budget: usize,
    pool_size: usize,
    sgd: SgdConfig,
    seed: u64,
) -> EndToEnd {
    let run_cfg =
        RunConfig { pool_size, ng: 1, n_classes: dataset.n_classes, seed, ..Default::default() }
            .with_straggler()
            .with_maintenance();
    let learn_cfg = LearningConfig {
        strategy: Strategy::Hybrid { active_frac: 0.5 },
        label_budget: budget,
        async_retrain: true,
        sgd,
        seed,
        ..Default::default()
    };
    let out: LearningOutcome = LearningRunner::new(dataset, run_cfg, learn_cfg, population).run();
    EndToEnd { name: "CLAMShell", curve: out.curve, report: out.report }
}

/// Raw label-acquisition comparison (§6.6's headline: "we also measured
/// the raw time to acquire 500 labels"): CLAMShell's batch machinery vs
/// the open market, no learning involved. Returns `(clamshell, base_nr)`.
pub fn headline_raw_labeling(
    population: Population,
    n_labels: usize,
    pool_size: usize,
    seed: u64,
) -> (RunReport, RunReport) {
    let specs = |seed_off: u64| -> Vec<TaskSpec> {
        (0..n_labels).map(|i| TaskSpec::new(vec![((i as u64 + seed_off) % 2) as u32])).collect()
    };
    let cfg = RunConfig { pool_size, ng: 1, seed, ..Default::default() }
        .with_straggler()
        .with_maintenance();
    let clam = crate::runner::run_batched(cfg, population.clone(), specs(0), pool_size);
    let nr = run_open_market(
        population,
        clamshell_crowd::PlatformConfig::default(),
        specs(0),
        OpenMarketConfig::default(),
        seed,
    );
    (clam, nr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clamshell_learn::datasets::generate::{make_classification, GenConfig};

    fn dataset(seed: u64) -> Dataset {
        make_classification(
            &GenConfig {
                n_samples: 500,
                n_features: 10,
                n_informative: 4,
                n_redundant: 2,
                class_sep: 1.6,
                flip_y: 0.01,
                ..Default::default()
            },
            seed,
        )
    }

    #[test]
    fn open_market_completes_everything() {
        let specs: Vec<TaskSpec> = (0..40).map(|_| TaskSpec::new(vec![0])).collect();
        let r = run_open_market(
            Population::mturk_live(),
            clamshell_crowd::PlatformConfig::default(),
            specs,
            OpenMarketConfig::default(),
            1,
        );
        assert_eq!(r.tasks.len(), 40);
        assert_eq!(r.labels_produced(), 40);
        assert!(r.total_secs() > 0.0);
        assert_eq!(r.termination_rate(), 0.0);
    }

    #[test]
    fn open_market_start_dominated_by_recruitment() {
        // The earliest completion can't beat the fastest recruitment.
        let specs: Vec<TaskSpec> = (0..10).map(|_| TaskSpec::new(vec![0])).collect();
        let pop = Population::mturk_live();
        let floor = pop.recruitment_floor;
        let r = run_open_market(
            pop,
            clamshell_crowd::PlatformConfig::default(),
            specs,
            OpenMarketConfig::default(),
            2,
        );
        let first = r.tasks.iter().map(|t| t.completed.as_secs_f64()).fold(f64::INFINITY, f64::min);
        assert!(first >= floor, "first={first} floor={floor}");
    }

    #[test]
    fn base_nr_learns_slowly_but_learns() {
        let ds = dataset(1);
        let out = run_base_nr(
            &ds,
            Population::mturk_live(),
            150,
            10,
            OpenMarketConfig::default(),
            SgdConfig { epochs: 10, ..Default::default() },
            1,
        );
        assert_eq!(out.name, "Base-NR");
        assert!(out.curve.final_accuracy() > 0.7);
    }

    #[test]
    fn clamshell_beats_base_nr_to_accuracy() {
        let ds = dataset(2);
        let budget = 150;
        let sgd = SgdConfig { epochs: 10, ..Default::default() };
        let clam = run_clamshell(&ds, Population::mturk_live(), budget, 10, sgd, 2);
        let nr = run_base_nr(
            &ds,
            Population::mturk_live(),
            budget,
            10,
            OpenMarketConfig::default(),
            sgd,
            2,
        );
        let threshold = 0.75;
        let t_clam = clam.curve.time_to_accuracy(threshold);
        let t_nr = nr.curve.time_to_accuracy(threshold);
        match (t_clam, t_nr) {
            (Some(a), Some(b)) => {
                assert!(a < b, "CLAMShell {a}s should beat Base-NR {b}s")
            }
            (Some(_), None) => {} // CLAMShell reached it, Base-NR never did
            other => panic!("CLAMShell failed to reach threshold: {other:?}"),
        }
    }

    #[test]
    fn headline_throughput_gap() {
        let (clam, nr) = headline_raw_labeling(Population::mturk_live(), 200, 15, 3);
        assert_eq!(clam.labels_produced(), 200);
        assert_eq!(nr.labels_produced(), 200);
        assert!(
            clam.throughput() > nr.throughput() * 3.0,
            "clam={} nr={}",
            clam.throughput(),
            nr.throughput()
        );
        // And the batch-time variance gap (the paper's 151x headline is a
        // ratio of stds; shape target: order(s) of magnitude).
        assert!(
            nr.batches[0].task_latency_std > clam.mean_batch_std() * 10.0,
            "nr std={} clam std={}",
            nr.batches[0].task_latency_std,
            clam.mean_batch_std()
        );
    }
}
