//! The full-run learning loop: active / passive / hybrid (§5).
//!
//! Each iteration selects points for the crowd to label, runs them as a
//! batch on the [`Runner`], folds the (noisy, majority-aggregated) crowd
//! labels into the training set, and retrains. Retraining is *actually
//! performed* (real SGD on the real features); only its wall-clock cost —
//! the paper's "decision latency" — is simulated, since our host CPU time
//! has no relation to the paper's.
//!
//! * **Active** (`AL`): `k` points by uncertainty sampling per iteration,
//!   retraining blocks the next selection (the classic loop the paper
//!   criticises for limiting parallelism).
//! * **Passive** (`PL`): `p` random points per iteration (full pool
//!   parallelism, no selection signal).
//! * **Hybrid** (`HL`, §5.1): `k = r·p` uncertain + `p − k` random points,
//!   so "each worker in the pool has at least one point to label";
//!   asynchronous (pipelined) retraining hides decision latency behind
//!   crowd labeling at the price of slightly stale selection models
//!   (§5.3).

use crate::config::RunConfig;
use crate::metrics::RunReport;
use crate::runner::Runner;
use crate::task::TaskSpec;
use clamshell_learn::eval::{accuracy, LearningCurve};
use clamshell_learn::model::{Classifier, Example, SgdConfig};
use clamshell_learn::sampling::{select_random, select_uncertain, Uncertainty};
use clamshell_learn::{Dataset, LogisticRegression, SoftmaxRegression};
use clamshell_sim::rng::Rng;
use clamshell_sim::time::{SimDuration, SimTime};
use clamshell_trace::Population;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Point-selection strategy (`Alg` in Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Pure active learning with a fixed selection batch size `k`.
    Active {
        /// Points selected by uncertainty per iteration.
        k: usize,
    },
    /// Pure passive learning: the whole pool labels random points.
    Passive,
    /// CLAMShell's hybrid: a fraction `r = k/p` of the pool labels
    /// uncertain points, the rest labels random points.
    Hybrid {
        /// Fraction of the pool allocated to active selection
        /// (the paper finds `r = 0.5` works well across datasets, §5.2).
        active_frac: f64,
    },
    /// No learning: label points uniformly, never train (NL).
    NoLearn,
}

impl Strategy {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Active { .. } => "AL",
            Strategy::Passive => "PL",
            Strategy::Hybrid { .. } => "HL",
            Strategy::NoLearn => "NL",
        }
    }
}

/// Learning-loop configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearningConfig {
    /// The selection strategy.
    pub strategy: Strategy,
    /// Total crowd labels to acquire.
    pub label_budget: usize,
    /// Fraction of the dataset held out for curve evaluation.
    pub test_frac: f64,
    /// Uncertainty-sampling candidate subsample size (§5.3).
    pub candidate_sample: usize,
    /// Uncertainty measure.
    pub uncertainty: Uncertainty,
    /// SGD hyper-parameters for the retrained models.
    pub sgd: SgdConfig,
    /// Pipelined (asynchronous) retraining: selection uses the latest
    /// *finished* model rather than blocking (§5.3). CLAMShell turns this
    /// on; classic AL baselines block.
    pub async_retrain: bool,
    /// Decision-latency model: fixed cost per retrain, seconds.
    pub decision_base_secs: f64,
    /// Decision-latency model: marginal cost per labeled point, seconds.
    pub decision_per_point_secs: f64,
    /// Weight actively-selected points by `k/p` when retraining (§5.1).
    pub weight_by_ratio: bool,
    /// Evaluate & record a curve point after each retrain.
    pub seed: u64,
}

impl Default for LearningConfig {
    fn default() -> Self {
        LearningConfig {
            strategy: Strategy::Hybrid { active_frac: 0.5 },
            label_budget: 500,
            test_frac: 0.3,
            candidate_sample: 400,
            uncertainty: Uncertainty::LeastConfidence,
            sgd: SgdConfig::default(),
            async_retrain: true,
            decision_base_secs: 1.0,
            decision_per_point_secs: 0.02,
            weight_by_ratio: true,
            seed: 0,
        }
    }
}

/// Everything a learning run produces.
#[derive(Debug)]
pub struct LearningOutcome {
    /// Accuracy-over-time/labels curve (one point per retrain).
    pub curve: LearningCurve,
    /// The underlying crowd run report.
    pub report: RunReport,
    /// Final crowd labels per dataset row.
    pub labels: BTreeMap<usize, u32>,
    /// Strategy short name.
    pub strategy: &'static str,
    /// Final model accuracy on the held-out test set.
    pub final_accuracy: f64,
}

/// Drives a full labeling-and-learning run over a dataset.
pub struct LearningRunner<'d> {
    dataset: &'d Dataset,
    run_cfg: RunConfig,
    learn_cfg: LearningConfig,
    population: Population,
}

/// A trained model with the simulated time at which it became available.
struct ModelVersion {
    ready_at: SimTime,
    model: Box<dyn Classifier>,
}

impl<'d> LearningRunner<'d> {
    /// Build a learning runner. `run_cfg.n_classes` must match the
    /// dataset.
    pub fn new(
        dataset: &'d Dataset,
        run_cfg: RunConfig,
        learn_cfg: LearningConfig,
        population: Population,
    ) -> Self {
        assert_eq!(run_cfg.n_classes, dataset.n_classes, "config/dataset class-count mismatch");
        assert!(learn_cfg.label_budget > 0);
        LearningRunner { dataset, run_cfg, learn_cfg, population }
    }

    fn fresh_model(&self) -> Box<dyn Classifier> {
        if self.dataset.n_classes == 2 {
            Box::new(LogisticRegression::new(self.learn_cfg.sgd))
        } else {
            Box::new(SoftmaxRegression::new(self.dataset.n_classes, self.learn_cfg.sgd))
        }
    }

    fn decision_latency(&self, n_points: usize) -> SimDuration {
        SimDuration::from_secs_f64(
            self.learn_cfg.decision_base_secs
                + self.learn_cfg.decision_per_point_secs * n_points as f64,
        )
    }

    /// Run to the label budget; returns the curve, report, and labels.
    pub fn run(self) -> LearningOutcome {
        let (train_rows, test_rows) =
            self.dataset.split(self.learn_cfg.test_frac, self.learn_cfg.seed);
        let test_labels: Vec<u32> = test_rows.iter().map(|&r| self.dataset.labels[r]).collect();

        let mut runner = Runner::new(self.run_cfg.clone(), self.population.clone());
        runner.warm_up();
        let run_start = runner.now();

        let mut rng = Rng::new(self.learn_cfg.seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        let mut unlabeled: Vec<usize> = train_rows.clone();
        let mut labeled: Vec<Example> = Vec::new();
        let mut label_map: BTreeMap<usize, u32> = BTreeMap::new();
        let mut curve = LearningCurve::new();
        let mut versions: Vec<ModelVersion> = Vec::new();
        let pool = self.run_cfg.pool_size;

        while labeled.len() < self.learn_cfg.label_budget && !unlabeled.is_empty() {
            // --- Selection -------------------------------------------------
            // With synchronous retraining the loop blocks until the last
            // retrain finished; with async it proceeds with the latest
            // finished (possibly stale) model.
            if !self.learn_cfg.async_retrain {
                if let Some(v) = versions.last() {
                    let wait = v.ready_at.since(runner.now());
                    if wait > SimDuration::ZERO {
                        runner.advance(wait);
                    }
                }
            }
            let now = runner.now();
            let current: Option<&ModelVersion> = versions.iter().rev().find(|v| v.ready_at <= now);

            let budget_left = self.learn_cfg.label_budget - labeled.len();
            let (active_k, passive_k) = match self.learn_cfg.strategy {
                Strategy::Active { k } => (k.min(budget_left), 0),
                Strategy::Passive | Strategy::NoLearn => (0, pool.min(budget_left)),
                Strategy::Hybrid { active_frac } => {
                    let k = ((pool as f64 * active_frac).round() as usize).min(pool);
                    let k = k.min(budget_left);
                    let p = (pool - k).min(budget_left - k);
                    (k, p)
                }
            };

            let mut picked: Vec<usize> = Vec::with_capacity(active_k + passive_k);
            let mut is_active = vec![false; active_k + passive_k];
            if active_k > 0 {
                let sel: Vec<usize> = match current {
                    Some(v) if v.model.is_fit() => select_uncertain(
                        v.model.as_ref(),
                        &self.dataset.features,
                        &unlabeled,
                        active_k,
                        self.learn_cfg.candidate_sample,
                        self.learn_cfg.uncertainty,
                        &mut rng,
                    ),
                    _ => select_random(&unlabeled, active_k, &mut rng),
                };
                for (i, _) in sel.iter().enumerate() {
                    is_active[i] = true;
                }
                picked.extend(sel);
            }
            if passive_k > 0 {
                // Random sample from the points not already picked.
                let remaining: Vec<usize> =
                    unlabeled.iter().copied().filter(|r| !picked.contains(r)).collect();
                picked.extend(select_random(&remaining, passive_k, &mut rng));
            }
            if picked.is_empty() {
                break;
            }

            // --- Crowd labeling -------------------------------------------
            let specs: Vec<TaskSpec> = picked
                .iter()
                .map(|&row| TaskSpec::for_rows(vec![row], vec![self.dataset.labels[row]]))
                .collect();
            let batch = runner.run_batch(specs);

            // Fold in the aggregated crowd answers.
            let k_frac = if pool > 0 { active_k as f64 / pool as f64 } else { 1.0 };
            for (i, t) in runner.tasks().iter().filter(|t| t.batch == batch).enumerate() {
                let row = t.spec.rows[0];
                let label = runner.final_labels(t).expect("batch completed")[0];
                label_map.insert(row, label);
                let weight = if self.learn_cfg.weight_by_ratio
                    && matches!(self.learn_cfg.strategy, Strategy::Hybrid { .. })
                    && is_active.get(i).copied().unwrap_or(false)
                    && k_frac > 0.0
                {
                    // Uncertain points are over-represented relative to the
                    // data distribution; down-weight them by the
                    // active-to-passive ratio k/p (§5.1).
                    k_frac
                } else {
                    1.0
                };
                labeled.push(Example::weighted(row, label, weight));
            }
            unlabeled.retain(|r| !label_map.contains_key(r));

            // --- Retrain (NL never trains) ---------------------------------
            if !matches!(self.learn_cfg.strategy, Strategy::NoLearn) {
                let mut model = self.fresh_model();
                model.fit(&self.dataset.features, &labeled);
                let ready_at = runner.now() + self.decision_latency(labeled.len());
                let acc =
                    accuracy(model.as_ref(), &self.dataset.features, &test_rows, &test_labels);
                curve.push(ready_at.since(run_start).as_secs_f64(), labeled.len(), acc);
                versions.push(ModelVersion { ready_at, model });
            }
        }

        let final_accuracy = curve.final_accuracy();
        let report = runner.finish();
        LearningOutcome {
            curve,
            report,
            labels: label_map,
            strategy: self.learn_cfg.strategy.name(),
            final_accuracy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clamshell_learn::datasets::generate::{make_classification, GenConfig};

    fn dataset(sep: f64, seed: u64) -> Dataset {
        make_classification(
            &GenConfig {
                n_samples: 600,
                n_features: 12,
                n_informative: 4,
                n_redundant: 2,
                class_sep: sep,
                flip_y: 0.01,
                ..Default::default()
            },
            seed,
        )
    }

    fn run_strategy(ds: &Dataset, strategy: Strategy, seed: u64) -> LearningOutcome {
        let run_cfg =
            RunConfig { pool_size: 10, ng: 1, seed, ..Default::default() }.with_straggler();
        let learn_cfg = LearningConfig {
            strategy,
            label_budget: 150,
            sgd: SgdConfig { epochs: 12, ..Default::default() },
            seed,
            ..Default::default()
        };
        LearningRunner::new(ds, run_cfg, learn_cfg, Population::mturk_live()).run()
    }

    #[test]
    fn passive_learning_learns() {
        let ds = dataset(1.8, 1);
        let out = run_strategy(&ds, Strategy::Passive, 1);
        assert!(out.final_accuracy > 0.8, "acc={}", out.final_accuracy);
        assert_eq!(out.labels.len(), 150);
        assert!(!out.curve.points.is_empty());
    }

    #[test]
    fn active_learning_learns() {
        let ds = dataset(1.8, 2);
        let out = run_strategy(&ds, Strategy::Active { k: 10 }, 2);
        assert!(out.final_accuracy > 0.8, "acc={}", out.final_accuracy);
    }

    #[test]
    fn hybrid_learning_learns() {
        let ds = dataset(1.8, 1);
        let out = run_strategy(&ds, Strategy::Hybrid { active_frac: 0.5 }, 1);
        assert!(out.final_accuracy > 0.8, "acc={}", out.final_accuracy);
        assert_eq!(out.strategy, "HL");
    }

    #[test]
    fn hybrid_at_least_matches_worse_of_al_pl() {
        // The paper's Figure 15/16 claim: "In all cases, hybrid performs
        // as well as or better than either active or passive learning."
        // Allow a small tolerance per seed; require it on average.
        let mut hl_sum = 0.0;
        let mut floor_sum = 0.0;
        for seed in [1u64, 3, 4] {
            let ds = dataset(1.8, seed);
            let al = run_strategy(&ds, Strategy::Active { k: 10 }, seed).final_accuracy;
            let pl = run_strategy(&ds, Strategy::Passive, seed).final_accuracy;
            let hl = run_strategy(&ds, Strategy::Hybrid { active_frac: 0.5 }, seed).final_accuracy;
            assert!(hl >= al.min(pl) - 0.05, "seed {seed}: hl={hl} al={al} pl={pl}");
            hl_sum += hl;
            floor_sum += al.min(pl);
        }
        assert!(hl_sum >= floor_sum - 0.06, "hl_sum={hl_sum} floor={floor_sum}");
    }

    #[test]
    fn nolearn_labels_without_model() {
        let ds = dataset(1.8, 4);
        let out = run_strategy(&ds, Strategy::NoLearn, 4);
        assert_eq!(out.labels.len(), 150);
        assert!(out.curve.points.is_empty());
        assert_eq!(out.final_accuracy, 0.0);
    }

    #[test]
    fn curve_is_monotone_in_labels_and_time() {
        let ds = dataset(1.5, 5);
        let out = run_strategy(&ds, Strategy::Passive, 5);
        let pts = &out.curve.points;
        assert!(pts.windows(2).all(|w| w[0].labels_acquired < w[1].labels_acquired));
        assert!(pts.windows(2).all(|w| w[0].time_secs <= w[1].time_secs));
    }

    #[test]
    fn budget_respected_exactly() {
        let ds = dataset(1.5, 6);
        let out = run_strategy(&ds, Strategy::Hybrid { active_frac: 0.5 }, 6);
        assert_eq!(out.labels.len(), 150);
        // No row labeled twice (cache property).
        assert_eq!(out.labels.keys().collect::<std::collections::BTreeSet<_>>().len(), 150);
    }

    #[test]
    fn async_is_not_slower_than_sync() {
        // Pipelined retraining should never make the run take longer.
        let ds = dataset(1.5, 7);
        let mk = |async_retrain: bool| {
            let run_cfg = RunConfig { pool_size: 10, ng: 1, seed: 7, ..Default::default() };
            let learn_cfg = LearningConfig {
                strategy: Strategy::Active { k: 10 },
                label_budget: 100,
                async_retrain,
                decision_base_secs: 10.0, // exaggerate decision latency
                sgd: SgdConfig { epochs: 8, ..Default::default() },
                seed: 7,
                ..Default::default()
            };
            LearningRunner::new(&ds, run_cfg, learn_cfg, Population::mturk_live())
                .run()
                .report
                .total_secs()
        };
        let async_secs = mk(true);
        let sync_secs = mk(false);
        assert!(async_secs <= sync_secs, "async={async_secs} sync={sync_secs}");
    }
}
