//! # clamshell-core
//!
//! The CLAMShell system (Haas et al., VLDB 2015): fast crowd data labeling
//! via straggler mitigation, retainer-pool maintenance, and hybrid
//! active/passive learning.
//!
//! Architecture follows Figure 1 of the paper:
//!
//! ```text
//!          ┌──────────┐  batch   ┌───────────┐  tasks  ┌────────────────┐
//!  user →  │  Batcher │ ───────► │ LifeGuard │ ──────► │ Crowd platform │
//!          │ +Selector│          │ Scheduler │         │  (slots S1..Sn)│
//!          └────▲─────┘          │ Mitigator │         └──────┬─────────┘
//!               │ labels         │ Maintainer│                │ answers
//!               └────────────────┴───────────◄────────────────┘
//! ```
//!
//! * [`config`] — every experimental knob from Table 3 (`PMℓ`, `SM`, `Np`,
//!   `Ng`, `R`, `Alg`) plus quality-control quorum.
//! * [`adversity`] — deterministic fault injection: worker churn,
//!   spammer/adversarial/sleepy archetypes, platform outages, bursty
//!   arrivals, heavy-tailed latency inflation (named catalog in the
//!   `clamshell-scenarios` crate).
//! * [`task`] — tasks, assignments and their lifecycles.
//! * [`lifeguard`] — straggler-mitigation routing policies (§4.1).
//! * [`maintainer`] — pool maintenance: per-worker latency accounting, the
//!   one-sided eviction test, TermEst (§4.2–§4.3).
//! * [`poolmodel`] — the closed-form pool-convergence model of §4.2.
//! * [`runner`] — the deterministic discrete-event executor that binds the
//!   policies to the simulated crowd ([`clamshell_crowd`]).
//! * [`metrics`] — run reports: per-task/assignment logs, per-batch
//!   latency/variance, cost; everything Figures 3–14 need.
//! * [`learning`] — the full-run loop: active / passive / hybrid learning
//!   with pipelined retraining (§5).
//! * [`baselines`] — `Base-NR` and `Base-R` from §6.6 plus the full
//!   CLAMShell configuration.

#![warn(missing_docs)]

pub mod adversity;
pub mod baselines;
pub mod batcher;
pub mod config;
pub mod learning;
pub mod lifeguard;
pub mod maintainer;
pub mod metrics;
pub mod poolmodel;
pub mod runner;
pub mod task;

pub use adversity::{AdversityConfig, BurstFault, ChurnFault, OutageFault};
pub use batcher::{Batcher, BatcherConfig};
pub use config::{
    CheckoutStrategy, MaintenanceConfig, MaintenanceObjective, PoolConfig, QcMode, RunConfig,
    StragglerConfig,
};
pub use learning::{LearningConfig, LearningOutcome, LearningRunner, Strategy};
pub use lifeguard::RoutingPolicy;
pub use metrics::{BatchStats, RunReport};
pub use runner::{run_batched, BatchSizer, LifecycleCounts, RetiredRows, Runner};
pub use task::TaskSpec;
