//! Reconciliation audit: the flight recorder and the `RunReport`
//! counters are maintained by separate code paths, and every lifecycle
//! event the recorder captures must agree exactly with the aggregate the
//! report publishes. Pinned as a regression test so counter/trace drift
//! can never ship silently.

use clamshell_core::adversity::{AdversityConfig, ChurnFault, OutageFault};
use clamshell_core::config::{MaintenanceConfig, ObsConfig, PoolConfig, RunConfig};
use clamshell_core::runner::run_batched;
use clamshell_core::task::TaskSpec;
use clamshell_sim::time::SimDuration;
use clamshell_trace::Population;

fn specs(n: usize, ng: usize) -> Vec<TaskSpec> {
    (0..n).map(|i| TaskSpec::new(vec![(i % 2) as u32; ng])).collect()
}

/// Obs with a ring large enough that nothing is ever dropped — the
/// reconciliation needs the complete event record.
fn obs_all() -> ObsConfig {
    ObsConfig::with_ring(1 << 16)
}

fn reconcile(cfg: RunConfig, n_tasks: usize, label: &str) {
    let report = run_batched(cfg, Population::mturk_live(), specs(n_tasks, 5), 8);
    let obs = report.obs.as_ref().expect("instrumented run");
    assert_eq!(obs.dropped, 0, "{label}: ring must be lossless for this audit");
    assert_eq!(
        obs.event_count("walkout"),
        report.workers_departed,
        "{label}: every recorded walkout must tally with workers_departed"
    );
    assert_eq!(
        obs.event_count("reserve_timeout"),
        report.reserve_expired,
        "{label}: every recorded reserve timeout must tally with reserve_expired"
    );
    assert_eq!(
        obs.event_count("stale_retired"),
        report.stale_retired,
        "{label}: every recorded stale retirement must tally with stale_retired"
    );
    assert_eq!(
        obs.event_count("maintenance_evict"),
        report.workers_evicted,
        "{label}: every recorded eviction must tally with workers_evicted"
    );
    // The retained events and the registry counters are fed by the same
    // `record` call; if they ever diverge the ring is corrupting data.
    for ev in ["walkout", "reserve_timeout", "stale_retired", "maintenance_evict"] {
        assert_eq!(
            obs.event_count(ev),
            obs.counter(&format!("runner.{ev}")),
            "{label}: counter vs ring drift for {ev}"
        );
    }
    // Pool membership flow is balanced: everyone who joined also left
    // (the drain in `finish` empties the pool).
    assert_eq!(
        obs.event_count("pool_join"),
        obs.event_count("pool_leave"),
        "{label}: pool joins and leaves must balance at drain"
    );
}

#[test]
fn benign_run_reconciles() {
    let cfg = RunConfig { obs: obs_all(), pool_size: 8, seed: 50, ..Default::default() };
    reconcile(cfg, 16, "benign");
}

#[test]
fn churn_walkouts_reconcile() {
    let cfg = RunConfig { obs: obs_all(), pool_size: 8, seed: 51, ..Default::default() }
        .with_adversity(AdversityConfig {
            churn: Some(ChurnFault { walkout_prob: 0.3, ..Default::default() }),
            ..AdversityConfig::NONE
        });
    let report = run_batched(cfg.clone(), Population::mturk_live(), specs(24, 5), 8);
    assert!(report.workers_departed > 0, "churn must actually fire for the audit to bite");
    reconcile(cfg, 24, "churn");
}

#[test]
fn maintenance_evictions_reconcile() {
    let cfg = RunConfig {
        obs: obs_all(),
        pool_size: 8,
        seed: 52,
        maintenance: Some(MaintenanceConfig {
            threshold_per_label_secs: 4.0,
            min_tasks: 1,
            ..MaintenanceConfig::pm8()
        }),
        ..Default::default()
    };
    let report = run_batched(cfg.clone(), Population::mturk_live(), specs(64, 5), 8);
    assert!(report.workers_evicted > 0, "aggressive threshold must evict");
    reconcile(cfg, 64, "maintenance");
}

#[test]
fn blackout_generations_reconcile() {
    let cfg = RunConfig {
        obs: obs_all(),
        pool_size: 8,
        seed: 53,
        pool: PoolConfig { generations: true, ..Default::default() },
        ..Default::default()
    }
    .with_adversity(AdversityConfig {
        outage: Some(OutageFault { mean_uptime_secs: 120.0, mean_outage_secs: 45.0 }),
        ..AdversityConfig::NONE
    });
    let report = run_batched(cfg.clone(), Population::mturk_live(), specs(24, 5), 8);
    assert!(report.stale_retired > 0, "blackouts must retire stale members");
    let obs = report.obs.as_ref().unwrap();
    assert!(obs.event_count("outage_defer") > 0, "outages must defer events");
    assert!(obs.event_count("outage_resume") > 0, "deferred windows must resume");
    reconcile(cfg, 24, "blackout");
}

#[test]
fn reserve_timeouts_reconcile() {
    let cfg = RunConfig {
        obs: obs_all(),
        pool_size: 8,
        seed: 54,
        maintenance: Some(MaintenanceConfig {
            threshold_per_label_secs: 1000.0,
            ..MaintenanceConfig::pm8()
        }),
        pool: PoolConfig { idle_timeout: Some(SimDuration::from_secs(30)), ..Default::default() },
        ..Default::default()
    };
    // Two batches separated by a long idle window so reserve recruits
    // land, sit out their 30s timeout, and expire (the same shape as the
    // runner's own idle-timeout test).
    let mut runner = clamshell_core::runner::Runner::new(cfg, Population::mturk_live());
    runner.warm_up();
    runner.run_batch(specs(8, 5));
    runner.advance(SimDuration::from_mins(60));
    runner.run_batch(specs(8, 5));
    let report = runner.finish();
    assert!(report.reserve_expired > 0, "timeouts must fire for the audit to bite");
    let obs = report.obs.as_ref().unwrap();
    assert_eq!(obs.event_count("reserve_timeout"), report.reserve_expired);
    assert_eq!(obs.event_count("pool_join"), obs.event_count("pool_leave"));
}

#[test]
fn composed_adversity_reconciles() {
    let cfg = RunConfig { obs: obs_all(), pool_size: 8, seed: 55, ..Default::default() }
        .with_adversity(AdversityConfig {
            churn: Some(ChurnFault::default()),
            outage: Some(OutageFault::default()),
            ..AdversityConfig::NONE
        })
        .with_straggler()
        .with_maintenance();
    reconcile(cfg, 24, "composed");
}
