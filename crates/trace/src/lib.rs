//! # clamshell-trace
//!
//! Worker populations calibrated to the crowd deployments studied in the
//! CLAMShell paper (Haas et al., VLDB 2015, §2.1 and §6.1).
//!
//! The paper's simulator replays traces of a ~60,000-task medical
//! MTurk deployment: for each worker it extracts mean labeling latency
//! `μ_i`, latency variance `σ_i²`, and mean accuracy `λ_i`, then samples a
//! worker's latency per assignment i.i.d. from `N(μ_i, σ_i²)`.
//! The raw traces are proprietary, so this crate instead provides
//! *generative populations* fit to every summary statistic the paper
//! publishes (see [`calibration`]) plus presets for controlled studies.
//!
//! * [`profile::WorkerProfile`] — the per-worker triple `(μ_i, σ_i, λ_i)`
//!   plus retainer patience.
//! * [`population::Population`] — distributions over profiles;
//!   [`population::Population::medical`] reproduces the long-tailed
//!   deployment of §2.1, [`population::Population::mturk_live`] matches the
//!   seconds-per-label scale of the live experiments (§6.2–§6.4), and
//!   [`population::Population::bimodal`] gives the two-worker-type model
//!   used by the paper's TermEst derivation (§4.3).
//! * [`cdf`] — per-worker mean/std CDFs: the data series behind Figure 2.
//! * [`archetype`] — adversarial population overlays (spammer /
//!   adversarial / sleepy workers) for the adversity scenarios.

#![warn(missing_docs)]

pub mod archetype;
pub mod calibration;
pub mod cdf;
pub mod population;
pub mod profile;

pub use archetype::{Archetype, ArchetypeMix};
pub use population::Population;
pub use profile::WorkerProfile;
