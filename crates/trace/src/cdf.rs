//! Worker-latency CDFs: the data behind Figure 2 of the paper
//! ("Distribution of worker latencies" — CDFs of per-worker latency means
//! and standard deviations from the medical deployment).

use crate::population::Population;
use clamshell_sim::rng::Rng;
use clamshell_sim::stats::ecdf;
use serde::{Deserialize, Serialize};

/// The two empirical CDFs plotted in Figure 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerLatencyCdfs {
    /// Sorted per-worker mean latencies (seconds) with cumulative probs.
    pub mean_values: Vec<f64>,
    /// Cumulative probabilities for `mean_values`.
    pub mean_probs: Vec<f64>,
    /// Sorted per-worker latency standard deviations (seconds).
    pub std_values: Vec<f64>,
    /// Cumulative probabilities for `std_values`.
    pub std_probs: Vec<f64>,
}

impl WorkerLatencyCdfs {
    /// Sample `n` workers from `pop` and compute both CDFs.
    pub fn from_population(pop: &Population, n: usize, seed: u64) -> Self {
        let mut rng = Rng::new(seed);
        let profiles = pop.sample_profiles(n, &mut rng);
        let means: Vec<f64> = profiles.iter().map(|p| p.mean_latency).collect();
        let stds: Vec<f64> = profiles.iter().map(|p| p.latency_std).collect();
        let (mean_values, mean_probs) = ecdf(&means);
        let (std_values, std_probs) = ecdf(&stds);
        WorkerLatencyCdfs { mean_values, mean_probs, std_values, std_probs }
    }

    /// Value of the mean-latency CDF at probability `p`.
    pub fn mean_quantile(&self, p: f64) -> f64 {
        clamshell_sim::stats::percentile_sorted(&self.mean_values, p)
    }

    /// Value of the std-latency CDF at probability `p`.
    pub fn std_quantile(&self, p: f64) -> f64 {
        clamshell_sim::stats::percentile_sorted(&self.std_values, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdfs_are_monotone_and_sized() {
        let c = WorkerLatencyCdfs::from_population(&Population::medical(), 2000, 1);
        assert_eq!(c.mean_values.len(), 2000);
        assert!(c.mean_values.windows(2).all(|w| w[0] <= w[1]));
        assert!(c.std_values.windows(2).all(|w| w[0] <= w[1]));
        assert!((c.mean_probs.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn figure2_shape_fast_workers_with_slow_outliers() {
        // Figure 2's qualitative claim: "average worker speeds are spread
        // out from tens of seconds to hours" and "even workers who are
        // very fast on average (~1 minute) can take as long as an hour or
        // more": the mean CDF spans ≥2 orders of magnitude.
        let c = WorkerLatencyCdfs::from_population(&Population::medical(), 20_000, 2);
        let lo = c.mean_quantile(0.05);
        let hi = c.mean_quantile(0.99);
        assert!(lo < 60.0, "5th percentile should be tens of seconds, got {lo}");
        assert!(hi > 3600.0, "99th percentile should exceed an hour, got {hi}");
    }
}
