//! Generative worker populations.
//!
//! A [`Population`] is a distribution over [`WorkerProfile`]s plus the
//! market-level recruitment-latency distribution. Three presets cover the
//! paper's settings; fully custom populations support ablations.

use crate::calibration::{medical_work, recruitment};
use crate::profile::WorkerProfile;
use clamshell_sim::dist::{Beta, LogNormal, Sample};
use clamshell_sim::rng::Rng;
use clamshell_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// How a worker's per-label latency std relates to their mean: the trace
/// analysis shows inconsistency grows with slowness (Figure 2's std CDF
/// tracks the mean CDF), so we model `σ_i = ratio_i · μ_i` with `ratio_i`
/// drawn log-normally.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StdModel {
    /// Median of the `σ_i / μ_i` ratio.
    pub ratio_median: f64,
    /// Log-space sigma of the ratio distribution.
    pub ratio_sigma: f64,
}

/// A generative population of crowd workers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Population {
    /// Human-readable name used in reports.
    pub name: String,
    /// Distribution of per-worker mean per-label latency `μ_i` (seconds).
    pub mean_latency: LogNormal,
    /// Relation of `σ_i` to `μ_i`.
    pub std_model: StdModel,
    /// Distribution of worker accuracy `λ_i`, mapped into
    /// `[min_accuracy, 1]`.
    pub accuracy: Beta,
    /// Floor applied to sampled accuracies (crowd platforms pre-filter
    /// via approval-rate qualifications; §6.1 requires 85% approval).
    pub min_accuracy: f64,
    /// Recruitment latency distribution (seconds until a new posting is
    /// accepted by some worker).
    pub recruitment: LogNormal,
    /// Floor on recruitment latency, seconds.
    pub recruitment_floor: f64,
    /// Mean retainer patience, seconds (workers abandon an idle pool).
    pub patience_mean_secs: f64,
    /// Physical floor on per-label seconds (see
    /// [`WorkerProfile::min_label_secs`]).
    pub min_label_secs: f64,
    /// Per-task straggler-spike probability (see
    /// [`WorkerProfile::spike_prob`]). The long within-worker tails of
    /// §2.1 ("even workers who are very fast on average can take as long
    /// as an hour or more") come from this mixture.
    pub spike_prob: f64,
    /// Median multiplier of a spike.
    pub spike_mult_median: f64,
    /// Log-space sigma of the spike multiplier.
    pub spike_mult_sigma: f64,
}

impl Population {
    /// The medical-deployment population of §2.1: per-worker mean latency
    /// is log-normal with median 4 min and p90 ≈ 1.1 h; recruitment has
    /// median 36 min with a 5-minute floor. This is the long-tailed,
    /// minutes-scale world of Figure 2.
    pub fn medical() -> Population {
        Population {
            name: "medical".into(),
            mean_latency: LogNormal::from_median_quantile(
                medical_work::MEAN_MEDIAN_SECS,
                0.9,
                medical_work::MEAN_P90_SECS,
            ),
            // std median 2 min at mean median 4 min => ratio median 0.5;
            // p90 of stds (3h) vs p90 of means (1.1h) => heavy ratio tail.
            std_model: StdModel { ratio_median: 0.5, ratio_sigma: 1.0 },
            accuracy: Beta::new(9.0, 1.0),
            min_accuracy: 0.55,
            recruitment: LogNormal::from_median_quantile(
                recruitment::MEDIAN_SECS,
                0.84, // one std above the median ≈ median + 9 min
                recruitment::MEDIAN_SECS + recruitment::STD_SECS,
            ),
            recruitment_floor: recruitment::MIN_SECS,
            patience_mean_secs: 45.0 * 60.0,
            min_label_secs: 2.0,
            spike_prob: 0.06,
            spike_mult_median: 8.0,
            spike_mult_sigma: 0.7,
        }
    }

    /// The live-experiment population of §6.2–§6.4: seconds-per-label
    /// scale, calibrated so the fast/medium/slow buckets of Figures 5
    /// and 8 (<4 s, 5–7 s, ≥8 s per label) are all well populated and the
    /// optimal maintenance threshold lands at PM8 like the paper finds.
    pub fn mturk_live() -> Population {
        Population {
            name: "mturk_live".into(),
            // median 4.5 s/label, p90 = 10 s/label → ~42% fast, ~18% slow.
            mean_latency: LogNormal::from_median_quantile(4.5, 0.9, 10.0),
            std_model: StdModel { ratio_median: 0.45, ratio_sigma: 0.6 },
            accuracy: Beta::new(14.0, 2.0),
            min_accuracy: 0.6,
            // Retainer recruitment: re-posted tasks get picked up in a few
            // minutes (the paper re-posts every 3 minutes until the pool
            // fills).
            recruitment: LogNormal::from_median_quantile(120.0, 0.9, 420.0),
            recruitment_floor: 15.0,
            patience_mean_secs: 25.0 * 60.0,
            min_label_secs: 1.0,
            spike_prob: 0.05,
            spike_mult_median: 6.0,
            spike_mult_sigma: 0.6,
        }
    }

    /// A two-mode population: a `fast_frac` share of consistent fast
    /// workers and the rest slow and erratic. This mirrors the paper's
    /// analytical model in §4.2–§4.3 (fast mean `μ_f`, slow mean `μ_s`)
    /// and makes convergence predictions easy to verify exactly.
    pub fn bimodal(fast_frac: f64, fast_mean: f64, slow_mean: f64) -> Population {
        assert!((0.0..=1.0).contains(&fast_frac), "fast_frac in [0,1]");
        assert!(fast_mean > 0.0 && slow_mean > fast_mean, "need slow > fast > 0");
        // Encode bimodality through a custom sampler; represented here as
        // a log-normal fit between the two modes for serialization, the
        // actual sampling uses the dedicated branch in `sample_profile`.
        Population {
            name: format!("bimodal({fast_frac:.2},{fast_mean},{slow_mean})"),
            mean_latency: LogNormal::from_median_quantile(
                fast_mean * (slow_mean / fast_mean).powf(1.0 - fast_frac),
                0.9,
                slow_mean * 1.2,
            ),
            std_model: StdModel { ratio_median: 0.3, ratio_sigma: 0.3 },
            accuracy: Beta::new(14.0, 2.0),
            min_accuracy: 0.6,
            recruitment: LogNormal::from_median_quantile(120.0, 0.9, 420.0),
            recruitment_floor: 15.0,
            patience_mean_secs: 25.0 * 60.0,
            min_label_secs: 0.5,
            spike_prob: 0.0,
            spike_mult_median: 1.0,
            spike_mult_sigma: 0.0,
        }
    }

    /// Does this population use the explicit bimodal sampler?
    fn bimodal_params(&self) -> Option<(f64, f64, f64)> {
        let n = self.name.strip_prefix("bimodal(")?.strip_suffix(')')?;
        let mut it = n.split(',');
        let f = it.next()?.parse().ok()?;
        let a = it.next()?.parse().ok()?;
        let b = it.next()?.parse().ok()?;
        Some((f, a, b))
    }

    /// Sample one worker profile.
    pub fn sample_profile(&self, rng: &mut Rng) -> WorkerProfile {
        let mean_latency = if let Some((frac, fast, slow)) = self.bimodal_params() {
            if rng.bernoulli(frac) {
                // Fast mode: tight spread around the fast mean.
                fast * (1.0 + 0.1 * rng.next_gaussian()).max(0.5)
            } else {
                slow * (1.0 + 0.2 * rng.next_gaussian()).max(0.5)
            }
        } else {
            self.mean_latency.sample(rng)
        }
        .max(self.min_label_secs);

        let ratio = LogNormal::new(self.std_model.ratio_median.ln(), self.std_model.ratio_sigma)
            .sample(rng);
        let latency_std = (ratio * mean_latency).max(0.05);

        let accuracy = self.accuracy.sample(rng).max(self.min_accuracy).min(0.995);

        let patience = SimDuration::from_secs_f64(
            clamshell_sim::dist::Exponential::from_mean(self.patience_mean_secs).sample(rng),
        );

        WorkerProfile {
            mean_latency,
            latency_std,
            accuracy,
            patience,
            min_label_secs: self.min_label_secs,
            spike_prob: self.spike_prob,
            spike_mult_median: self.spike_mult_median,
            spike_mult_sigma: self.spike_mult_sigma,
        }
    }

    /// Sample `n` profiles.
    pub fn sample_profiles(&self, n: usize, rng: &mut Rng) -> Vec<WorkerProfile> {
        (0..n).map(|_| self.sample_profile(rng)).collect()
    }

    /// Sample a recruitment latency (time until a newly posted retainer
    /// task is accepted).
    pub fn sample_recruitment(&self, rng: &mut Rng) -> SimDuration {
        let secs = self.recruitment.sample(rng).max(self.recruitment_floor);
        SimDuration::from_secs_f64(secs)
    }

    /// The fraction of workers whose mean latency falls below `threshold`
    /// seconds (the `1 − q` of the paper's pool-convergence model, §4.2).
    /// Estimated by Monte Carlo for bimodal populations and analytically
    /// otherwise.
    pub fn frac_below(&self, threshold: f64) -> f64 {
        if let Some((frac, fast, slow)) = self.bimodal_params() {
            // Modes are tight; treat as point masses.
            let mut p = 0.0;
            if fast < threshold {
                p += frac;
            }
            if slow < threshold {
                p += 1.0 - frac;
            }
            p
        } else {
            let z = (threshold.max(1e-12).ln() - self.mean_latency.mu())
                / self.mean_latency.sigma().max(1e-12);
            clamshell_sim::dist::standard_normal_cdf(z)
        }
    }

    /// Mean of per-worker mean latency conditioned below (`fast`, `μ_f`)
    /// and above (`slow`, `μ_s`) a threshold, by Monte Carlo. Used to
    /// verify the pool-convergence model against simulation.
    pub fn conditional_means(&self, threshold: f64, n: usize, rng: &mut Rng) -> (f64, f64) {
        let mut fast = clamshell_sim::stats::OnlineStats::new();
        let mut slow = clamshell_sim::stats::OnlineStats::new();
        for _ in 0..n {
            let p = self.sample_profile(rng);
            if p.mean_latency < threshold {
                fast.push(p.mean_latency);
            } else {
                slow.push(p.mean_latency);
            }
        }
        (fast.mean(), slow.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clamshell_sim::stats::percentile;

    fn means(pop: &Population, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        pop.sample_profiles(n, &mut rng).iter().map(|p| p.mean_latency).collect()
    }

    #[test]
    fn medical_population_matches_published_quantiles() {
        let pop = Population::medical();
        let ms = means(&pop, 50_000, 1);
        let median = percentile(&ms, 0.5);
        let p90 = percentile(&ms, 0.9);
        // Median of per-worker means: 4 minutes (±10%).
        assert!((median / medical_work::MEAN_MEDIAN_SECS - 1.0).abs() < 0.1, "median={median}");
        // p90 of per-worker means: ~1.1 hours (±15%).
        assert!((p90 / medical_work::MEAN_P90_SECS - 1.0).abs() < 0.15, "p90={p90}");
    }

    #[test]
    fn medical_population_has_fast_tail_like_fastest_worker() {
        // The deployment's fastest worker averaged 28.5s; a long-tailed fit
        // must put non-trivial mass at or below that speed.
        let pop = Population::medical();
        let ms = means(&pop, 20_000, 2);
        let frac_fast = ms.iter().filter(|&&m| m <= medical_work::FASTEST_MEAN_SECS).count() as f64
            / ms.len() as f64;
        assert!(frac_fast > 0.02 && frac_fast < 0.35, "frac_fast={frac_fast}");
    }

    #[test]
    fn live_population_buckets_are_all_populated() {
        use crate::calibration::live_work::*;
        let pop = Population::mturk_live();
        let ms = means(&pop, 50_000, 3);
        let fast = ms.iter().filter(|&&m| m < FAST_BELOW_SECS).count() as f64 / ms.len() as f64;
        let slow = ms.iter().filter(|&&m| m >= SLOW_ABOVE_SECS).count() as f64 / ms.len() as f64;
        assert!(fast > 0.25 && fast < 0.6, "fast frac={fast}");
        assert!(slow > 0.08 && slow < 0.35, "slow frac={slow}");
    }

    #[test]
    fn recruitment_respects_floor_and_median() {
        let pop = Population::medical();
        let mut rng = Rng::new(4);
        let xs: Vec<f64> =
            (0..20_000).map(|_| pop.sample_recruitment(&mut rng).as_secs_f64()).collect();
        assert!(xs.iter().all(|&x| x >= recruitment::MIN_SECS));
        let median = percentile(&xs, 0.5);
        assert!((median / recruitment::MEDIAN_SECS - 1.0).abs() < 0.1, "median={median}");
    }

    #[test]
    fn accuracy_respects_floor_and_cap() {
        let pop = Population::mturk_live();
        let mut rng = Rng::new(5);
        for p in pop.sample_profiles(5000, &mut rng) {
            assert!(p.accuracy >= pop.min_accuracy && p.accuracy <= 0.995);
        }
    }

    #[test]
    fn bimodal_modes_and_fractions() {
        let pop = Population::bimodal(0.6, 3.0, 12.0);
        let ms = means(&pop, 20_000, 6);
        let fast = ms.iter().filter(|&&m| m < 7.5).count() as f64 / ms.len() as f64;
        assert!((fast - 0.6).abs() < 0.03, "fast frac={fast}");
        // frac_below agrees with the construction.
        assert!((pop.frac_below(7.5) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn frac_below_analytic_matches_montecarlo() {
        let pop = Population::mturk_live();
        let ms = means(&pop, 100_000, 7);
        for &t in &[3.0, 4.5, 8.0, 12.0] {
            let mc = ms.iter().filter(|&&m| m < t).count() as f64 / ms.len() as f64;
            let an = pop.frac_below(t);
            assert!((mc - an).abs() < 0.02, "t={t} mc={mc} an={an}");
        }
    }

    #[test]
    fn conditional_means_straddle_threshold() {
        let pop = Population::mturk_live();
        let mut rng = Rng::new(8);
        let (f, s) = pop.conditional_means(8.0, 50_000, &mut rng);
        assert!(f < 8.0 && s > 8.0, "f={f} s={s}");
    }

    #[test]
    fn profiles_are_deterministic_per_seed() {
        let pop = Population::medical();
        let a = means(&pop, 100, 42);
        let b = means(&pop, 100, 42);
        assert_eq!(a, b);
    }
}
