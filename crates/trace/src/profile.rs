//! Per-worker generative profiles.

use clamshell_sim::dist::{Sample, TruncNormal};
use clamshell_sim::rng::Rng;
use clamshell_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// The generative model of a single crowd worker, mirroring the per-worker
/// statistics the paper extracts from its deployment traces (§6.1):
/// mean labeling latency `μ_i`, latency standard deviation `σ_i`, and mean
/// accuracy `λ_i`. Latencies here are **per record label, in seconds**; a
/// task grouping `Ng` records takes the sum of `Ng` record draws
/// (mean `Ng·μ_i`, std `√Ng·σ_i`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerProfile {
    /// Mean per-label work latency `μ_i`, seconds.
    pub mean_latency: f64,
    /// Per-label latency standard deviation `σ_i`, seconds.
    pub latency_std: f64,
    /// Probability of answering a record correctly, `λ_i ∈ [0, 1]`.
    pub accuracy: f64,
    /// How long the worker will sit idle in a retainer pool before
    /// abandoning it.
    pub patience: SimDuration,
    /// Physical floor on per-label time, seconds: even the fastest worker
    /// needs this long to read and click (the reason PMℓ = 2s "goes beyond
    /// the point where even fast workers are able to complete tasks",
    /// Fig. 8).
    pub min_label_secs: f64,
    /// Probability that a task hits a distraction spike. §4.1 observes
    /// that "even workers who are very fast on average (∼1 minute) can
    /// take as long as an hour or more to complete some tasks" — a
    /// truncated normal alone cannot produce those outliers, so task
    /// latency is a mixture: with probability `spike_prob` the sampled
    /// duration is multiplied by a heavy log-normal factor.
    pub spike_prob: f64,
    /// Median of the spike multiplier (log-normal).
    pub spike_mult_median: f64,
    /// Log-space sigma of the spike multiplier.
    pub spike_mult_sigma: f64,
}

impl WorkerProfile {
    /// A deterministic profile useful in unit tests (no spikes).
    pub fn fixed(mean_latency: f64, latency_std: f64, accuracy: f64) -> Self {
        WorkerProfile {
            mean_latency,
            latency_std,
            accuracy,
            patience: SimDuration::from_mins(60),
            min_label_secs: 0.5,
            spike_prob: 0.0,
            spike_mult_median: 1.0,
            spike_mult_sigma: 0.0,
        }
    }

    /// The same profile with a straggler-spike mixture enabled.
    pub fn with_spikes(mut self, prob: f64, mult_median: f64, mult_sigma: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob));
        assert!(mult_median >= 1.0 && mult_sigma >= 0.0);
        self.spike_prob = prob;
        self.spike_mult_median = mult_median;
        self.spike_mult_sigma = mult_sigma;
        self
    }

    /// Latency distribution for a task that groups `ng` records
    /// (`Simple = 1`, `Medium = 5`, `Complex = 10` in Table 3).
    pub fn task_latency_dist(&self, ng: u32) -> TruncNormal {
        let ng = ng.max(1) as f64;
        TruncNormal::new(
            self.mean_latency * ng,
            self.latency_std * ng.sqrt(),
            self.min_label_secs * ng,
        )
    }

    /// Sample the wall-clock seconds this worker takes for a task of `ng`
    /// records, including the occasional distraction spike.
    pub fn sample_task_secs(&self, ng: u32, rng: &mut Rng) -> f64 {
        let base = self.task_latency_dist(ng).sample(rng);
        if self.spike_prob > 0.0 && rng.bernoulli(self.spike_prob) {
            let mult = clamshell_sim::dist::LogNormal::new(
                self.spike_mult_median.ln(),
                self.spike_mult_sigma,
            )
            .sample(rng)
            .max(1.0);
            base * mult
        } else {
            base
        }
    }

    /// Sample the task duration as a [`SimDuration`].
    pub fn sample_task_duration(&self, ng: u32, rng: &mut Rng) -> SimDuration {
        SimDuration::from_secs_f64(self.sample_task_secs(ng, rng))
    }

    /// Sample one label for a record whose true class is `truth`, out of
    /// `n_classes`. Correct with probability `λ_i`, otherwise uniform over
    /// the wrong classes (the paper's error model: "return the correct
    /// label with probability λi and the incorrect label with probability
    /// 1 − λi").
    pub fn sample_label(&self, truth: u32, n_classes: u32, rng: &mut Rng) -> u32 {
        debug_assert!(n_classes >= 2, "need at least two classes");
        debug_assert!(truth < n_classes, "truth out of range");
        if rng.bernoulli(self.accuracy) {
            truth
        } else {
            // Uniform over the n_classes - 1 wrong answers.
            let wrong = rng.next_below(n_classes as u64 - 1) as u32;
            if wrong >= truth {
                wrong + 1
            } else {
                wrong
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_latency_scales_with_ng() {
        let p = WorkerProfile::fixed(4.0, 1.0, 0.9);
        let d1 = p.task_latency_dist(1);
        let d10 = p.task_latency_dist(10);
        assert!((d1.raw_mean() - 4.0).abs() < 1e-12);
        assert!((d10.raw_mean() - 40.0).abs() < 1e-12);
        assert!(d10.floor() > d1.floor());
    }

    #[test]
    fn sampled_latency_respects_floor() {
        let p = WorkerProfile::fixed(1.0, 10.0, 0.9); // huge variance
        let mut rng = Rng::new(1);
        for _ in 0..5000 {
            assert!(p.sample_task_secs(2, &mut rng) >= 1.0);
        }
    }

    #[test]
    fn sampled_mean_close_to_profile_mean() {
        let p = WorkerProfile::fixed(6.0, 1.5, 0.9);
        let mut rng = Rng::new(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| p.sample_task_secs(5, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 30.0).abs() < 0.3, "mean={mean}");
    }

    #[test]
    fn spikes_produce_rare_large_outliers() {
        let p = WorkerProfile::fixed(4.0, 0.5, 0.9).with_spikes(0.05, 6.0, 0.5);
        let mut rng = Rng::new(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| p.sample_task_secs(1, &mut rng)).collect();
        let outliers = samples.iter().filter(|&&s| s > 12.0).count() as f64 / n as f64;
        // Roughly spike_prob of tasks should blow well past 3x the mean...
        assert!((0.02..0.08).contains(&outliers), "outliers={outliers}");
        // ...and some should be extreme (>10x mean), which the truncated
        // normal alone could never produce with std = 0.5.
        assert!(samples.iter().any(|&s| s > 40.0));
        // Median is unaffected by rare spikes.
        let med = clamshell_sim::stats::percentile(&samples, 0.5);
        assert!((med - 4.0).abs() < 0.3, "median={med}");
    }

    #[test]
    fn no_spikes_by_default_in_fixed_profiles() {
        let p = WorkerProfile::fixed(4.0, 0.5, 0.9);
        let mut rng = Rng::new(8);
        for _ in 0..20_000 {
            assert!(p.sample_task_secs(1, &mut rng) < 10.0);
        }
    }

    #[test]
    fn label_accuracy_matches_lambda() {
        let p = WorkerProfile::fixed(4.0, 1.0, 0.8);
        let mut rng = Rng::new(3);
        let n = 50_000;
        let correct = (0..n).filter(|_| p.sample_label(3, 10, &mut rng) == 3).count();
        let rate = correct as f64 / n as f64;
        assert!((rate - 0.8).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn wrong_labels_are_uniform_and_never_truth() {
        let p = WorkerProfile::fixed(4.0, 1.0, 0.0); // always wrong
        let mut rng = Rng::new(4);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            let l = p.sample_label(2, 4, &mut rng);
            assert_ne!(l, 2);
            counts[l as usize] += 1;
        }
        assert_eq!(counts[2], 0);
        for &c in &[counts[0], counts[1], counts[3]] {
            assert!((12_000..14_700).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn binary_wrong_label_is_the_other_class() {
        let p = WorkerProfile::fixed(4.0, 1.0, 0.0);
        let mut rng = Rng::new(5);
        for _ in 0..100 {
            assert_eq!(p.sample_label(0, 2, &mut rng), 1);
            assert_eq!(p.sample_label(1, 2, &mut rng), 0);
        }
    }
}
