//! Published summary statistics that the synthetic populations are fit to.
//!
//! Every constant below is quoted from the paper; tests in
//! [`crate::population`] assert that sampled populations reproduce them
//! within tolerance. Units: seconds unless suffixed otherwise.

/// §2.1 — medical deployment, recruitment latency: "the min, median and
/// standard deviation statistics were 5, 36, and 9 minutes, respectively."
pub mod recruitment {
    /// Minimum recruitment latency (5 minutes).
    pub const MIN_SECS: f64 = 5.0 * 60.0;
    /// Median recruitment latency (36 minutes).
    pub const MEDIAN_SECS: f64 = 36.0 * 60.0;
    /// Standard deviation of recruitment latency (9 minutes).
    pub const STD_SECS: f64 = 9.0 * 60.0;
}

/// §2.1 — medical deployment, per-HIT completion time: "the median and
/// standard deviation to complete a given HIT were 4 and 2 minutes,
/// respectively, while the 90th percentiles are upwards of 1.1 and 3
/// hours" (90th percentiles of per-worker means and per-worker stds).
pub mod medical_work {
    /// Median of per-worker mean HIT latency (4 minutes).
    pub const MEAN_MEDIAN_SECS: f64 = 4.0 * 60.0;
    /// 90th percentile of per-worker mean HIT latency (1.1 hours).
    pub const MEAN_P90_SECS: f64 = 1.1 * 3600.0;
    /// Median of per-worker latency std (2 minutes).
    pub const STD_MEDIAN_SECS: f64 = 2.0 * 60.0;
    /// 90th percentile of per-worker latency std (3 hours).
    pub const STD_P90_SECS: f64 = 3.0 * 3600.0;
    /// §4.1 — "the fastest worker (μ = 28.5 seconds)".
    pub const FASTEST_MEAN_SECS: f64 = 28.5;
    /// §4.1 — "the median worker (μ = 4 minutes)" (consistent with
    /// MEAN_MEDIAN_SECS).
    pub const MEDIAN_WORKER_MEAN_SECS: f64 = 4.0 * 60.0;
    /// §2.1 — "The most and least consistent workers had standard
    /// deviations of 4 minutes and 2.7 hours, respectively."
    pub const MOST_CONSISTENT_STD_SECS: f64 = 4.0 * 60.0;
    /// Least consistent worker std (2.7 hours).
    pub const LEAST_CONSISTENT_STD_SECS: f64 = 2.7 * 3600.0;
}

/// §6.2 / Figures 5 & 8 — live-experiment per-label speed buckets:
/// "fast (< 4 sec per label), medium (5−7 sec), or slow (≥ 8 sec)".
pub mod live_work {
    /// Upper bound of the "fast" bucket, seconds per label.
    pub const FAST_BELOW_SECS: f64 = 4.0;
    /// Lower bound of the "slow" bucket, seconds per label.
    pub const SLOW_ABOVE_SECS: f64 = 8.0;
    /// The paper's best pool-maintenance threshold for this workload
    /// ("the optimal threshold is PM8").
    pub const OPTIMAL_PM_THRESHOLD_SECS: f64 = 8.0;
}

/// §6.1 — live-experiment pricing: "Workers are paid $.05 / minute to wait
/// … and $.02 / record to perform the work"; recruitment re-posts every 3
/// minutes.
pub mod pricing {
    /// Retainer waiting wage, dollars per minute.
    pub const WAIT_PER_MIN: f64 = 0.05;
    /// Labeling wage, dollars per record.
    pub const PER_RECORD: f64 = 0.02;
    /// Recruitment re-posting period, seconds.
    pub const REPOST_INTERVAL_SECS: f64 = 180.0;
}

/// Headline end-to-end numbers (§6.6) used as shape targets by the
/// reproduction harness.
pub mod headline {
    /// "CLAMShell increases the labeling throughput by 7.24× compared to
    /// Base-NR."
    pub const THROUGHPUT_SPEEDUP: f64 = 7.24;
    /// "CLAMShell reduces the variance of labeling by 151×."
    pub const VARIANCE_REDUCTION: f64 = 151.0;
    /// "...the absolute values are extremely low: 3.1 seconds vs. 475
    /// seconds" (std of batch completion).
    pub const CLAMSHELL_STD_SECS: f64 = 3.1;
    /// Base-NR batch std, seconds.
    pub const BASE_NR_STD_SECS: f64 = 475.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_internally_consistent() {
        const { assert!(recruitment::MIN_SECS < recruitment::MEDIAN_SECS) }
        const { assert!(medical_work::MEAN_MEDIAN_SECS < medical_work::MEAN_P90_SECS) }
        const { assert!(medical_work::STD_MEDIAN_SECS < medical_work::STD_P90_SECS) }
        const { assert!(live_work::FAST_BELOW_SECS < live_work::SLOW_ABOVE_SECS) }
        assert_eq!(medical_work::MEAN_MEDIAN_SECS, medical_work::MEDIAN_WORKER_MEAN_SECS);
        const {
            assert!(
                headline::BASE_NR_STD_SECS / headline::CLAMSHELL_STD_SECS
                    > headline::VARIANCE_REDUCTION
            )
        }
    }
}
