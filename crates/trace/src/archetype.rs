//! Adversarial worker archetypes.
//!
//! The paper evaluates CLAMShell under a benign crowd; the related
//! crowdsourcing literature shows the populations that actually break
//! low-latency labeling — spammers who click through tasks at random,
//! adversarial annotators who answer *wrong* on purpose (Muhammadi et
//! al., "Crowd Labeling: a survey"), and distracted workers whose rapid
//! answers trade accuracy for speed (Krishna et al., "Embracing Error to
//! Enable Rapid Crowdsourcing"). An [`Archetype`] rewrites a sampled
//! [`WorkerProfile`] into one of those behaviours; an [`ArchetypeMix`]
//! decides, per recruited worker, whether any archetype applies.
//!
//! Determinism: archetype decisions draw from a **dedicated fault
//! stream** (see `clamshell_sim::faults`), never from the population or
//! worker generators — so layering archetypes onto a run leaves every
//! base profile and every unaffected worker's behaviour bit-identical.

use crate::profile::WorkerProfile;
use clamshell_sim::rng::Rng;
use serde::{Deserialize, Serialize};

/// A behavioural overlay replacing a worker's generative profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Archetype {
    /// Clicks through tasks near-instantly with chance-level accuracy:
    /// the classic random spammer.
    Spammer,
    /// Deliberately answers wrong (accuracy far below chance) at normal
    /// speed — the worst case for redundancy-based quality control.
    Adversarial,
    /// Wanders off mid-session: normal accuracy, but tasks frequently
    /// stall for many multiples of the base latency.
    Sleepy,
}

impl Archetype {
    /// Rewrite `base` into this archetype's behaviour. Randomness (small
    /// per-worker jitter so archetype workers are not all clones) comes
    /// from the caller's dedicated fault stream.
    pub fn profile(&self, base: &WorkerProfile, rng: &mut Rng) -> WorkerProfile {
        match self {
            Archetype::Spammer => WorkerProfile {
                // Fast, consistent clicking near the physical floor.
                mean_latency: (base.min_label_secs * rng.range_f64(1.0, 1.6))
                    .max(base.min_label_secs),
                latency_std: 0.2,
                // Chance-level on binary tasks; `sample_label` treats this
                // as the probability of the *correct* answer, so 0.5 is
                // "uniformly random" in the dominant two-class setting.
                accuracy: rng.range_f64(0.45, 0.55),
                spike_prob: 0.0,
                spike_mult_median: 1.0,
                spike_mult_sigma: 0.0,
                ..*base
            },
            Archetype::Adversarial => WorkerProfile {
                // Normal pace, almost always wrong on purpose.
                accuracy: rng.range_f64(0.02, 0.10),
                ..*base
            },
            Archetype::Sleepy => WorkerProfile {
                mean_latency: base.mean_latency * 1.5,
                // Frequent, heavy stalls: over a third of tasks hit a
                // distraction spike an order of magnitude long.
                spike_prob: 0.35,
                spike_mult_median: 15.0,
                spike_mult_sigma: 0.8,
                ..*base
            },
        }
    }
}

/// Per-worker probabilities of each archetype replacing the sampled
/// base profile. The remainder (`1 − spammer − adversarial − sleepy`)
/// keeps the benign profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchetypeMix {
    /// Fraction of recruits who are spammers.
    pub spammer: f64,
    /// Fraction of recruits who are adversarial.
    pub adversarial: f64,
    /// Fraction of recruits who are sleepy.
    pub sleepy: f64,
}

impl ArchetypeMix {
    /// A mix with no archetypes (every recruit stays benign).
    pub const NONE: ArchetypeMix = ArchetypeMix { spammer: 0.0, adversarial: 0.0, sleepy: 0.0 };

    /// Only spammers, at the given fraction.
    pub fn spammers(frac: f64) -> Self {
        ArchetypeMix { spammer: frac, ..Self::NONE }
    }

    /// Only adversarial workers, at the given fraction.
    pub fn adversarial(frac: f64) -> Self {
        ArchetypeMix { adversarial: frac, ..Self::NONE }
    }

    /// Only sleepy workers, at the given fraction.
    pub fn sleepy(frac: f64) -> Self {
        ArchetypeMix { sleepy: frac, ..Self::NONE }
    }

    /// Check the fractions form a sub-probability distribution.
    pub fn validate(&self) {
        for (name, f) in
            [("spammer", self.spammer), ("adversarial", self.adversarial), ("sleepy", self.sleepy)]
        {
            assert!((0.0..=1.0).contains(&f), "{name} fraction must be in [0,1], got {f}");
        }
        let total = self.spammer + self.adversarial + self.sleepy;
        assert!(total <= 1.0 + 1e-12, "archetype fractions must sum to <= 1, got {total}");
    }

    /// Decide one recruit's archetype. Consumes exactly one draw from
    /// `rng` regardless of the outcome, so the fault stream stays aligned
    /// across mixes with different fractions.
    pub fn pick(&self, rng: &mut Rng) -> Option<Archetype> {
        let u = rng.next_f64();
        if u < self.spammer {
            Some(Archetype::Spammer)
        } else if u < self.spammer + self.adversarial {
            Some(Archetype::Adversarial)
        } else if u < self.spammer + self.adversarial + self.sleepy {
            Some(Archetype::Sleepy)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> WorkerProfile {
        WorkerProfile::fixed(5.0, 1.0, 0.9)
    }

    #[test]
    fn pick_respects_fractions() {
        let mix = ArchetypeMix { spammer: 0.2, adversarial: 0.1, sleepy: 0.3 };
        mix.validate();
        let mut rng = Rng::new(1);
        let n = 50_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            match mix.pick(&mut rng) {
                Some(Archetype::Spammer) => counts[0] += 1,
                Some(Archetype::Adversarial) => counts[1] += 1,
                Some(Archetype::Sleepy) => counts[2] += 1,
                None => counts[3] += 1,
            }
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!((frac(counts[0]) - 0.2).abs() < 0.01);
        assert!((frac(counts[1]) - 0.1).abs() < 0.01);
        assert!((frac(counts[2]) - 0.3).abs() < 0.01);
        assert!((frac(counts[3]) - 0.4).abs() < 0.01);
    }

    #[test]
    fn pick_consumes_one_draw_regardless_of_outcome() {
        // Different mixes must leave the stream in the same position.
        let run = |mix: ArchetypeMix| {
            let mut rng = Rng::new(9);
            for _ in 0..100 {
                mix.pick(&mut rng);
            }
            rng.next_u64()
        };
        assert_eq!(run(ArchetypeMix::NONE), run(ArchetypeMix::spammers(0.9)));
    }

    #[test]
    fn spammer_is_fast_and_chance_level() {
        let mut rng = Rng::new(2);
        let p = Archetype::Spammer.profile(&base(), &mut rng);
        assert!(p.mean_latency < base().mean_latency / 2.0);
        assert!((0.45..=0.55).contains(&p.accuracy));
        assert_eq!(p.spike_prob, 0.0);
    }

    #[test]
    fn adversarial_is_worse_than_chance() {
        let mut rng = Rng::new(3);
        let p = Archetype::Adversarial.profile(&base(), &mut rng);
        assert!(p.accuracy < 0.15);
        assert_eq!(p.mean_latency, base().mean_latency, "speed unchanged");
    }

    #[test]
    fn sleepy_keeps_accuracy_but_stalls() {
        let mut rng = Rng::new(4);
        let p = Archetype::Sleepy.profile(&base(), &mut rng);
        assert_eq!(p.accuracy, base().accuracy);
        assert!(p.spike_prob > 0.3);
        assert!(p.spike_mult_median >= 10.0);
    }

    #[test]
    #[should_panic]
    fn oversubscribed_mix_rejected() {
        ArchetypeMix { spammer: 0.6, adversarial: 0.6, sleepy: 0.0 }.validate();
    }
}
