//! Pool-lifecycle byte-identity against the committed goldens.
//!
//! The production-pool knobs ([`PoolConfig`]) must be inert at their
//! defaults: a run with an *explicit* FIFO strategy, no idle timeout,
//! no floor, and generations off has to reproduce every committed
//! golden snapshot byte for byte — the strongest form of the "new
//! features schedule zero events and draw zero randomness when
//! disabled" rule in ARCHITECTURE.md. The companion test pins the
//! contrapositive: a non-default strategy visibly changes a schedule,
//! so the identity above is not vacuous.

use clamshell_core::{CheckoutStrategy, PoolConfig};
use clamshell_scenarios::{catalog, find, golden, grid, suite, CompactReport};

fn explicit_fifo() -> PoolConfig {
    PoolConfig {
        min_size: None,
        strategy: CheckoutStrategy::Fifo,
        idle_timeout: None,
        generations: false,
    }
}

#[test]
fn explicit_fifo_defaults_reproduce_every_committed_golden() {
    let mut base = suite::base_config();
    base.pool = explicit_fifo();
    let g = grid(base, suite::population(), suite::specs(), suite::BATCH).seeds(&suite::SEEDS);
    let reports = g.try_run_all(None).expect("catalog grid is valid");
    for (s_idx, def) in catalog().iter().enumerate() {
        let compact: Vec<CompactReport> = suite::SEEDS
            .iter()
            .enumerate()
            .map(|(k, &seed)| {
                CompactReport::of(def.name, seed, &reports[s_idx * suite::SEEDS.len() + k])
            })
            .collect();
        let rendered = golden::render(&compact);
        let committed =
            golden::read(def.name).unwrap_or_else(|| panic!("{}: no committed snapshot", def.name));
        assert_eq!(
            committed, rendered,
            "{}: explicit FIFO defaults must be byte-identical to the committed golden",
            def.name
        );
    }
}

#[test]
fn lifo_under_bursty_diverges_from_the_committed_golden() {
    let mut base = suite::base_config();
    base.pool = PoolConfig { strategy: CheckoutStrategy::Lifo, ..explicit_fifo() };
    let def = find("bursty").expect("catalog has bursty");
    let g = grid(base, suite::population(), suite::specs(), suite::BATCH).seeds(&suite::SEEDS);
    let reports = g.try_run_all(None).expect("catalog grid is valid");
    let s_idx = catalog().iter().position(|s| s.name == "bursty").unwrap();
    let compact: Vec<CompactReport> = suite::SEEDS
        .iter()
        .enumerate()
        .map(|(k, &seed)| {
            CompactReport::of(def.name, seed, &reports[s_idx * suite::SEEDS.len() + k])
        })
        .collect();
    let rendered = golden::render(&compact);
    let committed = golden::read("bursty").expect("committed snapshot");
    assert_ne!(
        committed, rendered,
        "LIFO checkout must change the bursty schedule (otherwise the identity \
         test above pins nothing)"
    );
}
