//! Property-based streamed/batched equivalence: the crate's load-bearing
//! contract, checked over arbitrary `(seed, scenario, rate, checkpoint
//! interval, retirement mode)` tuples.
//!
//! For every sampled tuple the suite workload is run twice — once
//! through `run_batched`, once through the streaming service loop — and
//! the outcomes must agree bit for bit:
//!
//! * retained mode: byte-identical `RunReport` JSON (which covers every
//!   record, every millisecond, and the obs fingerprint when enabled);
//! * retire mode: identical `StreamDigest` (the incremental fold over
//!   retired rows equals the digest of the whole batched report) plus
//!   identical scalars;
//! * both modes: identical checkpoint sequences regardless of rate-
//!   driven `arrived`/`backlog` fields, which are masked before compare.

use clamshell_scenarios::suite;
use clamshell_sim::arrivals::ArrivalSchedule;
use clamshell_stream::{run_stream, StreamConfig, StreamDigest};
use proptest::prelude::*;

/// Arrival rates spanning three orders of magnitude (strategy: sample an
/// index, map to the rate — the vendored proptest has no `select`).
fn arb_rate() -> impl Strategy<Value = f64> {
    (0usize..5).prop_map(|i| [0.1f64, 0.5, 1.5, 10.0, 200.0][i])
}

/// The batched reference and the streamed run for one catalog cell.
fn cell_job(scenario_idx: usize, seed: u64) -> clamshell_sweep::job::Job {
    let g = clamshell_scenarios::grid(
        suite::base_config(),
        suite::population(),
        suite::specs(),
        suite::BATCH,
    )
    .seeds(&[seed]);
    let mut jobs = g.jobs();
    let n = clamshell_scenarios::catalog().len();
    jobs.swap_remove(scenario_idx % n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Streamed == batched, bit for bit, for arbitrary service knobs
    /// under arbitrary adversity scenarios.
    #[test]
    fn streamed_run_is_bit_identical_to_batched(
        scenario_idx in 0usize..16,
        seed in 1u64..500,
        rate in arb_rate(),
        checkpoint_every in 1usize..10,
        retire in any::<bool>(),
    ) {
        let job = cell_job(scenario_idx, seed);
        let batched = job.run();
        let stream = StreamConfig { rate_per_sec: rate, checkpoint_every, retire };
        let outcome = run_stream(
            job.cfg.clone(),
            (*job.population).clone(),
            job.specs.iter().cloned(),
            job.specs.len(),
            job.batch_size,
            &stream,
        );

        // The digest of the streamed rows equals the digest of the
        // batched report in every mode.
        prop_assert_eq!(outcome.digest.values(), StreamDigest::of(&batched).values());

        if retire {
            // Rows were retired through the digest; scalars survive.
            prop_assert!(outcome.report.tasks.is_empty());
            prop_assert!(outcome.report.assignments.is_empty());
            prop_assert_eq!(outcome.report.cost.total_micro(), batched.cost.total_micro());
            prop_assert_eq!(outcome.report.workers_recruited, batched.workers_recruited);
            prop_assert_eq!(outcome.report.workers_evicted, batched.workers_evicted);
            prop_assert_eq!(outcome.report.workers_departed, batched.workers_departed);
            prop_assert_eq!(outcome.report.started, batched.started);
            prop_assert_eq!(outcome.report.finished, batched.finished);
        } else {
            // Retained mode: the full report is byte-identical.
            prop_assert_eq!(
                serde_json::to_string(&outcome.report).unwrap(),
                serde_json::to_string(&batched).unwrap()
            );
        }

        // The final checkpoint pins the complete run. Its cost is the
        // ledger *at the last batch boundary*; `finish()` then settles
        // outstanding pool/reserve waiting wages, so the report's final
        // cost can only be at or above it.
        let last = outcome.checkpoints.last().unwrap();
        prop_assert_eq!(last.completed as usize, job.specs.len());
        prop_assert!(last.cost_micro <= batched.cost.total_micro());
        let (dt, da, db) = outcome.digest.values();
        prop_assert_eq!(last.digest_tasks, dt);
        prop_assert_eq!(last.digest_assignments, da);
        prop_assert_eq!(last.digest_batches, db);
    }

    /// Retirement mode never changes a checkpoint byte, and arrival rate
    /// only moves the open-loop reporting fields.
    #[test]
    fn checkpoints_invariant_to_retirement_and_rate(
        scenario_idx in 0usize..16,
        seed in 1u64..500,
        checkpoint_every in 1usize..10,
    ) {
        let job = cell_job(scenario_idx, seed);
        let run = |rate: f64, retire: bool| {
            run_stream(
                job.cfg.clone(),
                (*job.population).clone(),
                job.specs.iter().cloned(),
                job.specs.len(),
                job.batch_size,
                &StreamConfig { rate_per_sec: rate, checkpoint_every, retire },
            )
        };
        let retained = run(1.5, false);
        let retiring = run(1.5, true);
        prop_assert_eq!(&retained.checkpoints, &retiring.checkpoints);

        let fast = run(100.0, true);
        prop_assert_eq!(retained.checkpoints.len(), fast.checkpoints.len());
        for (a, b) in retained.checkpoints.iter().zip(&fast.checkpoints) {
            let mut masked = b.clone();
            masked.arrived = a.arrived;
            masked.backlog = a.backlog;
            prop_assert_eq!(a, &masked, "only arrival fields may depend on rate");
        }
    }

    /// The arrival schedule itself is a pure, monotone function of
    /// `(seed, rate)` — the other half of the open-loop contract.
    #[test]
    fn arrival_schedule_is_pure(seed in 0u64..10_000, rate in arb_rate()) {
        let mut a = ArrivalSchedule::new(seed, rate);
        let mut b = ArrivalSchedule::new(seed, rate);
        for i in (0..60).rev() {
            prop_assert_eq!(a.arrival_time(i), b.arrival_time(i));
        }
        let times: Vec<_> = (0..60).map(|i| a.arrival_time(i)).collect();
        prop_assert!(times.windows(2).all(|w| w[0] < w[1]));
    }
}
