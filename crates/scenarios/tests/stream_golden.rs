//! The streaming golden-master conformance suite.
//!
//! Every catalog scenario runs in streaming service mode (open-loop
//! arrivals, retirement at every batch boundary) over the fixed suite
//! workload, and the full checkpoint sequences must match the committed
//! `crates/scenarios/golden/stream_checkpoints.json` **byte for byte**.
//! CI runs this under `CLAMSHELL_THREADS=1` and `=4`.
//!
//! Regenerate intentionally with:
//! `CLAMSHELL_BLESS=1 cargo test -p clamshell-scenarios --test stream_golden`

use clamshell_scenarios::{golden, streaming, suite};

#[test]
fn stream_golden_master_conformance() {
    let cells = streaming::checkpoint_suite(None);
    assert_eq!(cells.len(), clamshell_scenarios::catalog().len() * suite::SEEDS.len());
    for cell in &cells {
        assert!(
            !cell.checkpoints.is_empty(),
            "{}/{}: the final boundary always checkpoints",
            cell.scenario,
            cell.seed
        );
    }
    let rendered = streaming::render_cells(&cells);
    if golden::blessing() {
        golden::bless(streaming::GOLDEN_NAME, &rendered);
        return;
    }
    match golden::read(streaming::GOLDEN_NAME) {
        Some(committed) if committed == rendered => {}
        Some(_) => panic!(
            "stream checkpoint snapshot drifted (regenerate intentionally with CLAMSHELL_BLESS=1)"
        ),
        None => panic!("no committed stream checkpoint snapshot"),
    }
}

#[test]
fn stream_suite_is_byte_identical_across_thread_counts() {
    let render_all =
        |threads: usize| streaming::render_cells(&streaming::checkpoint_suite(Some(threads)));
    assert_eq!(render_all(1), render_all(4));
}

#[test]
fn streamed_suite_composes_with_every_adversity_regime() {
    // The streamed cells must show the same fault signatures the
    // compact-report suite pins: churn walks workers out, blackout
    // stretches the clock, every scenario completes every task.
    let cells = streaming::checkpoint_suite(None);
    let last = |name: &str| {
        cells
            .iter()
            .filter(|c| c.scenario == name)
            .map(|c| c.checkpoints.last().expect("non-empty").clone())
            .collect::<Vec<_>>()
    };
    for cell in &cells {
        let fin = cell.checkpoints.last().expect("non-empty");
        assert_eq!(
            fin.completed,
            suite::N_TASKS as u64,
            "{}/{} must complete every task",
            cell.scenario,
            cell.seed
        );
        assert_eq!(fin.labels, (suite::N_TASKS * suite::NG) as u64);
        // Checkpoint sequences are cumulative and monotone.
        for w in cell.checkpoints.windows(2) {
            assert!(w[0].seq < w[1].seq);
            assert!(w[0].completed < w[1].completed);
            assert!(w[0].at_ms <= w[1].at_ms);
            assert!(w[0].cost_micro <= w[1].cost_micro);
        }
    }
    assert!(last("churn").iter().any(|c| c.departed > 0), "churn must show walkouts");
    for c in last("benign") {
        assert_eq!(c.departed, 0, "benign runs never churn");
    }
    let mean_ms = |rows: &[clamshell_stream::StreamCheckpoint]| {
        rows.iter().map(|c| c.at_ms).sum::<u64>() / rows.len() as u64
    };
    assert!(
        mean_ms(&last("blackout")) > mean_ms(&last("benign")),
        "outages must stretch the streamed run"
    );
}
