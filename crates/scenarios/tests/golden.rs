//! The golden-master conformance suite.
//!
//! Every catalog scenario is run over the fixed suite workload
//! (`clamshell_scenarios::suite`) and its compact snapshots must match
//! the committed files under `crates/scenarios/golden/` **byte for
//! byte**. CI runs this under `CLAMSHELL_THREADS=1` and `=4`; since the
//! committed bytes are thread-count-independent, passing both legs
//! proves the determinism contract holds for every scenario.
//!
//! Regenerate intentionally with:
//! `CLAMSHELL_BLESS=1 cargo test -p clamshell-scenarios --test golden`

use clamshell_scenarios::{golden, suite};

#[test]
fn golden_master_conformance() {
    let rows = suite::compact_suite(None);
    assert_eq!(rows.len(), clamshell_scenarios::catalog().len());
    let mut mismatches = Vec::new();
    for (name, reports) in &rows {
        assert_eq!(reports.len(), suite::SEEDS.len());
        let rendered = golden::render(reports);
        if golden::blessing() {
            golden::bless(name, &rendered);
            continue;
        }
        match golden::read(name) {
            Some(committed) if committed == rendered => {}
            Some(_) => mismatches.push(format!("{name}: snapshot drifted")),
            None => mismatches.push(format!("{name}: no committed snapshot")),
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden-master mismatches (regenerate intentionally with CLAMSHELL_BLESS=1):\n  {}",
        mismatches.join("\n  ")
    );
}

#[test]
fn suite_is_byte_identical_across_thread_counts() {
    // The in-test version of the CI matrix: the rendered suite at 1 and
    // 4 sweep threads must agree byte for byte, committed files aside.
    let render_all = |threads: usize| {
        suite::compact_suite(Some(threads))
            .iter()
            .map(|(name, reports)| format!("## {name}\n{}", golden::render(reports)))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(render_all(1), render_all(4));
}

#[test]
fn suite_covers_every_adversity_regime() {
    // Cheap sanity on the committed numbers themselves: the scenarios
    // must actually exercise their fault (otherwise the snapshots pin
    // down nothing).
    let rows = suite::compact_suite(None);
    let by_name = |n: &str| {
        rows.iter().find(|(name, _)| *name == n).unwrap_or_else(|| panic!("missing {n}")).1.clone()
    };
    let benign = by_name("benign");
    for r in &benign {
        assert_eq!(r.workers_departed, 0, "benign runs never churn");
        assert_eq!(r.tasks, suite::N_TASKS);
    }
    assert!(
        by_name("churn").iter().any(|r| r.workers_departed > 0),
        "churn snapshots must show walkouts"
    );
    let acc = |rs: &[clamshell_scenarios::CompactReport]| {
        let (c, l): (u64, u64) =
            rs.iter().fold((0, 0), |(c, l), r| (c + r.labels_correct, l + r.labels));
        c as f64 / l as f64
    };
    assert!(
        acc(&by_name("adversarial")) < acc(&benign),
        "adversarial annotators must cost accuracy"
    );
    let mean_ms = |rs: &[clamshell_scenarios::CompactReport]| {
        rs.iter().map(|r| r.total_ms).sum::<u64>() / rs.len() as u64
    };
    assert!(mean_ms(&by_name("blackout")) > mean_ms(&benign), "outages must stretch the run");
    for (name, reports) in &rows {
        for r in reports {
            assert_eq!(r.tasks, suite::N_TASKS, "{name} must complete every task");
            assert_eq!(r.labels, (suite::N_TASKS * suite::NG) as u64);
        }
    }
}
