//! Trace golden-master conformance.
//!
//! The instrumented catalog suite must reproduce the committed trace
//! fingerprints (`crates/scenarios/golden/trace_fingerprints.json`)
//! byte for byte, its rendered JSONL must be identical at 1 and 4 sweep
//! threads, and turning observability on must leave the compact-report
//! goldens untouched — the zero-perturbation half of the contract.
//!
//! Regenerate intentionally with:
//! `CLAMSHELL_BLESS=1 cargo test -p clamshell-scenarios --test trace_golden`

use clamshell_scenarios::{golden, suite, trace};

#[test]
fn trace_fingerprint_conformance() {
    let rows = trace::trace_suite(None);
    assert_eq!(rows.len(), clamshell_scenarios::catalog().len());
    for (name, cells) in &rows {
        assert_eq!(cells.len(), suite::SEEDS.len());
        for cell in cells {
            assert_eq!(cell.row.dropped, 0, "{name}: suite ring must be lossless");
            assert!(cell.row.events > 0, "{name}: instrumented runs record events");
            assert!(
                cell.jsonl.lines().count() == cell.row.events + 1,
                "{name}: JSONL is one header plus one line per event"
            );
        }
    }
    let rendered = trace::render_rows(&rows);
    if golden::blessing() {
        golden::bless(trace::GOLDEN_NAME, &rendered);
        return;
    }
    match golden::read(trace::GOLDEN_NAME) {
        Some(committed) => assert_eq!(
            committed, rendered,
            "trace fingerprints drifted (regenerate intentionally with CLAMSHELL_BLESS=1)"
        ),
        None => panic!("no committed trace fingerprints (bless with CLAMSHELL_BLESS=1)"),
    }
}

#[test]
fn trace_jsonl_is_byte_identical_across_thread_counts() {
    // The in-test version of the CI matrix: every cell's full JSONL
    // (header + events) at 1 and 4 sweep threads must agree byte for
    // byte — not just the fingerprints.
    let render_all = |threads: usize| {
        trace::trace_suite(Some(threads))
            .iter()
            .flat_map(|(name, cells)| {
                cells.iter().map(move |c| format!("## {name}/{}\n{}", c.row.seed, c.jsonl))
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(render_all(1), render_all(4));
}

#[test]
fn instrumentation_leaves_compact_goldens_untouched() {
    // Running the suite with observability on must reproduce the exact
    // committed compact snapshots: recording draws no RNG values and
    // never perturbs the simulation.
    let rows = suite::compact_suite_with(trace::obs_base_config(), None);
    let mut mismatches = Vec::new();
    for (name, reports) in &rows {
        let rendered = golden::render(reports);
        match golden::read(name) {
            Some(committed) if committed == rendered => {}
            Some(_) => mismatches.push(format!("{name}: instrumented run drifted")),
            None => mismatches.push(format!("{name}: no committed snapshot")),
        }
    }
    assert!(
        mismatches.is_empty(),
        "observability perturbed the simulation:\n  {}",
        mismatches.join("\n  ")
    );
}
