//! Behavioural contracts per scenario: each named scenario must actually
//! produce its advertised failure mode, over and above what the golden
//! snapshots pin down.

use clamshell_core::runner::run_batched;
use clamshell_core::task::TaskSpec;
use clamshell_core::RunConfig;
use clamshell_scenarios::find;
use clamshell_trace::Population;

fn base(seed: u64) -> RunConfig {
    RunConfig { pool_size: 8, ng: 2, seed, ..Default::default() }.with_straggler()
}

fn specs(n: usize) -> Vec<TaskSpec> {
    (0..n).map(|i| TaskSpec::new(vec![(i % 2) as u32; 2])).collect()
}

fn run(scenario: &str, seed: u64) -> clamshell_core::metrics::RunReport {
    let cfg =
        find(scenario).unwrap_or_else(|| panic!("unknown {scenario}")).config_from(&base(seed));
    run_batched(cfg, Population::mturk_live(), specs(32), 8)
}

/// Mean over a few seeds to keep the contrasts robust.
fn mean<F: Fn(&clamshell_core::metrics::RunReport) -> f64>(scenario: &str, f: F) -> f64 {
    let seeds = [1u64, 2, 3];
    seeds.iter().map(|&s| f(&run(scenario, s))).sum::<f64>() / seeds.len() as f64
}

#[test]
fn spammers_and_adversarial_degrade_accuracy() {
    let benign = mean("benign", |r| r.accuracy());
    let spam = mean("spammers", |r| r.accuracy());
    let adv = mean("adversarial", |r| r.accuracy());
    assert!(spam < benign, "spammers {spam} vs benign {benign}");
    assert!(adv < benign - 0.03, "adversarial {adv} vs benign {benign}");
}

#[test]
fn churn_departs_workers_and_still_finishes() {
    let departed = mean("churn", |r| r.workers_departed as f64);
    assert!(departed > 0.5, "mean departures {departed}");
    let r = run("churn", 4);
    assert_eq!(r.tasks.len(), 32);
}

#[test]
fn heavy_tail_and_blackout_stretch_latency() {
    let benign = mean("benign", |r| r.total_secs());
    let tail = mean("heavy-tail", |r| r.total_secs());
    let dark = mean("blackout", |r| r.total_secs());
    assert!(tail > benign, "heavy-tail {tail} vs benign {benign}");
    assert!(dark > benign, "blackout {dark} vs benign {benign}");
}

#[test]
fn bursty_reshapes_batches() {
    let r = run("bursty", 5);
    let sizes: Vec<usize> = r.batches.iter().map(|b| b.tasks).collect();
    assert!(sizes.iter().any(|&s| s != 8), "burst sizes vary: {sizes:?}");
    assert_eq!(sizes.iter().sum::<usize>(), 32, "no task lost to batching");
}

#[test]
fn perfect_storm_is_deterministic_and_completes() {
    let a = run("perfect-storm", 6);
    let b = run("perfect-storm", 6);
    assert_eq!(a.tasks.len(), 32);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "five composed faults stay a pure function of the seed"
    );
    assert!(a.workers_departed > 0 || a.termination_rate() > 0.0);
}

#[test]
fn sleepy_workers_fatten_the_tail() {
    // Compare p95-ish behaviour through mean batch std: sleepy stalls
    // raise within-batch variance relative to benign on the same seeds.
    let benign = mean("benign", |r| r.mean_batch_std());
    let sleepy = mean("sleepy", |r| r.mean_batch_std());
    assert!(sleepy > benign, "sleepy {sleepy} vs benign {benign}");
}
