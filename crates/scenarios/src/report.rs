//! Compact `RunReport` snapshots for the golden-master suite.
//!
//! A full [`RunReport`] serializes to kilobytes per cell; committing
//! those for every `(scenario, seed)` would bloat the repo and make
//! review diffs useless. A [`CompactReport`] keeps the scalar outcomes
//! (counts, totals, integer milliseconds — no floats, so rendering is
//! trivially byte-stable) plus an FNV-1a fingerprint over the *entire*
//! task and assignment logs: any behavioural drift, even one that
//! leaves every aggregate untouched, flips the fingerprint.

use clamshell_core::metrics::RunReport;
use serde::{Deserialize, Serialize};

/// Scalar digest of one `(scenario, seed)` run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompactReport {
    /// Scenario name (catalog key).
    pub scenario: String,
    /// The cell's seed.
    pub seed: u64,
    /// Tasks completed.
    pub tasks: usize,
    /// Batches run.
    pub batches: usize,
    /// Labels produced (tasks × Ng).
    pub labels: u64,
    /// Final labels matching ground truth.
    pub labels_correct: u64,
    /// Run wall-clock, integer milliseconds.
    pub total_ms: u64,
    /// Total cost in micro-dollars.
    pub cost_micro: u64,
    /// Workers ever recruited.
    pub workers_recruited: usize,
    /// Workers evicted by maintenance.
    pub workers_evicted: u64,
    /// Workers who walked out mid-assignment.
    pub workers_departed: u64,
    /// Assignments logged (completed + terminated).
    pub assignments: usize,
    /// Assignments that ended terminated.
    pub terminated: usize,
    /// FNV-1a fingerprint of the full task + assignment logs.
    pub fingerprint: u64,
}

/// Incremental FNV-1a over `u64` words (each hashed little-endian).
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }
}

impl CompactReport {
    /// Digest `report` for `(scenario, seed)`.
    pub fn of(scenario: &str, seed: u64, report: &RunReport) -> Self {
        let mut h = Fnv::new();
        for t in &report.tasks {
            h.word(t.task as u64);
            h.word(t.batch as u64);
            h.word(t.ng as u64);
            h.word(t.created.as_millis());
            h.word(t.completed.as_millis());
            h.word(t.winner.0 as u64);
            h.word(t.winner_span.as_millis());
            h.word(t.winner_age as u64);
            h.word(t.correct as u64);
        }
        for a in &report.assignments {
            h.word(a.task as u64);
            h.word(a.worker.0 as u64);
            h.word(a.start.as_millis());
            h.word(a.end.as_millis());
            h.word(a.terminated as u64);
        }
        for b in &report.batches {
            h.word(b.index as u64);
            h.word(b.start.as_millis());
            h.word(b.end.as_millis());
            h.word(b.tasks as u64);
            h.word(b.evicted as u64);
        }
        CompactReport {
            scenario: scenario.to_string(),
            seed,
            tasks: report.tasks.len(),
            batches: report.batches.len(),
            labels: report.labels_produced(),
            labels_correct: report.labels_correct(),
            total_ms: report.finished.since(report.started).as_millis(),
            cost_micro: report.cost.total_micro(),
            workers_recruited: report.workers_recruited,
            workers_evicted: report.workers_evicted,
            workers_departed: report.workers_departed,
            assignments: report.assignments.len(),
            terminated: report.assignments.iter().filter(|a| a.terminated).count(),
            fingerprint: h.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clamshell_core::runner::run_batched;
    use clamshell_core::task::TaskSpec;
    use clamshell_core::RunConfig;
    use clamshell_trace::Population;

    fn report(seed: u64) -> RunReport {
        let cfg = RunConfig { pool_size: 4, ng: 2, seed, ..Default::default() };
        let specs: Vec<TaskSpec> = (0..6).map(|i| TaskSpec::new(vec![(i % 2) as u32; 2])).collect();
        run_batched(cfg, Population::mturk_live(), specs, 3)
    }

    #[test]
    fn digest_is_deterministic_and_seed_sensitive() {
        let a = CompactReport::of("benign", 5, &report(5));
        let b = CompactReport::of("benign", 5, &report(5));
        assert_eq!(a, b);
        let c = CompactReport::of("benign", 6, &report(6));
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn fingerprint_sees_through_identical_aggregates() {
        // Two reports with the same counts but different logs must
        // disagree: perturb one completion time.
        let base = report(7);
        let mut twisted = base.clone();
        twisted.tasks[0].winner_age += 1;
        let a = CompactReport::of("x", 7, &base);
        let b = CompactReport::of("x", 7, &twisted);
        assert_eq!(a.tasks, b.tasks);
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn digest_serializes_without_floats() {
        // Golden snapshots must be trivially byte-stable: integer fields
        // only, so no float-formatting subtleties can creep in.
        let c = CompactReport::of("benign", 5, &report(5));
        let json = serde_json::to_string(&c).unwrap();
        assert!(!json.contains('.'), "no floats in golden snapshots: {json}");
        assert!(json.contains("\"fingerprint\""));
    }
}
