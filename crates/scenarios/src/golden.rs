//! Golden-master storage: committed snapshots under
//! `crates/scenarios/golden/`, one JSON file per scenario.
//!
//! The conformance suite (`tests/golden.rs`) renders the current
//! [`CompactReport`]s and requires **byte
//! equality** with the committed files — under `CLAMSHELL_THREADS=1`
//! and `=4` in CI, which is what extends the determinism contract to
//! every scenario. Regenerate intentionally with:
//!
//! ```text
//! CLAMSHELL_BLESS=1 cargo test -p clamshell-scenarios --test golden
//! ```

use crate::report::CompactReport;
use std::path::{Path, PathBuf};

/// The committed snapshot directory.
pub fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden")
}

/// Snapshot path for one scenario.
pub fn golden_path(scenario: &str) -> PathBuf {
    golden_dir().join(format!("{scenario}.json"))
}

/// Render a scenario's per-seed snapshots as the committed file format:
/// a JSON array with one compact object per line (stable, diffable).
pub fn render(reports: &[CompactReport]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&serde_json::to_string(r).expect("compact report serializes"));
        if i + 1 < reports.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Read a scenario's committed snapshot, if present.
pub fn read(scenario: &str) -> Option<String> {
    std::fs::read_to_string(golden_path(scenario)).ok()
}

/// Overwrite a scenario's committed snapshot (the bless path).
pub fn bless(scenario: &str, content: &str) {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("create golden dir");
    std::fs::write(golden_path(scenario), content).expect("write golden file");
}

/// Whether this test run should regenerate snapshots instead of
/// comparing (`CLAMSHELL_BLESS` set to anything non-empty).
pub fn blessing() -> bool {
    std::env::var("CLAMSHELL_BLESS").map(|v| !v.is_empty()).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_one_object_per_line() {
        let r = CompactReport {
            scenario: "x".into(),
            seed: 1,
            tasks: 2,
            batches: 1,
            labels: 4,
            labels_correct: 3,
            total_ms: 1000,
            cost_micro: 42,
            workers_recruited: 3,
            workers_evicted: 0,
            workers_departed: 0,
            assignments: 2,
            terminated: 0,
            fingerprint: 7,
        };
        let text = render(&[r.clone(), r]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "[");
        assert!(lines[1].ends_with(','));
        assert_eq!(lines[3], "]");
        assert!(text.ends_with("]\n"));
    }

    #[test]
    fn paths_land_inside_the_crate() {
        let p = golden_path("benign");
        assert!(p.ends_with("golden/benign.json"));
        assert!(p.starts_with(env!("CARGO_MANIFEST_DIR")));
    }
}
