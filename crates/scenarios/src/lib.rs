//! # clamshell-scenarios
//!
//! The adversity scenario library: a catalog of **named, composable,
//! deterministic fault-injection scenarios** that stress the CLAMShell
//! reproduction in the regimes the paper never evaluates — spammer and
//! adversarial annotator populations (Muhammadi et al., "Crowd Labeling:
//! a survey"), error-embracing rapid workers (Krishna et al., "Embracing
//! Error to Enable Rapid Crowdsourcing"), mid-assignment worker churn,
//! bursty task arrivals, heavy-tailed latency inflation, and transient
//! platform outages.
//!
//! Each [`ScenarioDef`] is a labeled mutation of a
//! [`RunConfig`] (setting its
//! [`adversity`](clamshell_core::RunConfig::adversity) layer) that plugs
//! straight into [`clamshell_sweep::Grid`] as a scenario axis
//! ([`catalog::grid`]) and is runnable from the CLI via
//! `repro --scenario <name>`.
//!
//! ## Determinism contract
//!
//! Every fault draws exclusively from a dedicated stream derived via
//! [`clamshell_sim::faults::fault_stream`], so:
//!
//! * enabling a fault never perturbs any benign stream or other fault;
//! * a scenario run is a pure function of `(scenario, seed)`;
//! * sweep output is byte-identical at any `CLAMSHELL_THREADS`.
//!
//! The [`golden`] module pins that contract down: compact
//! [`RunReport`](clamshell_core::metrics::RunReport) snapshots per
//! `(scenario, seed)` are committed under `crates/scenarios/golden/` and
//! CI replays the whole suite under `CLAMSHELL_THREADS=1` and `=4`,
//! requiring byte-identical output both times.

#![warn(missing_docs)]

pub mod catalog;
pub mod golden;
pub mod report;
pub mod streaming;
pub mod trace;

pub use catalog::{catalog, find, grid, names, ScenarioDef};
pub use report::CompactReport;
pub use streaming::StreamCell;
pub use trace::{TraceCell, TraceRow};

use clamshell_core::RunConfig;

/// The conformance suite's fixed workload: the base configuration, seeds,
/// and task shape every golden snapshot is generated from. Kept here (not
/// in the test) so the test, the bless path, and CI all agree byte for
/// byte.
pub mod suite {
    use super::*;
    use clamshell_core::task::TaskSpec;
    use clamshell_trace::Population;

    /// Seeds each scenario is snapshotted under.
    pub const SEEDS: [u64; 2] = [11, 12];

    /// Number of tasks in the suite workload.
    pub const N_TASKS: usize = 16;

    /// Records per task.
    pub const NG: usize = 2;

    /// Batch size (scenario faults may reshape it, e.g. `bursty`).
    pub const BATCH: usize = 8;

    /// The suite's base configuration: a small straggler-mitigated pool,
    /// binary tasks, live-experiment population.
    pub fn base_config() -> RunConfig {
        RunConfig { pool_size: 6, ng: NG as u32, seed: SEEDS[0], ..Default::default() }
            .with_straggler()
    }

    /// The suite's task specs (alternating binary truths).
    pub fn specs() -> Vec<TaskSpec> {
        (0..N_TASKS).map(|i| TaskSpec::new(vec![(i % 2) as u32; NG])).collect()
    }

    /// The suite's population.
    pub fn population() -> Population {
        Population::mturk_live()
    }

    /// Run the whole catalog × [`SEEDS`] grid and return compact
    /// snapshots grouped per scenario, in catalog order. `threads = None`
    /// resolves via `CLAMSHELL_THREADS` like every sweep entry point.
    pub fn compact_suite(threads: Option<usize>) -> Vec<(&'static str, Vec<CompactReport>)> {
        compact_suite_with(base_config(), threads)
    }

    /// [`compact_suite`] over a custom base config — used by the trace
    /// suite to prove an instrumented run leaves the compact goldens
    /// byte-identical.
    pub fn compact_suite_with(
        base: RunConfig,
        threads: Option<usize>,
    ) -> Vec<(&'static str, Vec<CompactReport>)> {
        let g = grid(base, population(), specs(), BATCH).seeds(&SEEDS);
        let grouped = g.try_run_all(threads).expect("catalog grid is valid").into_iter();
        let mut rows: Vec<(&'static str, Vec<CompactReport>)> =
            catalog().iter().map(|s| (s.name, Vec::new())).collect();
        for (i, report) in grouped.enumerate() {
            let scenario = i / SEEDS.len();
            let seed = SEEDS[i % SEEDS.len()];
            let name = rows[scenario].0;
            rows[scenario].1.push(CompactReport::of(name, seed, &report));
        }
        rows
    }
}
