//! Streaming golden-masters: committed [`StreamCheckpoint`] sequences
//! per `(scenario, seed)`.
//!
//! The streaming conformance suite replays the whole adversity catalog
//! in **streaming service mode** — open-loop arrivals, periodic
//! checkpoints, retire-at-every-boundary memory management — over the
//! same fixed workload as the compact-report suite. The intermediate
//! checkpoints are committed as
//! `crates/scenarios/golden/stream_checkpoints.json` and CI
//! byte-compares them under `CLAMSHELL_THREADS=1` and `=4`.
//!
//! This extends the golden contract in two directions at once:
//!
//! * **every adversity scenario composes with streaming** — churn,
//!   outages, bursts, spammers all run through the service loop, with
//!   retirement on, and their checkpoints are pinned;
//! * **intermediate state is pinned, not just the final report** — a
//!   drift that cancels out by run end (or hides in retired rows) still
//!   flips a mid-run checkpoint digest.
//!
//! Regenerate intentionally with:
//! `CLAMSHELL_BLESS=1 cargo test -p clamshell-scenarios --test stream_golden`

use crate::catalog;
use crate::suite;
use clamshell_stream::cells::run_jobs_streamed;
use clamshell_stream::{StreamCheckpoint, StreamConfig};

/// Golden-file key under `crates/scenarios/golden/`.
pub const GOLDEN_NAME: &str = "stream_checkpoints";

/// The suite's open-loop arrival rate (tasks per simulated second).
/// Reporting-only by the open-loop contract, but committed so the
/// `arrived`/`backlog` columns are pinned too.
pub const RATE: f64 = 1.5;

/// Checkpoint after at least this many completions per snapshot.
pub const CHECKPOINT_EVERY: usize = 4;

/// The suite's service-mode knobs: retirement is **on**, so the golden
/// run also proves bounded-memory mode under every adversity scenario.
pub fn stream_config() -> StreamConfig {
    StreamConfig { rate_per_sec: RATE, checkpoint_every: CHECKPOINT_EVERY, retire: true }
}

/// One streamed suite cell: the scenario, its seed, and every
/// checkpoint the run emitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamCell {
    /// Scenario name (catalog key).
    pub scenario: &'static str,
    /// The cell's seed.
    pub seed: u64,
    /// Emitted checkpoints, in sequence order.
    pub checkpoints: Vec<StreamCheckpoint>,
}

/// Run the catalog × [`suite::SEEDS`] grid in streaming mode and return
/// one [`StreamCell`] per cell in catalog × seed order. `threads = None`
/// resolves via `CLAMSHELL_THREADS` like every sweep entry point.
pub fn checkpoint_suite(threads: Option<usize>) -> Vec<StreamCell> {
    let g = catalog::grid(suite::base_config(), suite::population(), suite::specs(), suite::BATCH)
        .seeds(&suite::SEEDS);
    let jobs = g.jobs();
    let outcomes =
        run_jobs_streamed(jobs, clamshell_sweep::threads::resolve(threads), &stream_config());
    let names: Vec<&'static str> = catalog::catalog().iter().map(|s| s.name).collect();
    outcomes
        .into_iter()
        .enumerate()
        .map(|(i, o)| StreamCell {
            scenario: names[i / suite::SEEDS.len()],
            seed: suite::SEEDS[i % suite::SEEDS.len()],
            checkpoints: o.checkpoints,
        })
        .collect()
}

/// Render suite cells as the committed file format: a JSON array with
/// one `{scenario, seed, ckpt}` object per line, one line per
/// checkpoint, in catalog × seed × sequence order.
pub fn render_cells(cells: &[StreamCell]) -> String {
    let mut rows: Vec<String> = Vec::new();
    for cell in cells {
        for c in &cell.checkpoints {
            let ckpt = serde_json::to_string(c).expect("checkpoint serializes");
            rows.push(format!(
                "{{\"scenario\":\"{}\",\"seed\":{},\"ckpt\":{}}}",
                cell.scenario, cell.seed, ckpt
            ));
        }
    }
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(r);
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_one_object_per_line() {
        let ckpt = StreamCheckpoint {
            seq: 0,
            at_ms: 10,
            arrived: 1,
            admitted: 2,
            completed: 2,
            backlog: 0,
            batches: 1,
            labels: 4,
            labels_correct: 4,
            assignments: 2,
            terminated: 0,
            cost_micro: 5,
            recruited: 3,
            evicted: 0,
            departed: 0,
            digest_tasks: 1,
            digest_assignments: 2,
            digest_batches: 3,
            obs_recorded: 0,
            obs_fingerprint: 0,
        };
        let cells = vec![
            StreamCell { scenario: "a", seed: 1, checkpoints: vec![ckpt.clone(), ckpt.clone()] },
            StreamCell { scenario: "b", seed: 2, checkpoints: vec![ckpt] },
        ];
        let text = render_cells(&cells);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], "[");
        assert!(lines[1].starts_with("{\"scenario\":\"a\",\"seed\":1,") && lines[1].ends_with(','));
        assert!(
            lines[3].starts_with("{\"scenario\":\"b\",\"seed\":2,") && !lines[3].ends_with(',')
        );
        assert_eq!(lines[4], "]");
    }

    #[test]
    fn suite_config_retires() {
        assert!(stream_config().retire, "the golden suite must exercise bounded-memory mode");
    }
}
