//! The named scenario catalog.
//!
//! Every entry is a labeled mutation of a base [`RunConfig`] that
//! installs an [`AdversityConfig`] — and nothing else, so a scenario
//! composes with any pool size, quorum, mitigation, or maintenance
//! setting the caller picks. The catalog is the single source of truth
//! for `repro --scenario <name>`, the `adversity` experiment, the
//! golden-master conformance suite, and the README's scenario table.

use clamshell_core::adversity::{AdversityConfig, BurstFault, ChurnFault, OutageFault};
use clamshell_core::task::TaskSpec;
use clamshell_core::RunConfig;
use clamshell_crowd::LatencyInflation;
use clamshell_sweep::Grid;
use clamshell_trace::{ArchetypeMix, Population};

/// One named adversity scenario.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioDef {
    /// Stable CLI/report name (`repro --scenario <name>`).
    pub name: &'static str,
    /// One-line description of what the scenario perturbs.
    pub summary: &'static str,
    /// Why it exists: the paper section or related work motivating it.
    pub motivation: &'static str,
    mutate: fn(&mut RunConfig),
}

impl ScenarioDef {
    /// Apply the scenario's mutation to `cfg` in place.
    pub fn apply(&self, cfg: &mut RunConfig) {
        (self.mutate)(cfg)
    }

    /// A copy of `base` with this scenario applied.
    pub fn config_from(&self, base: &RunConfig) -> RunConfig {
        let mut cfg = base.clone();
        self.apply(&mut cfg);
        cfg
    }
}

fn benign(cfg: &mut RunConfig) {
    cfg.adversity = None;
}

fn churn(cfg: &mut RunConfig) {
    cfg.adversity = Some(AdversityConfig {
        churn: Some(ChurnFault { walkout_prob: 0.15, min_frac: 0.2, max_frac: 0.9 }),
        ..AdversityConfig::NONE
    });
}

fn spammers(cfg: &mut RunConfig) {
    cfg.adversity = Some(AdversityConfig {
        archetypes: Some(ArchetypeMix::spammers(0.30)),
        ..AdversityConfig::NONE
    });
}

fn adversarial(cfg: &mut RunConfig) {
    cfg.adversity = Some(AdversityConfig {
        archetypes: Some(ArchetypeMix::adversarial(0.20)),
        ..AdversityConfig::NONE
    });
}

fn sleepy(cfg: &mut RunConfig) {
    cfg.adversity = Some(AdversityConfig {
        archetypes: Some(ArchetypeMix::sleepy(0.30)),
        ..AdversityConfig::NONE
    });
}

fn heavy_tail(cfg: &mut RunConfig) {
    cfg.adversity = Some(AdversityConfig {
        inflation: Some(LatencyInflation { prob: 0.15, mult_median: 8.0, mult_sigma: 0.8 }),
        ..AdversityConfig::NONE
    });
}

fn bursty(cfg: &mut RunConfig) {
    cfg.adversity = Some(AdversityConfig {
        bursts: Some(BurstFault { min_batch: 1, max_batch: 12 }),
        ..AdversityConfig::NONE
    });
}

fn blackout(cfg: &mut RunConfig) {
    cfg.adversity = Some(AdversityConfig {
        outage: Some(OutageFault { mean_uptime_secs: 120.0, mean_outage_secs: 45.0 }),
        ..AdversityConfig::NONE
    });
}

fn perfect_storm(cfg: &mut RunConfig) {
    cfg.adversity = Some(AdversityConfig {
        archetypes: Some(ArchetypeMix { spammer: 0.15, adversarial: 0.05, sleepy: 0.10 }),
        inflation: Some(LatencyInflation { prob: 0.10, mult_median: 6.0, mult_sigma: 0.6 }),
        churn: Some(ChurnFault { walkout_prob: 0.10, min_frac: 0.2, max_frac: 0.9 }),
        outage: Some(OutageFault { mean_uptime_secs: 180.0, mean_outage_secs: 30.0 }),
        bursts: Some(BurstFault { min_batch: 2, max_batch: 10 }),
    });
}

/// The full scenario catalog, in stable (golden-snapshot) order.
pub fn catalog() -> &'static [ScenarioDef] {
    &[
        ScenarioDef {
            name: "benign",
            summary: "No faults: the paper's happy-path crowd (baseline for every delta)",
            motivation: "CLAMShell \u{a7}6 evaluates only this regime",
            mutate: benign,
        },
        ScenarioDef {
            name: "churn",
            summary: "15% of assignments end in a mid-task walkout; slots refill from the market",
            motivation: "Retainer attrition \u{a7}4.2; pools must survive worker loss",
            mutate: churn,
        },
        ScenarioDef {
            name: "spammers",
            summary: "30% of recruits click through near-instantly at chance accuracy",
            motivation: "Spammer populations (Muhammadi et al., Crowd Labeling survey)",
            mutate: spammers,
        },
        ScenarioDef {
            name: "adversarial",
            summary: "20% of recruits answer wrong on purpose at normal speed",
            motivation: "Adversarial annotators (Muhammadi et al., Crowd Labeling survey)",
            mutate: adversarial,
        },
        ScenarioDef {
            name: "sleepy",
            summary: "30% of recruits stall frequently for ~15x their base latency",
            motivation: "Error-embracing rapid workers drift (Krishna et al.)",
            mutate: sleepy,
        },
        ScenarioDef {
            name: "heavy-tail",
            summary: "15% of assignments inflate by a log-normal factor (median 8x)",
            motivation: "\u{a7}2.1: even fast workers can take an hour on some tasks",
            mutate: heavy_tail,
        },
        ScenarioDef {
            name: "bursty",
            summary: "Task stream arrives in bursts of 1..=12 instead of fixed batches",
            motivation: "Interactive front-ends (\u{a7}5 Batcher) produce floods and trickles",
            mutate: bursty,
        },
        ScenarioDef {
            name: "blackout",
            summary: "Platform outages (mean 45s every ~2min) defer submissions and recruits",
            motivation: "Live MTurk deployments see transient platform failures (\u{a7}6.1)",
            mutate: blackout,
        },
        ScenarioDef {
            name: "perfect-storm",
            summary: "Churn + mixed archetypes + inflation + outages + bursts, all at once",
            motivation: "Composability: faults draw from disjoint streams by construction",
            mutate: perfect_storm,
        },
    ]
}

/// Look a scenario up by name.
pub fn find(name: &str) -> Option<&'static ScenarioDef> {
    catalog().iter().find(|s| s.name == name)
}

/// All scenario names, in catalog order.
pub fn names() -> Vec<&'static str> {
    catalog().iter().map(|s| s.name).collect()
}

/// A [`Grid`] with the whole catalog as its scenario axis (catalog
/// order), ready for seeds. This is how the scenario library plugs into
/// the sweep engine: each catalog entry becomes one deterministic grid
/// row.
pub fn grid(
    base: RunConfig,
    population: Population,
    specs: Vec<TaskSpec>,
    batch_size: usize,
) -> Grid {
    let mut g = Grid::new(base, population, specs, batch_size);
    for s in catalog() {
        g = g.scenario(s.name, |cfg| s.apply(cfg));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_nonempty() {
        let names = names();
        assert!(names.len() >= 6, "issue requires >= 5 adversity scenarios + benign");
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario names");
    }

    #[test]
    fn find_round_trips_every_name() {
        for s in catalog() {
            assert_eq!(find(s.name).unwrap().name, s.name);
        }
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn every_scenario_yields_a_valid_config() {
        let base = RunConfig::default().with_straggler().with_maintenance();
        for s in catalog() {
            let cfg = s.config_from(&base);
            cfg.validate();
            // Adversity is the only thing a scenario may touch.
            assert_eq!(cfg.pool_size, base.pool_size);
            assert_eq!(cfg.quorum, base.quorum);
            assert_eq!(cfg.straggler, base.straggler);
        }
    }

    #[test]
    fn benign_clears_adversity() {
        let mut cfg = RunConfig { adversity: Some(AdversityConfig::NONE), ..Default::default() };
        find("benign").unwrap().apply(&mut cfg);
        assert!(cfg.adversity.is_none());
    }

    #[test]
    fn grid_axis_matches_catalog() {
        let g = grid(
            RunConfig { pool_size: 4, ng: 2, ..Default::default() },
            Population::mturk_live(),
            (0..4).map(|i| TaskSpec::new(vec![(i % 2) as u32; 2])).collect(),
            4,
        )
        .seeds(&[1, 2]);
        assert_eq!(g.validate(), Ok(()));
        assert_eq!(g.n_scenarios(), catalog().len());
        assert_eq!(g.n_jobs(), catalog().len() * 2);
        let jobs = g.jobs();
        for (i, s) in catalog().iter().enumerate() {
            assert_eq!(&*jobs[i * 2].label, s.name);
        }
    }
}
