//! Trace golden-masters: committed flight-recorder fingerprints per
//! `(scenario, seed)`.
//!
//! The conformance suite replays the whole catalog with observability
//! enabled (a lossless ring, so nothing is dropped) and digests each
//! cell's rendered JSONL trace into a [`TraceRow`]. The rows are
//! committed as `crates/scenarios/golden/trace_fingerprints.json` and CI
//! byte-compares them under `CLAMSHELL_THREADS=1` and `=4`: a trace
//! fingerprint pins down the *order and content of every recorded
//! runner event*, which is a strictly finer determinism check than the
//! compact-report fingerprint (that only digests the final logs).
//!
//! Regenerate intentionally with:
//! `CLAMSHELL_BLESS=1 cargo test -p clamshell-scenarios --test trace_golden`

use crate::catalog;
use crate::suite;
use clamshell_core::RunConfig;
use clamshell_obs::{fingerprint_hex, ObsConfig};
use serde::{Deserialize, Serialize};

/// Golden-file key under `crates/scenarios/golden/`.
pub const GOLDEN_NAME: &str = "trace_fingerprints";

/// Ring capacity for the suite: large enough that no suite run ever
/// drops an event, so the fingerprint covers the complete record.
pub const TRACE_RING: usize = 1 << 16;

/// Scalar digest of one instrumented `(scenario, seed)` trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRow {
    /// Scenario name (catalog key).
    pub scenario: String,
    /// The cell's seed.
    pub seed: u64,
    /// Events retained in the ring at drain.
    pub events: usize,
    /// Events ever recorded.
    pub recorded: u64,
    /// Events evicted by ring wrap (must be 0 for the suite).
    pub dropped: u64,
    /// `fnv1a:<16 hex>` over the rendered JSONL event lines.
    pub fingerprint: String,
}

/// One instrumented suite cell: the committed digest plus the full
/// rendered JSONL (header + events), which the byte-identity tests
/// compare across thread counts but which is never committed.
#[derive(Debug, Clone)]
pub struct TraceCell {
    /// The committed digest row.
    pub row: TraceRow,
    /// Rendered JSONL trace (header line + one line per event).
    pub jsonl: String,
}

/// The suite's base config with observability on and a lossless ring.
pub fn obs_base_config() -> RunConfig {
    RunConfig { obs: ObsConfig::with_ring(TRACE_RING), ..suite::base_config() }
}

/// Run the instrumented catalog × [`suite::SEEDS`] grid and return one
/// [`TraceCell`] per cell, grouped per scenario in catalog order.
pub fn trace_suite(threads: Option<usize>) -> Vec<(&'static str, Vec<TraceCell>)> {
    let g = catalog::grid(obs_base_config(), suite::population(), suite::specs(), suite::BATCH)
        .seeds(&suite::SEEDS);
    let reports = g.try_run_all(threads).expect("catalog grid is valid");
    let mut rows: Vec<(&'static str, Vec<TraceCell>)> =
        catalog::catalog().iter().map(|s| (s.name, Vec::new())).collect();
    for (i, report) in reports.into_iter().enumerate() {
        let scenario = i / suite::SEEDS.len();
        let seed = suite::SEEDS[i % suite::SEEDS.len()];
        let name = rows[scenario].0;
        let obs = report.obs.as_ref().expect("suite runs are instrumented");
        let cell = TraceCell {
            row: TraceRow {
                scenario: name.to_string(),
                seed,
                events: obs.events.len(),
                recorded: obs.recorded,
                dropped: obs.dropped,
                fingerprint: fingerprint_hex(obs.fingerprint),
            },
            jsonl: obs.render_jsonl(name, seed),
        };
        rows[scenario].1.push(cell);
    }
    rows
}

/// Render the suite's digest rows as the committed file format: a JSON
/// array with one object per line, in catalog × seed order.
pub fn render_rows(rows: &[(&'static str, Vec<TraceCell>)]) -> String {
    let flat: Vec<&TraceRow> =
        rows.iter().flat_map(|(_, cells)| cells.iter().map(|c| &c.row)).collect();
    let mut out = String::from("[\n");
    for (i, r) in flat.iter().enumerate() {
        out.push_str(&serde_json::to_string(r).expect("trace row serializes"));
        if i + 1 < flat.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_base_only_adds_observability() {
        let plain = suite::base_config();
        let obs = obs_base_config();
        assert!(obs.obs.enabled);
        assert_eq!(obs.obs.ring_capacity, TRACE_RING);
        assert_eq!(RunConfig { obs: plain.obs, ..obs }, plain);
    }

    #[test]
    fn render_rows_is_one_object_per_line() {
        let cell = |s: &str, seed: u64| TraceCell {
            row: TraceRow {
                scenario: s.to_string(),
                seed,
                events: 3,
                recorded: 3,
                dropped: 0,
                fingerprint: "fnv1a:0000000000000000".to_string(),
            },
            jsonl: String::new(),
        };
        let rows = vec![("a", vec![cell("a", 1), cell("a", 2)]), ("b", vec![cell("b", 1)])];
        let text = render_rows(&rows);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], "[");
        assert!(lines[1].contains("\"scenario\":\"a\"") && lines[1].ends_with(','));
        assert!(lines[3].contains("\"scenario\":\"b\"") && !lines[3].ends_with(','));
        assert_eq!(lines[4], "]");
    }
}
