//! Sharded mega-sweeps: bounded-memory execution with checkpoint/resume.
//!
//! A million-cell grid cannot be materialized as one job list — the
//! specs, configs, and population handles of every cell would sit in
//! memory for the whole sweep. [`run_sharded`] instead walks the grid in
//! bounded chunks ([`Grid::jobs_range`]), runs each chunk on the
//! process-wide [`WorkerPool`](crate::persistent::WorkerPool), and folds
//! results into one cumulative [`MetricsAggregator`] **in global
//! job-index order**, so peak live memory is `O(shard)` while the final
//! statistics are bit-identical to an unsharded (or fully serial) run.
//!
//! ## Why the fold is sequential, not merge-based
//!
//! Parallel-Welford [`merge`](MetricsAggregator::merge) is
//! mathematically exact but **not bit-identical** to pushing the same
//! values one at a time (floating-point rounding differs). Per-shard
//! aggregators merged at the end would therefore drift from the
//! unsharded reference by a few ULPs — enough to break the workspace's
//! byte-identity contract. The sharded executor sidesteps this entirely:
//! shards run in index order, the reorder buffer inside the pool
//! delivers each shard's reports in index order, and every report is
//! pushed into the *same* cumulative aggregator. Sharding (and thread
//! count, and resume) then cannot change a single bit of the result.
//!
//! ## The shard manifest
//!
//! After each completed shard the cumulative aggregator state is
//! checkpointed to a JSONL manifest (integer-only, like the
//! `clamshell-stream` checkpoints: floats travel as IEEE-754 bit
//! patterns, so the file is byte-stable across platforms):
//!
//! ```text
//! {"v":1,"grid":<shape-fp>,"shard_size":S,"n_jobs":J,"words":W}
//! {"shard":0,"lo":0,"hi":S,"cells":[<W u64 words>],"fp":<chain-fp>}
//! {"shard":1,"lo":S,"hi":2S,"cells":[...],"fp":<chain-fp>}
//! ```
//!
//! `cells` is the **cumulative** [`MetricsAggregator::snapshot_words`]
//! after folding shards `0..=i`, so resume needs only the last line.
//! `fp` is an FNV-1a chain over the previous line's `fp` and the line's
//! own fields, so truncation or tampering anywhere breaks the chain.
//! The file is rewritten atomically (temp file + rename) after every
//! shard: a `SIGKILL` at any instant leaves either the previous
//! manifest or the new one, never a torn file.
//!
//! On resume the header is validated against the live grid
//! ([`Grid::shape_fingerprint`], shard size, job count, snapshot shape),
//! the chain is re-verified, the aggregator is restored bit-exactly from
//! the last checkpoint, and execution continues at the first unrecorded
//! shard. A kill *mid-shard* loses only that shard's partial folds: the
//! restore overwrites the aggregator, so nothing is double-counted.

use crate::aggregate::{Aggregator, MetricsAggregator, SnapshotShapeError};
use crate::grid::{Grid, GridError};
use crate::job::Job;
use crate::persistent;
use crate::progress::{CancelToken, ProgressFn};
use crate::threads;
use clamshell_obs::Fnv;
use std::path::{Path, PathBuf};

/// Manifest schema version written and accepted by this build.
pub const MANIFEST_VERSION: u64 = 1;

/// How to run a sharded sweep.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Cells per shard (must be ≥ 1). Peak job memory is proportional
    /// to this; the checkpoint granularity equals it.
    pub shard_size: usize,
    /// Manifest path. Written atomically after every completed shard.
    pub manifest: PathBuf,
    /// Resume from `manifest` if it exists (a missing file starts a
    /// fresh sweep, since a kill can land before the first checkpoint).
    /// When `false`, any existing manifest is overwritten.
    pub resume: bool,
    /// Worker threads; `None` resolves via [`threads::resolve`].
    pub threads: Option<usize>,
}

/// What a sharded sweep did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOutcome {
    /// Jobs folded into the aggregate, including shards restored from
    /// the manifest.
    pub completed: usize,
    /// Total cells in the grid.
    pub total: usize,
    /// Whether the sweep stopped on a [`CancelToken`].
    pub cancelled: bool,
    /// Shards recorded in the manifest when the sweep returned.
    pub shards_completed: usize,
    /// Total shards in the plan.
    pub n_shards: usize,
    /// Shards restored from the manifest instead of executed.
    pub resumed_shards: usize,
}

impl ShardOutcome {
    /// Did every cell complete?
    pub fn is_complete(&self) -> bool {
        self.completed == self.total && !self.cancelled
    }
}

/// Why a sharded sweep could not run (or resume).
#[derive(Debug)]
pub enum ShardError {
    /// The grid itself is structurally invalid.
    Grid(GridError),
    /// `shard_size` was zero.
    ZeroShardSize,
    /// The aggregator's scenario-row count does not match the grid's.
    AggregatorShape {
        /// Scenario rows the grid enumerates.
        grid_scenarios: usize,
        /// Scenario rows the aggregator was built with.
        agg_scenarios: usize,
    },
    /// A manifest checkpoint did not fit the aggregator shape.
    Snapshot(SnapshotShapeError),
    /// Reading or writing the manifest failed.
    Io {
        /// The path being read or written.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The manifest exists but is not a well-formed chain.
    Corrupt {
        /// The manifest path.
        path: PathBuf,
        /// 1-based line number of the first bad line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The manifest is well-formed but describes a different sweep.
    Incompatible {
        /// Which header field disagreed.
        field: &'static str,
        /// The manifest's value.
        manifest: u64,
        /// The value the live grid/options require.
        expected: u64,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Grid(e) => write!(f, "invalid grid: {e}"),
            ShardError::ZeroShardSize => write!(f, "shard size must be at least 1"),
            ShardError::AggregatorShape { grid_scenarios, agg_scenarios } => write!(
                f,
                "aggregator has {agg_scenarios} scenario rows but the grid enumerates \
                 {grid_scenarios}"
            ),
            ShardError::Snapshot(e) => write!(f, "manifest checkpoint mismatch: {e}"),
            ShardError::Io { path, source } => {
                write!(f, "manifest I/O on {}: {source}", path.display())
            }
            ShardError::Corrupt { path, line, reason } => {
                write!(f, "corrupt manifest {} line {line}: {reason}", path.display())
            }
            ShardError::Incompatible { field, manifest, expected } => write!(
                f,
                "manifest is from a different sweep: {field} is {manifest}, this sweep \
                 needs {expected}"
            ),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Grid(e) => Some(e),
            ShardError::Snapshot(e) => Some(e),
            ShardError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<GridError> for ShardError {
    fn from(e: GridError) -> Self {
        ShardError::Grid(e)
    }
}

impl From<SnapshotShapeError> for ShardError {
    fn from(e: SnapshotShapeError) -> Self {
        ShardError::Snapshot(e)
    }
}

/// Validated header fields shared by the writer and the resume parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Header {
    grid: u64,
    shard_size: u64,
    n_jobs: u64,
    words: u64,
}

impl Header {
    fn render(&self) -> String {
        format!(
            "{{\"v\":{MANIFEST_VERSION},\"grid\":{},\"shard_size\":{},\"n_jobs\":{},\"words\":{}}}",
            self.grid, self.shard_size, self.n_jobs, self.words
        )
    }

    /// Chain seed: the fingerprint every shard line's chain starts from.
    fn chain_seed(&self) -> u64 {
        let mut h = Fnv::new();
        for word in [MANIFEST_VERSION, self.grid, self.shard_size, self.n_jobs, self.words] {
            h.write(&word.to_le_bytes());
        }
        h.finish()
    }
}

/// One link of the manifest's fingerprint chain.
fn chain_fp(prev: u64, shard: u64, lo: u64, hi: u64, cells: &[u64]) -> u64 {
    let mut h = Fnv::new();
    for word in [prev, shard, lo, hi] {
        h.write(&word.to_le_bytes());
    }
    for &c in cells {
        h.write(&c.to_le_bytes());
    }
    h.finish()
}

fn render_shard_line(shard: u64, lo: u64, hi: u64, cells: &[u64], fp: u64) -> String {
    let mut body = String::with_capacity(cells.len() * 12 + 64);
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&c.to_string());
    }
    format!("{{\"shard\":{shard},\"lo\":{lo},\"hi\":{hi},\"cells\":[{body}],\"fp\":{fp}}}")
}

/// Scan `line` for `"key":<digits>` and parse the integer.
fn take_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Scan `line` for `"key":[<digits>,…]` and parse the integer array.
fn take_u64_array(line: &str, key: &str) -> Option<Vec<u64>> {
    let pat = format!("\"{key}\":[");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let close = rest.find(']')?;
    let body = &rest[..close];
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|tok| tok.parse().ok()).collect()
}

fn io_err(path: &Path, source: std::io::Error) -> ShardError {
    ShardError::Io { path: path.to_path_buf(), source }
}

fn corrupt(path: &Path, line: usize, reason: impl Into<String>) -> ShardError {
    ShardError::Corrupt { path: path.to_path_buf(), line, reason: reason.into() }
}

/// Atomically replace `path` with the header plus every recorded shard
/// line. Temp-file-then-rename means a kill at any instant leaves either
/// the old manifest or the new one, never a torn file.
fn write_manifest(path: &Path, header: &Header, lines: &[String]) -> Result<(), ShardError> {
    let mut text = String::with_capacity(128 + lines.iter().map(|l| l.len() + 1).sum::<usize>());
    text.push_str(&header.render());
    text.push('\n');
    for line in lines {
        text.push_str(line);
        text.push('\n');
    }
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, &text).map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}

/// What a successfully parsed manifest resumes with.
struct Resumed {
    /// Recorded shard lines, kept verbatim for the next rewrite.
    lines: Vec<String>,
    /// Fingerprint of the last recorded line (chain seed if none).
    fp: u64,
    /// Cumulative snapshot of the last recorded shard, if any.
    last_cells: Option<Vec<u64>>,
}

/// Parse and fully validate an existing manifest against `header`.
fn parse_manifest(path: &Path, header: &Header) -> Result<Resumed, ShardError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let mut it = text.lines().enumerate();
    let Some((_, first)) = it.next() else {
        return Err(corrupt(path, 1, "empty manifest"));
    };
    let version = take_u64(first, "v").ok_or_else(|| corrupt(path, 1, "header missing \"v\""))?;
    if version != MANIFEST_VERSION {
        return Err(ShardError::Incompatible {
            field: "v",
            manifest: version,
            expected: MANIFEST_VERSION,
        });
    }
    for (field, expected) in [
        ("grid", header.grid),
        ("shard_size", header.shard_size),
        ("n_jobs", header.n_jobs),
        ("words", header.words),
    ] {
        let got = take_u64(first, field)
            .ok_or_else(|| corrupt(path, 1, format!("header missing {field:?}")))?;
        if got != expected {
            return Err(ShardError::Incompatible { field, manifest: got, expected });
        }
    }

    let mut fp = header.chain_seed();
    let mut lines: Vec<String> = Vec::new();
    let mut last_cells: Option<Vec<u64>> = None;
    for (no, line) in it {
        let lineno = no + 1;
        if line.is_empty() {
            continue;
        }
        let shard =
            take_u64(line, "shard").ok_or_else(|| corrupt(path, lineno, "missing \"shard\""))?;
        if shard != lines.len() as u64 {
            return Err(corrupt(
                path,
                lineno,
                format!("expected shard {} but found {shard}", lines.len()),
            ));
        }
        let lo = take_u64(line, "lo").ok_or_else(|| corrupt(path, lineno, "missing \"lo\""))?;
        let hi = take_u64(line, "hi").ok_or_else(|| corrupt(path, lineno, "missing \"hi\""))?;
        let want_lo = shard * header.shard_size;
        let want_hi = (want_lo + header.shard_size).min(header.n_jobs);
        if lo != want_lo || hi != want_hi {
            return Err(corrupt(
                path,
                lineno,
                format!("shard {shard} covers {lo}..{hi}, expected {want_lo}..{want_hi}"),
            ));
        }
        let cells = take_u64_array(line, "cells")
            .ok_or_else(|| corrupt(path, lineno, "missing or malformed \"cells\""))?;
        if cells.len() as u64 != header.words {
            return Err(corrupt(
                path,
                lineno,
                format!("{} snapshot words, header promises {}", cells.len(), header.words),
            ));
        }
        let got_fp = take_u64(line, "fp").ok_or_else(|| corrupt(path, lineno, "missing \"fp\""))?;
        let want_fp = chain_fp(fp, shard, lo, hi, &cells);
        if got_fp != want_fp {
            return Err(corrupt(path, lineno, "fingerprint chain broken"));
        }
        fp = got_fp;
        lines.push(line.to_string());
        last_cells = Some(cells);
    }
    Ok(Resumed { lines, fp, last_cells })
}

/// Run `grid` in shards of `opts.shard_size` cells, folding every report
/// into `agg` in global job-index order and checkpointing the cumulative
/// aggregate to `opts.manifest` after each shard.
///
/// `agg` must be freshly constructed for the grid (resume overwrites it
/// bit-exactly from the manifest; a fresh run folds on top of whatever
/// it holds). The final aggregate is **bit-identical** to an unsharded
/// [`Grid::run_streaming`] — and to a serial fold — at any shard size,
/// thread count, or kill/resume split; the module docs explain why the
/// fold is sequential rather than merge-based.
///
/// On cancellation the shard in flight is not recorded: `agg` may hold
/// partial folds past the last checkpoint, and a subsequent resume
/// restores from the manifest so nothing is double-counted.
pub fn run_sharded(
    grid: &Grid,
    agg: &mut MetricsAggregator,
    opts: &ShardOptions,
    cancel: &CancelToken,
    mut progress: Option<ProgressFn<'_>>,
) -> Result<ShardOutcome, ShardError> {
    grid.validate()?;
    if opts.shard_size == 0 {
        return Err(ShardError::ZeroShardSize);
    }
    if agg.n_scenarios() != grid.n_scenarios() {
        return Err(ShardError::AggregatorShape {
            grid_scenarios: grid.n_scenarios(),
            agg_scenarios: agg.n_scenarios(),
        });
    }
    let n_jobs = grid.n_jobs();
    let n_shards = n_jobs.div_ceil(opts.shard_size);
    let header = Header {
        grid: grid.shape_fingerprint(),
        shard_size: opts.shard_size as u64,
        n_jobs: n_jobs as u64,
        words: (grid.n_scenarios() * agg.n_metrics() * 3) as u64,
    };

    let mut lines: Vec<String> = Vec::new();
    let mut fp = header.chain_seed();
    if opts.resume && opts.manifest.exists() {
        let resumed = parse_manifest(&opts.manifest, &header)?;
        if let Some(cells) = &resumed.last_cells {
            agg.restore_words(cells)?;
        }
        lines = resumed.lines;
        fp = resumed.fp;
    } else {
        // Fresh sweep: claim the path immediately (header-only manifest)
        // so a kill before the first checkpoint resumes as "0 shards
        // done" instead of tripping over a stale manifest.
        write_manifest(&opts.manifest, &header, &lines)?;
    }
    let resumed_shards = lines.len();
    let threads = threads::resolve(opts.threads);

    let mut completed = (resumed_shards * opts.shard_size).min(n_jobs);
    let mut cancelled = false;
    for shard in resumed_shards..n_shards {
        if cancel.is_cancelled() {
            cancelled = true;
            break;
        }
        let lo = shard * opts.shard_size;
        let hi = (lo + opts.shard_size).min(n_jobs);
        let status = {
            // Re-home the per-shard progress callback to global job
            // counts so callers see one monotone (done, n_jobs) stream.
            let mut wrapped;
            let shard_progress: Option<ProgressFn<'_>> = match progress.as_mut() {
                Some(p) => {
                    wrapped = |done: usize, _total: usize| p(lo + done, n_jobs);
                    Some(&mut wrapped)
                }
                None => None,
            };
            persistent::execute_streaming_pooled(
                persistent::WorkerPool::global(),
                grid.jobs_range(lo, hi),
                threads,
                cancel,
                shard_progress,
                |_, _, job: Job| job.run(),
                &mut |local, report| agg.consume(&grid.meta(lo + local), &report),
            )
        };
        completed = lo + status.completed;
        if status.cancelled || status.completed < hi - lo {
            cancelled = true;
            break;
        }
        let cells = agg.snapshot_words();
        fp = chain_fp(fp, shard as u64, lo as u64, hi as u64, &cells);
        lines.push(render_shard_line(shard as u64, lo as u64, hi as u64, &cells, fp));
        write_manifest(&opts.manifest, &header, &lines)?;
    }

    Ok(ShardOutcome {
        completed,
        total: n_jobs,
        cancelled,
        shards_completed: lines.len(),
        n_shards,
        resumed_shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Metric;
    use clamshell_core::task::TaskSpec;
    use clamshell_core::RunConfig;
    use clamshell_trace::Population;

    fn grid() -> Grid {
        let specs: Vec<TaskSpec> = (0..4).map(|i| TaskSpec::new(vec![(i % 2) as u32; 2])).collect();
        Grid::new(
            RunConfig { pool_size: 4, ng: 2, ..Default::default() },
            Population::mturk_live(),
            specs,
            4,
        )
        .seeds(&[1, 2, 3])
        .scenario("sm", |c| c.straggler = Some(Default::default()))
        .scenario("nosm", |c| c.straggler = None)
    }

    fn fresh_agg(g: &Grid) -> MetricsAggregator {
        MetricsAggregator::new(g.n_scenarios(), Metric::standard())
    }

    fn manifest_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("clamshell_shard_{tag}.jsonl"))
    }

    /// The unsharded serial reference fold.
    fn reference_words(g: &Grid) -> Vec<u64> {
        let mut agg = fresh_agg(g);
        let status = g.run_streaming(Some(1), &mut agg);
        assert!(status.is_complete());
        agg.snapshot_words()
    }

    #[test]
    fn sharded_matches_unsharded_bit_for_bit() {
        let g = grid();
        let reference = reference_words(&g);
        for shard_size in [1, 2, 4, 64] {
            for threads in [1, 4] {
                let path = manifest_path(&format!("exact_{shard_size}_{threads}"));
                let opts = ShardOptions {
                    shard_size,
                    manifest: path.clone(),
                    resume: false,
                    threads: Some(threads),
                };
                let mut agg = fresh_agg(&g);
                let out = run_sharded(&g, &mut agg, &opts, &CancelToken::new(), None).unwrap();
                assert!(out.is_complete(), "s={shard_size} t={threads}: {out:?}");
                assert_eq!(out.completed, g.n_jobs());
                assert_eq!(out.n_shards, g.n_jobs().div_ceil(shard_size));
                assert_eq!(out.shards_completed, out.n_shards);
                assert_eq!(
                    agg.snapshot_words(),
                    reference,
                    "shard_size {shard_size}, {threads} threads"
                );
                let _ = std::fs::remove_file(&path);
            }
        }
    }

    #[test]
    fn progress_reports_global_job_counts() {
        let g = grid();
        let path = manifest_path("progress");
        let opts =
            ShardOptions { shard_size: 2, manifest: path.clone(), resume: false, threads: Some(2) };
        let mut seen: Vec<(usize, usize)> = Vec::new();
        let mut agg = fresh_agg(&g);
        let out = run_sharded(
            &g,
            &mut agg,
            &opts,
            &CancelToken::new(),
            Some(&mut |done, total| seen.push((done, total))),
        )
        .unwrap();
        assert!(out.is_complete());
        let expected: Vec<(usize, usize)> = (1..=g.n_jobs()).map(|d| (d, g.n_jobs())).collect();
        assert_eq!(seen, expected);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn kill_and_resume_is_bit_identical() {
        let g = grid();
        let reference = reference_words(&g);
        // Cancel after every possible number of delivered jobs; each
        // interrupted sweep must resume to the exact reference bits.
        for kill_after in 1..=g.n_jobs() {
            let path = manifest_path(&format!("resume_{kill_after}"));
            let opts = ShardOptions {
                shard_size: 2,
                manifest: path.clone(),
                resume: false,
                threads: Some(2),
            };
            let cancel = CancelToken::new();
            let cancel_ref = &cancel;
            let mut agg = fresh_agg(&g);
            let out = run_sharded(
                &g,
                &mut agg,
                &opts,
                &cancel,
                Some(&mut |done, _| {
                    if done == kill_after {
                        cancel_ref.cancel();
                    }
                }),
            )
            .unwrap();
            if out.is_complete() {
                // Cancel landed after the last delivery; nothing to resume.
                assert_eq!(agg.snapshot_words(), reference);
                let _ = std::fs::remove_file(&path);
                continue;
            }
            assert!(out.cancelled);

            // Second process: fresh aggregator, resume from the manifest.
            let opts = ShardOptions { resume: true, ..opts };
            let mut resumed = fresh_agg(&g);
            let out2 = run_sharded(&g, &mut resumed, &opts, &CancelToken::new(), None).unwrap();
            assert!(out2.is_complete(), "kill@{kill_after}: {out2:?}");
            assert_eq!(out2.resumed_shards, out.shards_completed, "kill@{kill_after}");
            assert_eq!(resumed.snapshot_words(), reference, "kill@{kill_after}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn resume_of_a_finished_sweep_runs_nothing() {
        let g = grid();
        let path = manifest_path("noop");
        let opts =
            ShardOptions { shard_size: 2, manifest: path.clone(), resume: false, threads: Some(1) };
        let mut agg = fresh_agg(&g);
        run_sharded(&g, &mut agg, &opts, &CancelToken::new(), None).unwrap();
        let words = agg.snapshot_words();

        let opts = ShardOptions { resume: true, ..opts };
        let mut again = fresh_agg(&g);
        let out = run_sharded(&g, &mut again, &opts, &CancelToken::new(), None).unwrap();
        assert!(out.is_complete());
        assert_eq!(out.resumed_shards, out.n_shards);
        assert_eq!(again.snapshot_words(), words);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_with_missing_manifest_starts_fresh() {
        let g = grid();
        let path = manifest_path("fresh_resume");
        let _ = std::fs::remove_file(&path);
        let opts =
            ShardOptions { shard_size: 4, manifest: path.clone(), resume: true, threads: Some(1) };
        let mut agg = fresh_agg(&g);
        let out = run_sharded(&g, &mut agg, &opts, &CancelToken::new(), None).unwrap();
        assert!(out.is_complete());
        assert_eq!(out.resumed_shards, 0);
        assert_eq!(agg.snapshot_words(), reference_words(&g));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fresh_run_overwrites_a_stale_manifest() {
        let g = grid();
        let path = manifest_path("stale");
        std::fs::write(&path, "not a manifest at all\n").unwrap();
        let opts =
            ShardOptions { shard_size: 4, manifest: path.clone(), resume: false, threads: Some(1) };
        let mut agg = fresh_agg(&g);
        let out = run_sharded(&g, &mut agg, &opts, &CancelToken::new(), None).unwrap();
        assert!(out.is_complete());
        assert_eq!(agg.snapshot_words(), reference_words(&g));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_an_incompatible_manifest() {
        let g = grid();
        let path = manifest_path("incompat");
        let opts =
            ShardOptions { shard_size: 2, manifest: path.clone(), resume: false, threads: Some(1) };
        run_sharded(&g, &mut fresh_agg(&g), &opts, &CancelToken::new(), None).unwrap();

        // Different shard size.
        let wrong_size = ShardOptions { shard_size: 3, resume: true, ..opts.clone() };
        let err = run_sharded(&g, &mut fresh_agg(&g), &wrong_size, &CancelToken::new(), None)
            .unwrap_err();
        assert!(matches!(err, ShardError::Incompatible { field: "shard_size", .. }), "{err}");

        // Different grid shape (extra seed).
        let bigger = grid().seeds(&[1, 2, 3, 4]);
        let resume = ShardOptions { resume: true, ..opts };
        let err = run_sharded(&bigger, &mut fresh_agg(&bigger), &resume, &CancelToken::new(), None)
            .unwrap_err();
        assert!(matches!(err, ShardError::Incompatible { field: "grid", .. }), "{err}");
        assert!(err.to_string().contains("different sweep"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_a_tampered_chain() {
        let g = grid();
        let path = manifest_path("tamper");
        let opts =
            ShardOptions { shard_size: 2, manifest: path.clone(), resume: false, threads: Some(1) };
        run_sharded(&g, &mut fresh_agg(&g), &opts, &CancelToken::new(), None).unwrap();

        // Flip one digit inside the second line's cells array.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let at = lines[2].find("\"cells\":[").unwrap() + "\"cells\":[".len();
        let mut tampered = lines[2].clone();
        let old = tampered.as_bytes()[at];
        let new = if old == b'9' { '8' } else { '9' };
        tampered.replace_range(at..at + 1, &new.to_string());
        lines[2] = tampered;
        std::fs::write(&path, lines.join("\n")).unwrap();

        let resume = ShardOptions { resume: true, ..opts };
        let err =
            run_sharded(&g, &mut fresh_agg(&g), &resume, &CancelToken::new(), None).unwrap_err();
        match err {
            ShardError::Corrupt { line, ref reason, .. } => {
                assert_eq!(line, 3);
                assert!(reason.contains("chain"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_to_a_checkpoint_boundary_still_resumes() {
        // Atomic rewrite means a real kill never tears the file, but a
        // manifest holding only a prefix of the shards (e.g. restored
        // from backup) is still a valid chain and resumes cleanly.
        let g = grid();
        let reference = reference_words(&g);
        let path = manifest_path("prefix");
        let opts =
            ShardOptions { shard_size: 2, manifest: path.clone(), resume: false, threads: Some(1) };
        run_sharded(&g, &mut fresh_agg(&g), &opts, &CancelToken::new(), None).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let prefix: Vec<&str> = text.lines().take(2).collect(); // header + shard 0
        std::fs::write(&path, format!("{}\n", prefix.join("\n"))).unwrap();

        let resume = ShardOptions { resume: true, ..opts };
        let mut agg = fresh_agg(&g);
        let out = run_sharded(&g, &mut agg, &resume, &CancelToken::new(), None).unwrap();
        assert!(out.is_complete());
        assert_eq!(out.resumed_shards, 1);
        assert_eq!(agg.snapshot_words(), reference);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn structural_errors_are_typed() {
        let g = grid();
        let path = manifest_path("typed");
        let zero =
            ShardOptions { shard_size: 0, manifest: path.clone(), resume: false, threads: Some(1) };
        let err =
            run_sharded(&g, &mut fresh_agg(&g), &zero, &CancelToken::new(), None).unwrap_err();
        assert!(matches!(err, ShardError::ZeroShardSize));

        let opts = ShardOptions { shard_size: 2, ..zero };
        let mut wrong_shape = MetricsAggregator::new(g.n_scenarios() + 1, Metric::standard());
        let err = run_sharded(&g, &mut wrong_shape, &opts, &CancelToken::new(), None).unwrap_err();
        assert!(matches!(err, ShardError::AggregatorShape { .. }), "{err}");

        let empty = Grid::new(
            RunConfig { pool_size: 4, ng: 2, ..Default::default() },
            Population::mturk_live(),
            vec![TaskSpec::new(vec![0; 2])],
            1,
        )
        .seeds(&[]);
        let err = run_sharded(
            &empty,
            &mut MetricsAggregator::new(1, Metric::standard()),
            &opts,
            &CancelToken::new(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, ShardError::Grid(GridError::EmptySeedAxis)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn manifest_is_integer_only_jsonl() {
        let g = grid();
        let path = manifest_path("schema");
        let opts =
            ShardOptions { shard_size: 4, manifest: path.clone(), resume: false, threads: Some(1) };
        run_sharded(&g, &mut fresh_agg(&g), &opts, &CancelToken::new(), None).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.contains('.'), "floats must travel as bit patterns: {text}");
        assert!(text.lines().count() >= 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "JSONL framing: {line}");
        }
        assert!(text.starts_with(&format!("{{\"v\":{MANIFEST_VERSION},")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn field_scanners_parse_and_reject() {
        let line = "{\"shard\":3,\"lo\":6,\"hi\":9,\"cells\":[1,2,3],\"fp\":42}";
        assert_eq!(take_u64(line, "shard"), Some(3));
        assert_eq!(take_u64(line, "fp"), Some(42));
        assert_eq!(take_u64(line, "nope"), None);
        assert_eq!(take_u64("{\"shard\":}", "shard"), None);
        assert_eq!(take_u64_array(line, "cells"), Some(vec![1, 2, 3]));
        assert_eq!(take_u64_array("{\"cells\":[]}", "cells"), Some(vec![]));
        assert_eq!(take_u64_array("{\"cells\":[1,x]}", "cells"), None);
        assert_eq!(take_u64_array(line, "nope"), None);
    }
}
